"""Socket endpoints for the async serving core.

* **UDP** — the paper's deployment shape: one datagram per message.
  Each datagram spawns a task; replies go back to the source address.
* **TCP** — length-prefixed frames (:func:`repro.serve.wire.frame`)
  over one stream per client; frames on one connection are served in
  order, which gives a connected client FIFO semantics for free.

Reply callables handed to the core are **loop-thread-safe**: the
recovery ticker and batch flushes run on executor threads, and asyncio
transports must only be written from the loop thread, so off-loop
writes are marshalled with ``call_soon_threadsafe``.

:class:`AsyncKeyService` serves one core (immediate or coalescing) on
one UDP socket plus an optional TCP listener.
:class:`AsyncClusterService` serves a :class:`~repro.serve.core.
ClusterServingCore` on one UDP (and optionally TCP) endpoint *per
shard* — any endpoint accepts any user's request (the coordinator
routes), but per-shard ports let load spread across sockets the way
the PR4 cluster spreads state across shards.
"""

from __future__ import annotations

import asyncio
import contextlib
import threading
from typing import List, Optional, Tuple

from .config import ServeConfig
from .core import AsyncServingCore, ClusterServingCore
from .wire import frame, read_frame


def _loop_safe_writer(loop: asyncio.AbstractEventLoop, write) -> callable:
    """Wrap a transport write so executor threads can call it."""
    ident = threading.get_ident()

    def reply(payload: bytes) -> None:
        if threading.get_ident() == ident:
            write(payload)
        else:
            loop.call_soon_threadsafe(write, payload)
    return reply


class _UdpProtocol(asyncio.DatagramProtocol):
    """One datagram in, one serving task; replies to the source addr."""

    def __init__(self, core: AsyncServingCore):
        self.core = core
        self.transport = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._tasks = set()

    def connection_made(self, transport) -> None:
        self.transport = transport
        self._loop = asyncio.get_running_loop()

    def datagram_received(self, data: bytes, addr) -> None:
        transport = self.transport
        reply = _loop_safe_writer(
            self._loop, lambda payload: transport.sendto(payload, addr))
        # Heartbeats (the overwhelming majority at scale) are served
        # synchronously; only datagrams that need staging or the
        # executor pay for a task.
        if self.core.submit_nowait(data, reply, ("udp", addr)):
            return
        task = self._loop.create_task(
            self.core.submit(data, reply, path_id=("udp", addr)))
        self._tasks.add(task)
        task.add_done_callback(self._task_done)

    def _task_done(self, task) -> None:
        self._tasks.discard(task)
        if not task.cancelled() and task.exception() is not None:
            self.core._m_errors.inc(op="submit")

    def error_received(self, exc) -> None:  # ICMP errors: keep serving
        pass


async def _serve_tcp_connection(core: AsyncServingCore, reader,
                                writer) -> None:
    loop = asyncio.get_running_loop()
    path_id = ("tcp", id(writer))
    reply = _loop_safe_writer(
        loop, lambda payload: writer.write(frame(payload)))
    try:
        while True:
            data = await read_frame(reader)
            if data is None:
                break
            if not core.submit_nowait(data, reply, path_id):
                await core.submit(data, reply, path_id=path_id)
            await writer.drain()
    finally:
        writer.close()
        with contextlib.suppress(Exception):
            await writer.wait_closed()


class AsyncKeyService:
    """One serving core behind a UDP socket and an optional TCP listener."""

    def __init__(self, core: AsyncServingCore,
                 config: Optional[ServeConfig] = None):
        self.core = core
        self.config = config if config is not None else core.config
        self.udp_address: Optional[Tuple[str, int]] = None
        self.tcp_address: Optional[Tuple[str, int]] = None
        self._udp_transport = None
        self._tcp_server = None

    async def start(self) -> "AsyncKeyService":
        loop = asyncio.get_running_loop()
        config = self.config
        transport, _protocol = await loop.create_datagram_endpoint(
            lambda: _UdpProtocol(self.core),
            local_addr=(config.host, config.udp_port))
        self._udp_transport = transport
        self.udp_address = transport.get_extra_info("sockname")
        if config.tcp_port is not None:
            self._tcp_server = await asyncio.start_server(
                self._handle_tcp, config.host, config.tcp_port)
            self.tcp_address = self._tcp_server.sockets[0].getsockname()
        await self.core.start()
        return self

    async def _handle_tcp(self, reader, writer) -> None:
        await _serve_tcp_connection(self.core, reader, writer)

    async def aclose(self) -> None:
        if self._tcp_server is not None:
            self._tcp_server.close()
            with contextlib.suppress(Exception):
                await self._tcp_server.wait_closed()
            self._tcp_server = None
        if self._udp_transport is not None:
            self._udp_transport.close()
            self._udp_transport = None
        await self.core.aclose()

    async def __aenter__(self) -> "AsyncKeyService":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()


class AsyncClusterService:
    """A sharded cluster core behind per-shard UDP/TCP endpoints."""

    def __init__(self, core: ClusterServingCore,
                 config: Optional[ServeConfig] = None):
        self.core = core
        self.config = config if config is not None else core.config
        self.udp_addresses: List[Tuple[str, int]] = []
        self.tcp_addresses: List[Tuple[str, int]] = []
        self._udp_transports = []
        self._tcp_servers = []

    async def start(self) -> "AsyncClusterService":
        loop = asyncio.get_running_loop()
        config = self.config
        for index, _shard in enumerate(self.core.coordinator.shards):
            udp_port = config.udp_port + index if config.udp_port else 0
            transport, _protocol = await loop.create_datagram_endpoint(
                lambda: _UdpProtocol(self.core),
                local_addr=(config.host, udp_port))
            self._udp_transports.append(transport)
            self.udp_addresses.append(
                transport.get_extra_info("sockname"))
            if config.tcp_port is not None:
                tcp_port = (config.tcp_port + index
                            if config.tcp_port else 0)
                server = await asyncio.start_server(
                    self._handle_tcp, config.host, tcp_port)
                self._tcp_servers.append(server)
                self.tcp_addresses.append(
                    server.sockets[0].getsockname())
        await self.core.start()
        return self

    async def _handle_tcp(self, reader, writer) -> None:
        await _serve_tcp_connection(self.core, reader, writer)

    async def aclose(self) -> None:
        for server in self._tcp_servers:
            server.close()
            with contextlib.suppress(Exception):
                await server.wait_closed()
        self._tcp_servers = []
        for transport in self._udp_transports:
            transport.close()
        self._udp_transports = []
        await self.core.aclose()

    async def __aenter__(self) -> "AsyncClusterService":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()

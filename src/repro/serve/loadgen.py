"""A 10k-client load generator for the async serving layer.

The paper's experiments simulated thousands of clients against one key
server; this module does the same against the live async front end —
without 10,000 sockets or processes.  Simulated clients multiplex over
a small pool of UDP sockets; every request carries a correlation
trailer (:mod:`repro.serve.wire`) and a per-socket demux task resolves
replies to the issuing client by token.  Group-wide rekey multicasts
arrive uncorrelated; the pool folds their root refs into a shared
"latest group key" view so heartbeats stay current (a client that saw
the multicast *is* current) instead of manufacturing a resync storm.

Three traffic classes, mixed per the run profile:

* **churn** — join/leave cycles with acked round-trip latency;
* **heartbeats** — fire-and-forget liveness at a jittered interval
  (the dominant class, as in any real group);
* **resyncs** — occasional client-initiated recovery round-trips.

``python -m repro.serve.loadgen`` self-hosts a sharded cluster behind
:class:`~repro.serve.endpoint.AsyncClusterService` and drives it;
``--udp host:port[,host:port...]`` targets an external service
instead.  Results print as JSON (req/s, p50/p99 latency, busy/timeout
counts) for the bench harness to gate on.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import random
import socket
import sys
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.messages import (MSG_BUSY, MSG_HEARTBEAT, MSG_JOIN_ACK,
                             MSG_JOIN_DENIED, MSG_JOIN_REQUEST,
                             MSG_LEAVE_DENIED, MSG_LEAVE_REQUEST, MSG_REKEY,
                             MSG_RESYNC_REPLY, MSG_RESYNC_REQUEST,
                             MSG_STATS_REQUEST, MSG_STATS_RESPONSE,
                             MSG_SUBCAST, MSG_SUBCAST_REQUEST,
                             Message, WireError)
from ..subcast.wire import encode_subcast_request
from .rpc import ResilientRpc, RetryPolicy
from .wire import attach_corr_trailer, split_corr_trailer

_BUFFER = 65535


@dataclass
class LoadProfile:
    """Shape of one load run."""

    clients: int = 10_000
    sockets: int = 32
    duration: float = 10.0          # steady-state seconds after the ramp
    churn_clients: int = 200        # clients cycling leave/join
    heartbeat_interval: float = 5.0  # per-client, jittered
    resync_fraction: float = 0.02   # chance per heartbeat of a resync RPC
    subcast_fraction: float = 0.0   # chance per heartbeat of a subcast RPC
    subcast_targets: int = 8        # subset size per subcast request
    subcast_size: int = 64          # application payload bytes
    ramp_concurrency: int = 48      # concurrent joins during the ramp
    #: Per-attempt timeout; retries back off exponentially from
    #: ``backoff_base`` (capped, jittered) under an overall
    #: ``request_deadline``, spending at most ``retry_budget`` retries
    #: per logical request (see :class:`~repro.serve.rpc.RetryPolicy`).
    #: ``MSG_BUSY`` replies re-enter the same backoff loop.
    request_timeout: float = 2.0
    request_deadline: float = 8.0
    retry_budget: int = 5
    backoff_base: float = 0.05
    backoff_cap: float = 1.0

    def validate(self) -> None:
        if self.clients < 1:
            raise ValueError("clients must be >= 1")
        if self.sockets < 1:
            raise ValueError("sockets must be >= 1")
        if self.churn_clients > self.clients:
            raise ValueError("churn_clients cannot exceed clients")
        if self.subcast_fraction and self.subcast_targets < 1:
            raise ValueError("subcast_targets must be >= 1")

    def retry_policy(self) -> RetryPolicy:
        """The :class:`~repro.serve.rpc.RetryPolicy` this profile implies."""
        return RetryPolicy(
            timeout=self.request_timeout,
            deadline=max(self.request_deadline, self.request_timeout),
            budget=self.retry_budget,
            backoff_base=self.backoff_base,
            backoff_cap=max(self.backoff_cap, self.backoff_base))


@dataclass
class LoadStats:
    """Everything the run observed, JSON-serializable via as_dict()."""

    acked: Dict[str, List[float]] = field(
        default_factory=lambda: {"join": [], "leave": [], "resync": [],
                                 "subcast": []})
    heartbeats_sent: int = 0
    subcasts_received: int = 0      # sealed MSG_SUBCAST copies fanned out
    ramp_joined: int = 0            # distinct clients acked during ramp
    busy: int = 0
    denied: int = 0
    timeouts: int = 0               # individual attempts that timed out
    retries: int = 0                # extra attempts beyond the first
    budget_exhausted: int = 0       # requests whose retry budget or
                                    # deadline ran dry without a reply
    uncorrelated: int = 0           # multicast rekeys / recovery pushes
    ramp_seconds: float = 0.0
    steady_seconds: float = 0.0

    def _latency(self, values: Sequence[float]) -> dict:
        if not values:
            return {"count": 0}
        ordered = sorted(values)

        def pct(q: float) -> float:
            return ordered[min(len(ordered) - 1,
                               int(q * (len(ordered) - 1) + 0.5))]
        return {"count": len(ordered),
                "p50_ms": pct(0.50) * 1e3,
                "p99_ms": pct(0.99) * 1e3,
                "max_ms": ordered[-1] * 1e3}

    def as_dict(self) -> dict:
        ops = sum(len(v) for v in self.acked.values())
        total = ops + self.heartbeats_sent + self.busy + self.timeouts
        elapsed = max(self.steady_seconds, 1e-9)
        return {
            "acked_ops": ops,
            "requests_total": total,
            "heartbeats_sent": self.heartbeats_sent,
            "subcasts_received": self.subcasts_received,
            "ramp_joined": self.ramp_joined,
            "busy_replies": self.busy,
            "denied": self.denied,
            "timeouts": self.timeouts,
            "retries": self.retries,
            "budget_exhausted": self.budget_exhausted,
            "uncorrelated_received": self.uncorrelated,
            "ramp_seconds": self.ramp_seconds,
            "steady_seconds": self.steady_seconds,
            "steady_req_per_s": (
                (self.heartbeats_sent
                 + sum(len(v) for v in self.acked.values())) / elapsed),
            "latency": {op: self._latency(v)
                        for op, v in self.acked.items()},
        }


class _PoolProtocol(asyncio.DatagramProtocol):
    """Demultiplexes replies for one pool socket, inline on the loop.

    A protocol receives datagrams via the loop's persistent reader
    registration; the ``loop.sock_recv`` alternative registers and
    unregisters the fd with epoll for *every* datagram, which at 10k
    clients is a measurable fraction of the whole run.
    """

    def __init__(self, pool: "ClientPool"):
        self.pool = pool

    def datagram_received(self, data: bytes, addr) -> None:
        pool = self.pool
        payload, token = split_corr_trailer(data)
        try:
            message = Message.decode(payload)
        except WireError:
            return
        if message.msg_type in (MSG_REKEY, MSG_RESYNC_REPLY):
            pool.latest_ref = (message.root_node_id,
                               message.root_version)
        if token is None:
            if message.msg_type == MSG_SUBCAST:
                pool.stats.subcasts_received += 1
            else:
                pool.stats.uncorrelated += 1
            return
        future = pool._pending.pop(token, None)
        if future is not None and not future.done():
            future.set_result(message)

    def error_received(self, exc) -> None:  # ICMP noise: keep receiving
        pass


class ClientPool:
    """N simulated clients multiplexed over a few UDP sockets."""

    def __init__(self, addresses: Sequence[Tuple[str, int]],
                 profile: LoadProfile, stats: LoadStats):
        self.addresses = list(addresses)
        self.profile = profile
        self.stats = stats
        self._transports: List[asyncio.DatagramTransport] = []
        self._pending: Dict[int, asyncio.Future] = {}
        self._next_token = 1
        self._rpc = ResilientRpc(profile.retry_policy())
        #: The most recent group-key ref seen in any rekey multicast,
        #: resync reply or ack — what a live member would believe.
        self.latest_ref: Tuple[int, int] = (0, 0)

    async def start(self) -> None:
        loop = asyncio.get_running_loop()
        for _ in range(self.profile.sockets):
            sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
            sock.bind(("127.0.0.1", 0))
            sock.setblocking(False)
            transport, _protocol = await loop.create_datagram_endpoint(
                lambda: _PoolProtocol(self), sock=sock)
            self._transports.append(transport)

    async def aclose(self) -> None:
        for transport in self._transports:
            transport.close()
        self._transports = []

    # -- plumbing ----------------------------------------------------------

    def transport_for(self, index: int) -> asyncio.DatagramTransport:
        return self._transports[index % len(self._transports)]

    def addr_for(self, index: int) -> Tuple[str, int]:
        return self.addresses[index % len(self.addresses)]

    async def rpc(self, index: int, msg_type: int, user_id: str,
                  body: Optional[bytes] = None) -> Optional[Message]:
        """One correlated request through the resilient retry loop.

        Timeouts and ``MSG_BUSY`` replies retry with capped
        exponential backoff under the profile's deadline and budget
        (the server's idempotency cache makes the retries safe); a
        request whose budget or deadline runs dry counts into
        ``stats.budget_exhausted`` and returns None.
        """
        transport = self.transport_for(index)
        addr = self.addr_for(index)
        if body is None:
            body = user_id.encode("utf-8")
        # One token for every attempt: a retried op whose *first*
        # request was merely slow still correlates with the late ack,
        # and the server's idempotency cache recognizes the duplicate
        # by this token instead of re-executing it.
        token = self._next_token
        self._next_token += 1
        request = attach_corr_trailer(
            Message(msg_type=msg_type, body=body).encode(), token)

        async def attempt(timeout: float) -> Optional[Message]:
            future = asyncio.get_running_loop().create_future()
            self._pending[token] = future
            # Transport sends never raise on a full buffer — the
            # transport queues and flushes when the socket drains.
            transport.sendto(request, addr)
            try:
                return await asyncio.wait_for(future, timeout)
            except asyncio.TimeoutError:
                return None
            finally:
                self._pending.pop(token, None)

        outcome = await self._rpc.call(
            attempt, retryable=lambda m: m.msg_type == MSG_BUSY)
        self.stats.timeouts += outcome.timeouts
        self.stats.busy += outcome.retried_replies
        self.stats.retries += max(0, outcome.attempts - 1)
        if not outcome.ok:
            self.stats.budget_exhausted += 1
        return outcome.reply

    def heartbeat(self, index: int, user_id: str) -> None:
        node_id, version = self.latest_ref
        message = Message(msg_type=MSG_HEARTBEAT, root_node_id=node_id,
                          root_version=version,
                          body=user_id.encode("utf-8"))
        self.transport_for(index).sendto(message.encode(),
                                         self.addr_for(index))
        self.stats.heartbeats_sent += 1

    # -- operations --------------------------------------------------------

    async def acked_op(self, index: int, op: str,
                       user_id: str) -> bool:
        """Join/leave/resync with latency recorded; True on ack."""
        msg_type = {"join": MSG_JOIN_REQUEST, "leave": MSG_LEAVE_REQUEST,
                    "resync": MSG_RESYNC_REQUEST}[op]
        started = time.monotonic()
        reply = await self.rpc(index, msg_type, user_id)
        if reply is None:
            return False
        if reply.msg_type == MSG_JOIN_DENIED:
            # A duplicate of a join that already landed but whose ack
            # was lost *and* aged out of the server's idempotency
            # cache: a resync reply proves membership, which is what
            # joining means.
            confirm = await self.rpc(index, MSG_RESYNC_REQUEST, user_id)
            if (confirm is not None
                    and confirm.msg_type == MSG_RESYNC_REPLY):
                self.latest_ref = (confirm.root_node_id,
                                   confirm.root_version)
                self.stats.acked[op].append(time.monotonic() - started)
                return True
            self.stats.denied += 1
            return False
        if reply.msg_type == MSG_LEAVE_DENIED:
            self.stats.denied += 1
            return False
        if reply.msg_type == MSG_JOIN_ACK:
            self.latest_ref = (reply.root_node_id, reply.root_version)
        self.stats.acked[op].append(time.monotonic() - started)
        return True

    async def subcast_op(self, index: int, sender: str,
                         targets: Sequence[str],
                         payload: bytes) -> bool:
        """One covered-multicast request; the sealed reply is the ack."""
        body = encode_subcast_request(sender, targets, payload)
        started = time.monotonic()
        reply = await self.rpc(index, MSG_SUBCAST_REQUEST, sender,
                               body=body)
        if reply is None:
            return False
        if reply.msg_type != MSG_SUBCAST:
            self.stats.denied += 1
            return False
        self.stats.acked["subcast"].append(time.monotonic() - started)
        return True


async def run_load(addresses: Sequence[Tuple[str, int]],
                   profile: LoadProfile,
                   log=lambda text: None,
                   on_phase=None) -> LoadStats:
    """Drive one load run against live serving addresses.

    ``on_phase``, when given, is awaited with ``"steady-start"`` right
    after the ramp completes and ``"steady-end"`` when the steady
    window closes — the benchmark harness scrapes server-side counters
    at exactly those boundaries.
    """
    profile.validate()
    stats = LoadStats()
    pool = ClientPool(addresses, profile, stats)
    await pool.start()
    try:
        users = [f"lg-{index:05d}" for index in range(profile.clients)]
        # Ramp: everyone joins, bounded concurrency, busy-backoff.
        ramp_started = time.monotonic()
        gate = asyncio.Semaphore(profile.ramp_concurrency)

        async def ramp_join(index: int) -> None:
            async with gate:
                await pool.acked_op(index, "join", users[index])
        await asyncio.gather(*(ramp_join(index)
                               for index in range(profile.clients)))
        stats.ramp_seconds = time.monotonic() - ramp_started
        stats.ramp_joined = len(stats.acked["join"])
        log(f"ramp: {stats.ramp_joined}/{profile.clients} joined "
            f"in {stats.ramp_seconds:.1f}s")

        # Steady state: heartbeats + churn + resyncs for `duration`.
        if on_phase is not None:
            await on_phase("steady-start")
        deadline = time.monotonic() + profile.duration
        steady_started = time.monotonic()

        async def member_loop(index: int) -> None:
            while True:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return
                interval = profile.heartbeat_interval * (
                    0.5 + random.random())
                await asyncio.sleep(min(interval, remaining))
                if time.monotonic() >= deadline:
                    return
                roll = random.random()
                if roll < profile.resync_fraction:
                    await pool.acked_op(index, "resync", users[index])
                elif roll < (profile.resync_fraction
                             + profile.subcast_fraction):
                    # A contiguous window of stable members: clustered
                    # subsets are the paper-favorable covering case.
                    stable = users[profile.churn_clients:]
                    width = min(profile.subcast_targets, len(stable))
                    start = random.randrange(len(stable) - width + 1)
                    await pool.subcast_op(
                        index, users[index], stable[start:start + width],
                        bytes(profile.subcast_size))
                else:
                    pool.heartbeat(index, users[index])

        async def churn_loop(index: int) -> None:
            while time.monotonic() < deadline:
                if await pool.acked_op(index, "leave", users[index]):
                    await pool.acked_op(index, "join", users[index])
                await asyncio.sleep(0.01 * (0.5 + random.random()))

        member_tasks = [asyncio.create_task(member_loop(index))
                        for index in range(profile.churn_clients,
                                           profile.clients)]
        churn_tasks = [asyncio.create_task(churn_loop(index))
                       for index in range(profile.churn_clients)]
        await asyncio.gather(*member_tasks, *churn_tasks)
        stats.steady_seconds = time.monotonic() - steady_started
        if on_phase is not None:
            await on_phase("steady-end")
    finally:
        await pool.aclose()
    return stats


async def scrape(address: Tuple[str, int],
                 timeout: float = 5.0) -> Optional[dict]:
    """One async stats scrape (correlated, single attempt)."""
    profile = LoadProfile(clients=1, sockets=1, request_timeout=timeout,
                          request_deadline=timeout, retry_budget=0)
    pool = ClientPool([address], profile, LoadStats())
    await pool.start()
    try:
        reply = await pool.rpc(0, MSG_STATS_REQUEST, "")
    finally:
        await pool.aclose()
    if reply is None or reply.msg_type != MSG_STATS_RESPONSE:
        return None
    return json.loads(reply.body.decode("utf-8"))


# -- self-hosted target --------------------------------------------------------


async def self_hosted_cluster(n_shards: int = 3, seed: bytes = b"loadgen",
                              config=None, tracing: bool = False):
    """A live 3-shard cluster service on ephemeral loopback ports.

    With ``tracing`` the coordinator (and so the serving core) gets a
    real :class:`~repro.observability.spans.Tracer`; spans are
    reachable in-process via ``service.core.instrumentation.tracer``
    and ride along stats scrapes.
    """
    from ..cluster.coordinator import ClusterConfig, ClusterCoordinator
    from .config import ServeConfig
    from .core import ClusterServingCore
    from .endpoint import AsyncClusterService
    instrumentation = None
    if tracing:
        from ..observability.instrumentation import Instrumentation
        from ..observability.spans import Tracer
        instrumentation = Instrumentation("cluster",
                                          tracer=Tracer(capacity=8192))
    coordinator = ClusterCoordinator(
        ClusterConfig(n_shards=n_shards, signing="none", seed=seed,
                      backend="flat"),
        instrumentation=instrumentation)
    coordinator.bootstrap([])
    serve_config = config if config is not None else ServeConfig(
        max_inflight=128, tick_interval=1.0)
    core = ClusterServingCore(coordinator, serve_config)
    service = AsyncClusterService(core)
    await service.start()
    return service


def _parse_addresses(text: str) -> List[Tuple[str, int]]:
    addresses = []
    for part in text.split(","):
        host, _, port = part.strip().rpartition(":")
        addresses.append((host or "127.0.0.1", int(port)))
    return addresses


async def _amain(args) -> int:
    if args.quick:
        profile = LoadProfile(clients=500, sockets=8, duration=2.0,
                              churn_clients=25,
                              heartbeat_interval=0.5,
                              subcast_fraction=args.subcast,
                              subcast_targets=args.subcast_targets)
    else:
        profile = LoadProfile(clients=args.clients, sockets=args.sockets,
                              duration=args.duration,
                              churn_clients=args.churn,
                              heartbeat_interval=args.heartbeat,
                              subcast_fraction=args.subcast,
                              subcast_targets=args.subcast_targets)
    log = (lambda text: print(text, file=sys.stderr))
    service = None
    if args.udp:
        if args.trace or args.trace_out or args.flight_out:
            raise SystemExit("--trace/--trace-out/--flight-out need the "
                             "self-hosted cluster (omit --udp)")
        addresses = _parse_addresses(args.udp)
    else:
        service = await self_hosted_cluster(n_shards=args.shards,
                                            tracing=args.trace)
        addresses = service.udp_addresses
        log(f"self-hosted {args.shards}-shard cluster on "
            f"{[addr[1] for addr in addresses]}"
            + (" (tracing on)" if args.trace else ""))
    try:
        stats = await run_load(addresses, profile, log=log)
        document = stats.as_dict()
        document["clients"] = profile.clients
        snapshot = await scrape(addresses[0])
        if snapshot is not None:
            from ..observability.export import validate_snapshot
            validate_snapshot(snapshot)
            document["server_snapshot_label"] = snapshot.get("label")
            if args.snapshot_out:
                from ..observability.export import write_snapshot
                write_snapshot(args.snapshot_out, snapshot)
                log(f"wrote metrics snapshot to {args.snapshot_out}")
        if service is not None and args.trace_out:
            from ..observability.spans import TRACE_SCHEMA
            spans = service.core.instrumentation.tracer.export()
            with open(args.trace_out, "w", encoding="utf-8") as handle:
                json.dump({"schema": TRACE_SCHEMA, "spans": spans},
                          handle, indent=2, sort_keys=True)
                handle.write("\n")
            document["trace_spans"] = len(spans)
            log(f"wrote {len(spans)} spans to {args.trace_out}")
        if service is not None and args.flight_out:
            flight = service.core.dump_flight("loadgen",
                                              path=args.flight_out)
            document["flight_events"] = len(flight["events"])
            log(f"wrote {len(flight['events'])} flight events to "
                f"{args.flight_out}")
        print(json.dumps(document, indent=2, sort_keys=True))
        return 0 if stats.ramp_joined >= profile.clients * 0.99 else 1
    finally:
        if service is not None:
            await service.aclose()


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.loadgen",
        description="Drive a live async key service with simulated "
                    "clients.")
    parser.add_argument("--udp", help="target address list "
                        "host:port[,host:port...] (default: self-host)")
    parser.add_argument("--shards", type=int, default=3,
                        help="shards for the self-hosted cluster")
    parser.add_argument("--clients", type=int, default=10_000)
    parser.add_argument("--sockets", type=int, default=32)
    parser.add_argument("--duration", type=float, default=10.0)
    parser.add_argument("--churn", type=int, default=200,
                        help="clients cycling leave/join")
    parser.add_argument("--heartbeat", type=float, default=5.0,
                        help="mean per-client heartbeat interval (s)")
    parser.add_argument("--subcast", type=float, default=0.0,
                        metavar="FRACTION",
                        help="chance per heartbeat tick of issuing a "
                             "covered-multicast request instead")
    parser.add_argument("--subcast-targets", type=int, default=8,
                        help="target subset size per subcast request")
    parser.add_argument("--quick", action="store_true",
                        help="small smoke profile (500 clients, 2s)")
    parser.add_argument("--trace", action="store_true",
                        help="enable span tracing on the self-hosted "
                             "cluster")
    parser.add_argument("--trace-out", metavar="PATH",
                        help="write exported spans (repro-trace/1 JSON); "
                             "implies --trace")
    parser.add_argument("--flight-out", metavar="PATH",
                        help="dump the serving core's flight recorder "
                             "to PATH after the run")
    parser.add_argument("--snapshot-out", metavar="PATH",
                        help="write the scraped metrics snapshot "
                             "(repro-metrics/1 JSON) for offline SLO "
                             "evaluation")
    args = parser.parse_args(argv)
    if args.trace_out:
        args.trace = True
    return asyncio.run(_amain(args))


if __name__ == "__main__":
    sys.exit(main())

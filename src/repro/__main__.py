"""Command line interface: run a UDP key server or drive a client.

Mirrors the paper's deployment: the key server process initialized from
a specification file, with clients exchanging request/rekey datagrams
over UDP.

Usage::

    # Terminal 1: serve (prints the bound port and a demo member key)
    python -m repro serve keyserver.spec --port 9500

    # Terminal 2: join, receive rekeys, leave
    python -m repro client --port 9500 --user alice --key <hex from serve>

    # One-shot local demo (server + N clients in-process over UDP)
    python -m repro demo --members 6
"""

from __future__ import annotations

import argparse
import sys
import time

from .core.server import GroupKeyServer, ServerConfig
from .crypto.suite import PAPER_SUITE_NO_SIG
from .specfile import SpecError, config_from_spec, load_spec
from .transport.udp import UdpGroupMember, UdpKeyServer


def cmd_serve(args) -> int:
    """Run a UDP key server from a specification file."""
    try:
        if args.spec:
            config, initial_size = load_spec(args.spec)
        else:
            config, initial_size = config_from_spec("")
    except (OSError, SpecError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    server = GroupKeyServer(config)
    if initial_size:
        server.bootstrap([(f"m{i:05d}", server.new_individual_key())
                          for i in range(initial_size)])
    endpoint = UdpKeyServer(server, port=args.port)
    endpoint.start()
    host, port = endpoint.address
    print(f"group key server on {host}:{port} "
          f"(graph={config.graph}, strategy={config.strategy}, "
          f"d={config.degree}, n={server.n_users})")
    # Pre-register some individual keys so clients can join (stands in
    # for the out-of-band authentication exchange).
    for index in range(args.preregister):
        user = f"user{index}"
        key = server.new_individual_key()
        server.register_individual_key(user, key)
        print(f"  registered {user} individual-key={key.hex()}")
    print("serving; Ctrl-C to stop")
    try:
        while True:
            time.sleep(1.0)
    except KeyboardInterrupt:
        pass
    finally:
        endpoint.stop()
    processed = len(server.history)
    print(f"\nstopped after {processed} requests")
    return 0


def cmd_client(args) -> int:
    """Join a running server, pump rekeys, optionally leave."""
    member = UdpGroupMember(args.user, PAPER_SUITE_NO_SIG,
                            ("127.0.0.1", args.port), timeout=args.timeout)
    try:
        member.join(bytes.fromhex(args.key))
        print(f"{args.user} joined; leaf node {member.client.leaf_node_id}")
        deadline = time.time() + args.listen
        while time.time() < deadline:
            got = member.pump(timeout=0.5)
            if got:
                print(f"  processed {got} rekey message(s); "
                      f"holding {member.client.key_count()} keys")
        if args.leave:
            member.leave()
            print(f"{args.user} left the group")
    finally:
        member.close()
    return 0


def cmd_demo(args) -> int:
    """Self-contained UDP demo: one server, several members."""
    server = GroupKeyServer(ServerConfig(
        strategy="group", degree=4, suite=PAPER_SUITE_NO_SIG,
        signing="none", seed=b"cli-demo"))
    endpoint = UdpKeyServer(server)
    endpoint.start()
    members = []
    try:
        print(f"demo server on {endpoint.address}")
        for index in range(args.members):
            user = f"demo{index}"
            key = server.new_individual_key()
            server.register_individual_key(user, key)
            member = UdpGroupMember(user, PAPER_SUITE_NO_SIG,
                                    endpoint.address, timeout=10.0)
            member.join(key)
            members.append(member)
            print(f"  {user} joined over UDP")
        for member in members:
            member.pump()
        group_key = server.group_key()
        in_sync = sum(1 for member in members
                      if member.client.group_key() == group_key)
        print(f"{in_sync}/{len(members)} clients hold the group key")
        members[0].leave()
        for member in members[1:]:
            member.pump()
        new_key = server.group_key()
        in_sync = sum(1 for member in members[1:]
                      if member.client.group_key() == new_key)
        print(f"after one leave: {in_sync}/{len(members) - 1} rekeyed")
        return 0
    finally:
        for member in members:
            member.close()
        endpoint.stop()


def main(argv=None) -> int:
    """Parse arguments and dispatch."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="SIGCOMM '98 key-graphs group key management")
    subparsers = parser.add_subparsers(dest="command", required=True)

    serve = subparsers.add_parser("serve", help="run a UDP key server")
    serve.add_argument("spec", nargs="?", help="specification file path")
    serve.add_argument("--port", type=int, default=0)
    serve.add_argument("--preregister", type=int, default=4,
                       help="individual keys to mint for demo clients")
    serve.set_defaults(func=cmd_serve)

    client = subparsers.add_parser("client", help="join a running server")
    client.add_argument("--port", type=int, required=True)
    client.add_argument("--user", required=True)
    client.add_argument("--key", required=True,
                        help="individual key (hex) from the server")
    client.add_argument("--listen", type=float, default=5.0,
                        help="seconds to keep processing rekey messages")
    client.add_argument("--timeout", type=float, default=5.0)
    client.add_argument("--leave", action="store_true",
                        help="leave the group before exiting")
    client.set_defaults(func=cmd_client)

    demo = subparsers.add_parser("demo", help="self-contained UDP demo")
    demo.add_argument("--members", type=int, default=6)
    demo.set_defaults(func=cmd_demo)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())

"""Member-side resilience shim around :class:`~repro.core.client.
GroupClient`.

A :class:`ResilientMember` owns one client and gives it the three
behaviors a lossy network demands:

* a single :meth:`handle` entry point that dispatches whatever arrives
  (rekeys, resync replies, acks, data) — under chaos, messages arrive
  out of order and mis-typed dispatch is itself a failure mode;
* heartbeats (:meth:`beat`) carrying the member's current group-key
  view in the header root ref, so the server can spot staleness without
  the member even knowing it is stale;
* self-initiated repair (:meth:`maintain`): when the client's gap
  detection trips, send ``MSG_RESYNC_REQUEST`` up the uplink instead of
  waiting for the server's heartbeat-driven push.

The uplink is an injected callable ``send(datagram: bytes)`` so the
shim works over any stack (direct server, cluster front end, or a test
harness capturing datagrams).
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional, Tuple

from ..core.client import GroupClient, StaleKeyError
from ..core.messages import (MSG_DATA, MSG_HEARTBEAT, MSG_JOIN_ACK,
                             MSG_JOIN_DENIED, MSG_LEAVE_ACK, MSG_LEAVE_DENIED,
                             MSG_REKEY, MSG_RESYNC_REPLY, MSG_RESYNC_REQUEST,
                             Message)

_CONTROL_TYPES = (MSG_JOIN_ACK, MSG_JOIN_DENIED, MSG_LEAVE_ACK,
                  MSG_LEAVE_DENIED)


class ResilientMember:
    """One group member with gap detection, heartbeats and resync."""

    def __init__(self, user_id: str, suite, server_public_key=None, *,
                 uplink: Optional[Callable[[bytes], None]] = None,
                 verify: bool = True):
        self.client = GroupClient(user_id, suite, server_public_key,
                                  verify=verify)
        self.uplink = uplink
        self._seq = 0
        #: Plaintexts of successfully opened data messages, in order.
        self.received: List[bytes] = []
        #: Data messages we could not open (stale/unheld group key).
        self.data_failures = 0
        #: Resync requests sent by :meth:`maintain`.
        self.resync_requests = 0

    # -- state passthrough -------------------------------------------------

    @property
    def user_id(self) -> str:
        return self.client.user_id

    @property
    def desynced(self) -> bool:
        return self.client.desynced

    @property
    def evicted(self) -> bool:
        return self.client.evicted

    def group_key(self) -> Optional[bytes]:
        return self.client.group_key()

    def root_ref(self) -> Tuple[int, int]:
        """The group-key view advertised in heartbeats ((0, 0) = none)."""
        return self.client.root_ref if self.client.root_ref is not None \
            else (0, 0)

    # -- inbound dispatch --------------------------------------------------

    def handle(self, data: bytes) -> int:
        """Process one inbound datagram of any type.

        Returns the message type handled.  Unknown or stale traffic is
        absorbed, never raised: under chaos, late duplicates of every
        message class arrive and must not wedge the member.
        """
        message = Message.decode(data)
        if message.msg_type == MSG_REKEY:
            self.client.process_message(message)
        elif message.msg_type == MSG_RESYNC_REPLY:
            self.client.process_resync(message)
        elif message.msg_type in _CONTROL_TYPES:
            self.client.process_control(message)
        elif message.msg_type == MSG_DATA:
            try:
                self.received.append(self.client.open_data(message))
            except StaleKeyError:
                # Gap detection has flagged the client; maintain() will
                # request a resync and the payload is lost (the app
                # layer's retransmission problem, not ours).
                self.data_failures += 1
        return message.msg_type

    # -- outbound ----------------------------------------------------------

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def heartbeat_datagram(self) -> bytes:
        """One heartbeat carrying our group-key view in the root ref."""
        node_id, version = self.root_ref()
        return Message(
            msg_type=MSG_HEARTBEAT, seq=self._next_seq(),
            timestamp_us=time.time_ns() // 1000,
            root_node_id=node_id, root_version=version,
            body=self.user_id.encode("utf-8")).encode()

    def resync_request_datagram(self) -> bytes:
        """One explicit resync request."""
        return Message(
            msg_type=MSG_RESYNC_REQUEST, seq=self._next_seq(),
            timestamp_us=time.time_ns() // 1000,
            body=self.user_id.encode("utf-8")).encode()

    def beat(self) -> bytes:
        """Send a heartbeat up the uplink; returns the datagram."""
        datagram = self.heartbeat_datagram()
        if self.uplink is not None:
            self.uplink(datagram)
        return datagram

    def maintain(self) -> List[bytes]:
        """Run one self-repair round.

        If the client has detected a gap (and was not evicted), send a
        resync request.  Returns the datagrams sent.
        """
        if self.evicted or not self.desynced:
            return []
        datagram = self.resync_request_datagram()
        self.resync_requests += 1
        if self.uplink is not None:
            self.uplink(datagram)
        return [datagram]

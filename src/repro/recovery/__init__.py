"""Client resynchronization and dead-member recovery.

The other half (with :mod:`repro.chaos`) of relaxing the paper's §5
reliable-delivery assumption:

* :class:`~repro.recovery.member.ResilientMember` — a member-side shim
  around :class:`~repro.core.client.GroupClient` that detects key-version
  gaps, heartbeats its group-key view, and requests resyncs;
* :class:`~repro.recovery.manager.RecoveryManager` — the server-side
  loop: answers resync requests, pushes resyncs at members whose
  heartbeats report a stale group key (with retry/backoff and a
  per-member delivery budget), detects dead members by heartbeat
  silence and escalates to an automatic eviction rekey, and sheds a
  deep eviction queue as one batch flush when the backend supports it;
* backends adapting the manager onto :class:`~repro.core.server.
  GroupKeyServer`, :class:`~repro.batch.rekeying.BatchRekeyServer` and
  :class:`~repro.cluster.coordinator.ClusterCoordinator`.
"""

from .backends import BatchBackend, ClusterBackend, ServerBackend
from .manager import RecoveryManager, RecoveryPolicy
from .member import ResilientMember

__all__ = [
    "BatchBackend", "ClusterBackend", "ServerBackend",
    "RecoveryManager", "RecoveryPolicy", "ResilientMember",
]

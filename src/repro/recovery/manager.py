"""Server-side recovery loop: resync pushes, retries, eviction, shedding.

The manager runs on *logical ticks* (the scenario/operator calls
:meth:`RecoveryManager.tick` once per protocol round), which keeps every
decision deterministic and testable — no wall-clock timers.

Per tick it:

1. marks members silent for more than ``dead_after`` ticks as dead and
   queues them for eviction;
2. sends every due resync push (a fresh reply is built per attempt, so
   retries always carry *current* keys), backing off exponentially and
   escalating to eviction when the per-member delivery budget runs out;
3. drains the eviction queue — one leave rekey per member, or, when the
   backend batches (:class:`~repro.recovery.backends.BatchBackend`) and
   the queue is at least ``shed_threshold`` deep, **one** collapsed
   group-oriented flush (overload shedding: a mass failure costs one
   rekey, not N).

Resyncs are also served pull-style: a member that detected its own gap
sends ``MSG_RESYNC_REQUEST`` and gets an immediate reply.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.messages import (MSG_HEARTBEAT, MSG_RESYNC_REQUEST,
                             MSG_RESYNC_REPLY, Message, OutboundMessage,
                             WireError)
from ..core.resync import RESYNC_NOT_MEMBER, parse_resync_body
from ..observability import Instrumentation


class RecoveryError(ValueError):
    """Raised on invalid recovery configuration or datagrams."""


@dataclass
class RecoveryPolicy:
    """Tunables of the recovery loop (all in logical ticks)."""

    dead_after: int = 8          # heartbeat silence before eviction
    max_attempts: int = 5        # per-member resync delivery budget
    backoff_base: int = 1        # first retry delay
    backoff_factor: int = 2      # exponential growth per retry
    backoff_cap: int = 8         # retry delay ceiling
    shed_threshold: int = 4      # queue depth that triggers a shed flush
    evict_on_budget_exhausted: bool = True

    def validate(self) -> None:
        """Check field consistency; raises RecoveryError."""
        if self.dead_after < 1:
            raise RecoveryError("dead_after must be >= 1")
        if self.max_attempts < 1:
            raise RecoveryError("max_attempts must be >= 1")
        if self.backoff_base < 1 or self.backoff_factor < 1:
            raise RecoveryError("backoff parameters must be >= 1")
        if self.shed_threshold < 2:
            raise RecoveryError("shed_threshold must be >= 2")

    def backoff(self, attempts: int) -> int:
        """Delay before the next push after ``attempts`` sends."""
        delay = self.backoff_base * self.backoff_factor ** max(
            0, attempts - 1)
        return min(delay, self.backoff_cap)


class _Pending:
    """One member's outstanding resync push."""

    __slots__ = ("attempts", "due")

    def __init__(self, due: int):
        self.attempts = 0
        self.due = due


class RecoveryManager:
    """Heartbeat-driven resynchronization and eviction for one backend."""

    def __init__(self, backend, transport, *,
                 policy: Optional[RecoveryPolicy] = None,
                 instrumentation: Optional[Instrumentation] = None):
        self.backend = backend
        self.transport = transport
        self.policy = policy if policy is not None else RecoveryPolicy()
        self.policy.validate()
        self.instrumentation = (instrumentation if instrumentation is not None
                                else Instrumentation("recovery"))
        registry = self.instrumentation.registry
        self._m_resyncs = registry.counter(
            "recovery_resyncs_total",
            "Resync replies produced, by trigger.", labels=("trigger",))
        self._m_retries = registry.counter(
            "recovery_retries_total",
            "Resync pushes retried after backoff.").labels()
        self._m_evictions = registry.counter(
            "recovery_evictions_total",
            "Members evicted, by reason.", labels=("reason",))
        self._m_sheds = registry.counter(
            "recovery_shed_flushes_total",
            "Eviction queues collapsed into one batch flush.").labels()
        self._m_failures = registry.counter(
            "recovery_backend_failures_total",
            "Backend errors while serving recovery, by op.",
            labels=("op",))
        self._m_pending = registry.gauge(
            "recovery_pending_resyncs",
            "Members with an outstanding resync push.").labels()
        self._m_tracked = registry.gauge(
            "recovery_tracked_members",
            "Members under heartbeat surveillance.").labels()

        self.now = 0
        self._last_seen: Dict[str, int] = {}
        self._pending: Dict[str, _Pending] = {}
        self._evict_queue: List[str] = []
        self._evict_attempts: Dict[str, int] = {}
        self.evicted: List[str] = []
        self.sheds = 0

    # -- surveillance ------------------------------------------------------

    def track(self, user_id: str) -> None:
        """Start heartbeat surveillance for a member (counts as seen now)."""
        self._last_seen[user_id] = self.now
        self._m_tracked.set(len(self._last_seen))

    def untrack(self, user_id: str) -> None:
        """Stop surveillance (clean leave or post-eviction)."""
        self._last_seen.pop(user_id, None)
        self._pending.pop(user_id, None)
        self._evict_attempts.pop(user_id, None)
        if user_id in self._evict_queue:
            self._evict_queue.remove(user_id)
        self._m_tracked.set(len(self._last_seen))
        self._m_pending.set(len(self._pending))

    @property
    def pending_resyncs(self) -> int:
        """Members with an outstanding resync push."""
        return len(self._pending)

    @property
    def pending_evictions(self) -> int:
        """Dead members queued for an eviction rekey."""
        return len(self._evict_queue)

    # -- datagram entry ----------------------------------------------------

    def receive(self, data: bytes) -> List[OutboundMessage]:
        """Handle one recovery datagram (heartbeat or resync request).

        Returns the reply messages (unsent — the caller owns delivery,
        matching ``handle_datagram`` semantics elsewhere).
        """
        try:
            message = Message.decode(data)
        except WireError as exc:
            raise RecoveryError(f"malformed datagram: {exc}") from None
        user_id = message.body.decode("utf-8", errors="replace")
        if message.msg_type == MSG_HEARTBEAT:
            self.heartbeat(user_id,
                           (message.root_node_id, message.root_version))
            return []
        if message.msg_type == MSG_RESYNC_REQUEST:
            reply = self.serve_request(user_id)
            return [reply] if reply is not None else []
        raise RecoveryError(
            f"unexpected message type {message.msg_type}")

    def heartbeat(self, user_id: str, root_ref) -> None:
        """Fold one heartbeat in: liveness plus group-key staleness."""
        self._last_seen[user_id] = self.now
        self._m_tracked.set(len(self._last_seen))
        if user_id in self._evict_queue and self.backend.is_member(user_id):
            # Went silent, came back before the eviction fired.
            self._evict_queue.remove(user_id)
            self._evict_attempts.pop(user_id, None)
        if not self.backend.is_member(user_id):
            # Not a member (evicted while it was down, or never joined):
            # one push tells it so (RESYNC_NOT_MEMBER, no retries).
            self._schedule(user_id)
            return
        if tuple(root_ref) != tuple(self.backend.group_key_ref()):
            self._schedule(user_id)
        else:
            # Confirmed current: cancel any outstanding push.
            if self._pending.pop(user_id, None) is not None:
                self._m_pending.set(len(self._pending))

    def serve_request(self, user_id: str) -> Optional[OutboundMessage]:
        """Answer a member-initiated resync request immediately."""
        self._last_seen[user_id] = self.now
        reply = self._build_reply(user_id, trigger="request")
        if reply is not None and self._pending.pop(user_id, None) is not None:
            self._m_pending.set(len(self._pending))
        return reply

    def _schedule(self, user_id: str) -> None:
        if user_id not in self._pending:
            self._pending[user_id] = _Pending(due=self.now)
            self._m_pending.set(len(self._pending))

    def _build_reply(self, user_id: str,
                     trigger: str) -> Optional[OutboundMessage]:
        try:
            reply = self.backend.resync(user_id)
        except Exception:
            # Backend temporarily unable (e.g. owning shard failed and
            # not yet promoted): the retry loop will come back.
            self._m_failures.inc(op="resync")
            return None
        self._m_resyncs.inc(trigger=trigger)
        return reply

    # -- the tick loop -----------------------------------------------------

    def tick(self) -> None:
        """Advance one logical round: silence, pushes, evictions."""
        self.now += 1
        self._detect_dead()
        self._push_due()
        self._drain_evictions()

    def _detect_dead(self) -> None:
        for user_id, last in list(self._last_seen.items()):
            if self.now - last <= self.policy.dead_after:
                continue
            del self._last_seen[user_id]
            self._pending.pop(user_id, None)
            if self.backend.is_member(user_id) \
                    and user_id not in self._evict_queue:
                self._evict_queue.append(user_id)
                self._m_evictions.inc(reason="silence")
        self._m_tracked.set(len(self._last_seen))
        self._m_pending.set(len(self._pending))

    def _push_due(self) -> None:
        tracer = self.instrumentation.tracer
        for user_id, entry in list(self._pending.items()):
            if entry.due > self.now:
                continue
            with tracer.span("resync.push", user=user_id,
                             attempt=entry.attempts + 1):
                reply = self._build_reply(user_id, trigger="push")
            if entry.attempts:
                self._m_retries.inc()
            entry.attempts += 1
            if reply is not None:
                self.transport.send(reply)
                status, _leaf = parse_resync_body(reply.message.body)
                if status == RESYNC_NOT_MEMBER:
                    # Nothing to converge to; no point retrying.
                    del self._pending[user_id]
                    continue
            if entry.attempts >= self.policy.max_attempts:
                del self._pending[user_id]
                if self.policy.evict_on_budget_exhausted \
                        and self.backend.is_member(user_id) \
                        and user_id not in self._evict_queue:
                    self._evict_queue.append(user_id)
                    self._m_evictions.inc(reason="budget")
                continue
            entry.due = self.now + self.policy.backoff(entry.attempts)
        self._m_pending.set(len(self._pending))

    def _drain_evictions(self) -> None:
        if not self._evict_queue:
            return
        tracer = self.instrumentation.tracer
        queue = [user_id for user_id in self._evict_queue
                 if self.backend.is_member(user_id)]
        if not queue:
            self._evict_queue.clear()
            return
        if self.backend.supports_batch \
                and len(queue) >= self.policy.shed_threshold:
            # Overload shedding: the whole queue in one batch flush.
            with tracer.span("resync.evict", members=len(queue),
                             mode="shed"):
                try:
                    messages = self.backend.evict(queue)
                except Exception:
                    self._m_failures.inc(op="evict")
                    self._bump_evict_attempts(queue)
                    return
            self._m_sheds.inc()
            self.sheds += 1
            self.transport.send_all(messages)
            for user_id in queue:
                self._finish_eviction(user_id)
            return
        for user_id in queue:
            with tracer.span("resync.evict", user=user_id, mode="single"):
                try:
                    messages = self.backend.evict([user_id])
                except Exception:
                    self._m_failures.inc(op="evict")
                    self._bump_evict_attempts([user_id])
                    continue
            self.transport.send_all(messages)
            self._finish_eviction(user_id)

    def _bump_evict_attempts(self, user_ids) -> None:
        """Count a failed eviction try; give up past the budget."""
        for user_id in user_ids:
            attempts = self._evict_attempts.get(user_id, 0) + 1
            if attempts >= self.policy.max_attempts:
                if user_id in self._evict_queue:
                    self._evict_queue.remove(user_id)
                self._evict_attempts.pop(user_id, None)
            else:
                self._evict_attempts[user_id] = attempts

    def _finish_eviction(self, user_id: str) -> None:
        self.evicted.append(user_id)
        if user_id in self._evict_queue:
            self._evict_queue.remove(user_id)
        self._evict_attempts.pop(user_id, None)
        self._pending.pop(user_id, None)
        self._last_seen.pop(user_id, None)

"""Backend adapters the :class:`~repro.recovery.manager.RecoveryManager`
drives.

Each backend normalizes one server flavor to the small surface the
manager needs: membership, the current group-key reference, building a
resync reply, and evicting a batch of dead members.  ``supports_batch``
tells the manager whether a deep eviction queue collapses into one
group-oriented flush (the overload-shedding path) or is processed as
individual leave rekeys.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..core.messages import OutboundMessage


class ServerBackend:
    """Adapter over an immediate-mode :class:`~repro.core.server.
    GroupKeyServer` (tree or star)."""

    supports_batch = False

    def __init__(self, server):
        self.server = server

    def is_member(self, user_id: str) -> bool:
        return self.server.is_member(user_id)

    def members(self) -> List[str]:
        return self.server.members()

    def group_key_ref(self) -> Tuple[int, int]:
        return self.server.group_key_ref()

    def resync(self, user_id: str) -> OutboundMessage:
        return self.server.resync(user_id)

    def evict(self, user_ids: Sequence[str]) -> List[OutboundMessage]:
        """One leave rekey per dead member, in order."""
        messages: List[OutboundMessage] = []
        for user_id in user_ids:
            outcome = self.server.leave(user_id)
            messages.extend(outcome.rekey_messages)
        return messages


class BatchBackend:
    """Adapter over a :class:`~repro.batch.rekeying.BatchRekeyServer`.

    Evictions — however many — fold into *one* flush: this is the
    overload-shedding path, turning a deep dead-member queue into a
    single group-oriented rekey instead of N per-leave rekeys.
    """

    supports_batch = True

    def __init__(self, server):
        self.server = server

    def is_member(self, user_id: str) -> bool:
        return self.server.is_member(user_id)

    def members(self) -> List[str]:
        return list(self.server.members())

    def group_key_ref(self) -> Tuple[int, int]:
        return self.server.group_key_ref()

    def resync(self, user_id: str) -> OutboundMessage:
        return self.server.resync(user_id)

    def evict(self, user_ids: Sequence[str]) -> List[OutboundMessage]:
        """Queue every dead member, rekey once."""
        for user_id in user_ids:
            self.server.request_leave(user_id)
        result = self.server.flush()
        messages: List[OutboundMessage] = []
        if result.rekey_message is not None:
            messages.append(result.rekey_message)
        messages.extend(result.joiner_messages)
        return messages


class ClusterBackend:
    """Adapter over a sharded :class:`~repro.cluster.coordinator.
    ClusterCoordinator` (resync served by the owning shard + root
    layer; evictions are cluster leaves)."""

    supports_batch = False

    def __init__(self, coordinator):
        self.coordinator = coordinator

    def is_member(self, user_id: str) -> bool:
        return self.coordinator.is_member(user_id)

    def members(self) -> List[str]:
        return self.coordinator.members()

    def group_key_ref(self) -> Tuple[int, int]:
        return self.coordinator.group_key_ref()

    def resync(self, user_id: str) -> OutboundMessage:
        return self.coordinator.resync(user_id)

    def evict(self, user_ids: Sequence[str]) -> List[OutboundMessage]:
        messages: List[OutboundMessage] = []
        for user_id in user_ids:
            outcome = self.coordinator.leave(user_id)
            messages.extend(outcome.rekey_messages)
        return messages

"""Shared infrastructure for the table/figure reproductions.

Every experiment module exposes ``run(scale) -> TableData`` where
``scale`` selects between two parameter sets:

* ``QUICK``  — small groups / short workloads, minutes of wall time for
  the whole suite; used by the benchmark harness and CI;
* ``PAPER``  — the paper's parameters (initial size 8192, 1000 requests,
  3 sequences, degrees 4/8/16, group sizes 32..8192); run via
  ``python -m repro.experiments --paper``.

Absolute milliseconds cannot match a 1998 SGI Origin 200 running C
(CryptoLib) — this is pure Python — but every *shape* the paper reports
is asserted by the test suite against these experiment outputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..crypto.suite import (PAPER_SUITE, PAPER_SUITE_ENC_ONLY,
                            PAPER_SUITE_NO_SIG)
from ..simulation.runner import ExperimentConfig, run_experiment

STRATEGY_ORDER = ("user", "key", "group")


@dataclass(frozen=True)
class Scale:
    """Parameter set for one reproduction pass."""

    name: str
    initial_size: int            # Tables 4-6 / Figure 11/12 group size
    n_requests: int
    group_sizes: Sequence[int]   # Figure 10 sweep
    degrees: Sequence[int]       # Table 5/6, Figure 11/12 sweep
    n_sequences: int


QUICK = Scale(name="quick", initial_size=256, n_requests=60,
              group_sizes=(32, 128, 512, 1024),
              degrees=(2, 4, 8, 16), n_sequences=1)

PAPER = Scale(name="paper", initial_size=8192, n_requests=1000,
              group_sizes=(32, 128, 512, 2048, 8192),
              degrees=(2, 4, 8, 16), n_sequences=3)


@dataclass
class TableData:
    """One regenerated table/figure: headers + rows + provenance."""

    title: str
    headers: List[str]
    rows: List[List[object]]
    notes: str = ""

    def format(self) -> str:
        """Plain-text rendering in the paper's row layout."""
        columns = [self.headers] + [
            [_render(cell) for cell in row] for row in self.rows]
        widths = [max(len(row[i]) for row in columns)
                  for i in range(len(self.headers))]
        lines = [self.title, "=" * len(self.title)]
        lines.append("  ".join(h.ljust(w) for h, w in zip(self.headers, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append("  ".join(
                _render(cell).ljust(width)
                for cell, width in zip(row, widths)))
        if self.notes:
            lines.append("")
            lines.append(self.notes)
        return "\n".join(lines)


def _render(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def strategy_experiment(scale: Scale, strategy: str, *, degree: int = 4,
                        initial_size: Optional[int] = None,
                        suite=PAPER_SUITE, signing: str = "merkle",
                        client_mode: str = "accounting",
                        seed: bytes = b"sigcomm98") -> "ExperimentResult":
    """One configured run with the scale's workload length."""
    config = ExperimentConfig(
        initial_size=initial_size if initial_size is not None
        else scale.initial_size,
        n_requests=scale.n_requests,
        degree=degree, strategy=strategy, suite=suite, signing=signing,
        client_mode=client_mode, seed=seed)
    return run_experiment(config)


SUITES_BY_PROTECTION = {
    "encryption-only": PAPER_SUITE_ENC_ONLY,
    "encryption+digest+signature": PAPER_SUITE,
}


def signing_for(suite) -> str:
    """'merkle' when the suite signs, else 'none'."""
    return "merkle" if suite.signs else "none"

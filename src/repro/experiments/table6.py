"""Table 6: number and size of rekey messages received by a client.

Receiver-weighted average message size per join/leave, per strategy and
degree.  Every client receives exactly one rekey message per request in
all three strategies; the *size* ordering reverses the server-side one:
user-oriented smallest, group-oriented largest (clients receive keys
they do not need).
"""

from __future__ import annotations

from .common import (QUICK, STRATEGY_ORDER, Scale, TableData,
                     strategy_experiment)


def run(scale: Scale = QUICK) -> TableData:
    """Regenerate this table/figure at the given scale."""
    rows = []
    for degree in scale.degrees:
        if degree < 3:
            continue
        for strategy in STRATEGY_ORDER:
            result = strategy_experiment(scale, strategy, degree=degree,
                                         signing="merkle", seed=b"table6")
            metrics = result.client_metrics
            join = metrics.received_size("join")
            leave = metrics.received_size("leave")
            per_request = metrics.messages_per_client_per_request(
                len(result.records))
            rows.append([degree, strategy, join.mean, leave.mean,
                         per_request])
    return TableData(
        title=(f"Table 6: rekey messages received by a client "
               f"(initial group size {scale.initial_size}, enc+signature)"),
        headers=["d", "strategy", "join size ave (B)", "leave size ave (B)",
                 "msgs per client per request"],
        rows=rows,
        notes=("Expected shape: each client receives ~1 rekey message per "
               "request under every strategy; received sizes order "
               "user < key < group (reverse of the server-side ranking), "
               "and the group-oriented leave size grows with d."),
    )

"""Figure 10: server processing time per request vs group size.

Two panels: rekey messages with DES-CBC encryption only (left), and with
encryption + MD5 digest + RSA-512 signature (right); three strategies;
key tree degree 4; group sizes on a log axis.

The headline scalability claim: processing time grows (approximately)
linearly with the *logarithm* of group size.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .common import (QUICK, STRATEGY_ORDER, SUITES_BY_PROTECTION, Scale,
                     TableData, signing_for, strategy_experiment)


def run(scale: Scale = QUICK, degree: int = 4) -> TableData:
    """Regenerate this table/figure at the given scale."""
    rows = []
    for protection, suite in SUITES_BY_PROTECTION.items():
        for strategy in STRATEGY_ORDER:
            for size in scale.group_sizes:
                result = strategy_experiment(
                    scale, strategy, degree=degree, initial_size=size,
                    suite=suite, signing=signing_for(suite),
                    client_mode="none", seed=b"fig10")
                rows.append([protection, strategy, size,
                             result.mean_processing_ms,
                             result.final_height])
    return TableData(
        title=(f"Figure 10: server processing time per request vs group "
               f"size (key tree degree {degree})"),
        headers=["protection", "strategy", "group size", "mean ms",
                 "tree height"],
        rows=rows,
        notes=("Expected shape: for each (protection, strategy) series, "
               "mean ms grows ~linearly in log(group size); group- < "
               "key- < user-oriented on the server side."),
    )


def series(table: TableData) -> Dict[Tuple[str, str], List[Tuple[int, float]]]:
    """(protection, strategy) -> [(group size, mean ms)] for assertions."""
    result: Dict[Tuple[str, str], List[Tuple[int, float]]] = {}
    for protection, strategy, size, ms, _height in table.rows:
        result.setdefault((protection, strategy), []).append((size, ms))
    return result

"""Million-member scaling sweep for the flat tree backend.

The paper's evaluation stops at n = 8192 (Figure 10); the flat
array-backed storage engine exists to push the same server three
orders of magnitude further.  This harness measures, at each group
size on the ``flat`` backend:

* bulk-build throughput (members/s) and storage bytes per member,
* steady-state churn throughput (leave+join rekeys/s at size n),
* peak process RSS,

plus three one-off comparisons:

* flat vs object backend build memory (tracemalloc, moderate n),
* ``TreeNode`` per-instance size with ``__slots__`` vs the same
  fields on a ``__dict__`` class (the before/after for the slots
  satellite),
* journal replay vs full bootstrap at restart (the "restart replays
  instead of rebuilding" claim), with a byte-identity check.

Results land in ``BENCH_PR6.json`` (``repro-bench/1`` schema,
validated by ``benchmarks/bench_io.py``).  Modes:

``--quick``
    Sweep stops at n = 100 000 (CI's million-smoke job).
``--check``
    Gate peak RSS and minimum rekeys/s, and require the journal
    round-trip to be byte-identical; non-zero exit on violation.

Run: ``PYTHONPATH=src python -m repro.experiments.million_scale``
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import platform
import random
import resource
import sys
import tempfile
import time
import tracemalloc
from typing import Callable, List, Tuple

from ..core import persistence
from ..core.server import GroupKeyServer, ServerConfig
from ..keygraph.backend import build_tree
from ..keygraph.tree import TreeNode

DEGREE = 4
KEY_LEN = 16

# Sweep sizes: --quick stops at 100k (CI), the full run reaches 1M.
QUICK_SIZES = (10_000, 100_000)
FULL_SIZES = (10_000, 100_000, 1_000_000)

# --check gates (calibrated ~4x slack under the measured CI-class
# numbers so the smoke job catches regressions, not machine jitter).
CHECK_MIN_REKEYS_PER_S = 2_000.0     # churn at the largest swept n
CHECK_MAX_RSS_MB = {True: 1_536.0,   # quick: n = 100k
                    False: 8_192.0}  # full:  n = 1M


def _keygen(seed: bytes) -> Callable[[], bytes]:
    """Fast deterministic key source (bench only — not the DRBG)."""
    rng = random.Random(seed)
    return lambda: rng.randbytes(KEY_LEN)


def _members(n: int) -> List[Tuple[str, bytes]]:
    rng = random.Random(b"million-members")
    return [(f"u{i:07d}", rng.randbytes(KEY_LEN)) for i in range(n)]


def _peak_rss_mb() -> float:
    """High-water RSS of this process in MiB (Linux: ru_maxrss is KiB)."""
    peak_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - bytes on macOS
        peak_kb /= 1024.0
    return peak_kb / 1024.0


# -- sweep stages ----------------------------------------------------------

def sweep_size(n: int, churn_ops: int) -> dict:
    """Build an n-member flat tree, then churn it; return the numbers."""
    members = _members(n)
    gc.collect()
    start = time.perf_counter()
    tree = build_tree("flat", members, DEGREE, _keygen(b"sweep-build"))
    build_s = time.perf_counter() - start
    storage = tree.storage_bytes()

    # Steady-state churn at size n: each op pair is one leave rekey
    # plus one join rekey through the O(log n) joining-point descent.
    rng = random.Random(b"churn")
    keygen = _keygen(b"churn-keys")
    start = time.perf_counter()
    for _ in range(churn_ops):
        user = f"u{rng.randrange(n):07d}"
        if tree.has_user(user):
            tree.leave(user)
        else:
            tree.join(user, keygen())
    churn_s = time.perf_counter() - start
    tree.validate()

    del tree, members
    gc.collect()
    return {
        "n": n,
        "build_members_per_s": n / build_s,
        "storage_bytes_per_member": storage / n,
        "rekeys_per_s": churn_ops / churn_s,
    }


def backend_memory(n: int) -> dict:
    """tracemalloc'd build footprint: flat vs object backend at size n."""
    members = _members(n)
    sizes = {}
    for backend in ("flat", "object"):
        gc.collect()
        tracemalloc.start()
        tree = build_tree(backend, members, DEGREE, _keygen(b"mem"))
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        sizes[backend] = peak / n
        del tree
        gc.collect()
    return {"n": n,
            "flat_bytes_per_member": sizes["flat"],
            "object_bytes_per_member": sizes["object"]}


def slots_note() -> dict:
    """Per-instance TreeNode bytes: ``__slots__`` vs a ``__dict__`` twin."""
    class DictNode:  # the pre-slots shape: same fields, instance __dict__
        def __init__(self, node_id, key, user_id):
            self.node_id = node_id
            self.key = key
            self.version = 0
            self.user_id = user_id
            self.parent = None
            self.children = []

    slotted = TreeNode(1, b"\x00" * KEY_LEN, "u1")
    plain = DictNode(1, b"\x00" * KEY_LEN, "u1")
    return {
        "slots_bytes": sys.getsizeof(slotted),
        "dict_bytes": sys.getsizeof(plain) + sys.getsizeof(plain.__dict__),
    }


def journal_restart(n: int, ops: int) -> dict:
    """Restart-by-replay vs rebuild-by-bootstrap, with identity check."""
    config = ServerConfig(degree=DEGREE, strategy="group",
                          seed=b"million-journal", backend="flat")
    members = [(f"j{i:05d}", b"\x00" * 8) for i in range(n)]
    fd, path = tempfile.mkstemp(suffix=".journal")
    os.close(fd)
    try:
        server = GroupKeyServer(config)
        persistence.attach_journal(server, path)
        server.bootstrap(members)
        present = [user_id for user_id, _ in members]
        rng = random.Random(b"journal-churn")
        for i in range(ops):
            if i % 3 == 2 and present:
                server.leave(present.pop(rng.randrange(len(present))))
            else:
                server.join(f"x{i:05d}", server.new_individual_key())

        start = time.perf_counter()
        replayed = persistence.restore_from_journal(path)
        replay_s = time.perf_counter() - start
        identical = (persistence.snapshot(replayed)
                     == persistence.snapshot(server))

        # The alternative restart path: rebuild from scratch and re-run
        # every op through the full rekey pipeline.
        start = time.perf_counter()
        rebuilt = GroupKeyServer(config)
        rebuilt.bootstrap(members)
        present = [user_id for user_id, _ in members]
        rng = random.Random(b"journal-churn")
        for i in range(ops):
            if i % 3 == 2 and present:
                rebuilt.leave(present.pop(rng.randrange(len(present))))
            else:
                rebuilt.join(f"x{i:05d}", rebuilt.new_individual_key())
        rebuild_s = time.perf_counter() - start
    finally:
        os.unlink(path)
    return {"n": n, "ops": ops, "identical": identical,
            "replay_ms": replay_s * 1e3, "rebuild_ms": rebuild_s * 1e3}


# -- report ----------------------------------------------------------------

def run(quick: bool) -> dict:
    """Execute the sweep and return a ``repro-bench/1`` report."""
    report = {
        "schema": "repro-bench/1",
        "label": "PR6",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "quick": quick,
        "metrics": {},
    }

    def metric(name, unit, value, baseline=None):
        entry = {"unit": unit, "value": round(float(value), 4)}
        if baseline is not None:
            entry["baseline"] = round(float(baseline), 4)
            entry["speedup"] = (round(value / baseline, 2)
                                if baseline > 0 else None)
        report["metrics"][name] = entry
        extra = f"  (baseline {entry.get('baseline')})" if baseline else ""
        print(f"  {name}: {entry['value']} {unit}{extra}")

    sizes = QUICK_SIZES if quick else FULL_SIZES
    for n in sizes:
        churn_ops = 2_000 if n >= 100_000 else 1_000
        print(f"[sweep] flat backend, n={n:,} ...")
        row = sweep_size(n, churn_ops)
        tag = f"n{n // 1000}k" if n < 1_000_000 else f"n{n // 1_000_000}m"
        metric(f"flat_build_{tag}", "members/s", row["build_members_per_s"])
        metric(f"flat_storage_{tag}", "bytes/member",
               row["storage_bytes_per_member"])
        metric(f"flat_rekeys_{tag}", "rekeys/s", row["rekeys_per_s"])

    print("[memory] flat vs object backend build footprint ...")
    mem = backend_memory(20_000 if quick else 100_000)
    metric(f"build_mem_n{mem['n'] // 1000}k", "bytes/member",
           mem["flat_bytes_per_member"],
           baseline=mem["object_bytes_per_member"])

    note = slots_note()
    print("[slots] TreeNode per-instance size ...")
    metric("treenode_slots", "bytes", note["slots_bytes"],
           baseline=note["dict_bytes"])

    print("[journal] restart by replay vs rebuild ...")
    jr = journal_restart(512 if quick else 2_048, 300 if quick else 600)
    metric("journal_replay", "ms", jr["replay_ms"],
           baseline=jr["rebuild_ms"])
    metric("journal_replay_identical", "bool", 1.0 if jr["identical"]
           else 0.0)

    metric("peak_rss", "MB", _peak_rss_mb())
    return report


def check(report: dict, quick: bool) -> List[str]:
    """Gate the report; returns a list of violations (empty = pass)."""
    failures = []
    metrics = report["metrics"]
    rss = metrics["peak_rss"]["value"]
    rss_cap = CHECK_MAX_RSS_MB[quick]
    if rss > rss_cap:
        failures.append(f"peak RSS {rss:.0f} MB exceeds cap {rss_cap} MB")
    top = "flat_rekeys_n100k" if quick else "flat_rekeys_n1m"
    rate = metrics[top]["value"]
    if rate < CHECK_MIN_REKEYS_PER_S:
        failures.append(f"{top} {rate:.0f} rekeys/s below floor "
                        f"{CHECK_MIN_REKEYS_PER_S:.0f}")
    if metrics["journal_replay_identical"]["value"] != 1.0:
        failures.append("journal replay was not byte-identical")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="stop the sweep at n=100k (CI smoke)")
    parser.add_argument("--check", action="store_true",
                        help="gate peak RSS / rekeys/s / replay identity")
    parser.add_argument("--out", default="BENCH_PR6.json",
                        help="report path (default: BENCH_PR6.json)")
    args = parser.parse_args(argv)

    report = run(args.quick)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.out} ({len(report['metrics'])} metrics)")

    if args.check:
        failures = check(report, args.quick)
        for failure in failures:
            print(f"CHECK FAILED: {failure}", file=sys.stderr)
        if failures:
            return 1
        print("all checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Table 1: number of keys held by the server and by each user.

Analytic formulas cross-checked against actually constructed star, tree
and complete key graphs.
"""

from __future__ import annotations

from ..core import costs
from ..crypto import drbg
from ..keygraph.complete import CompleteGroup
from ..keygraph.star import StarGroup
from ..keygraph.tree import KeyTree
from .common import QUICK, Scale, TableData


def run(scale: Scale = QUICK, n_users: int = 81, degree: int = 3,
        complete_n: int = 8) -> TableData:
    """Build all three graph classes and count keys.

    ``n_users`` defaults to a power of ``degree`` so the tree is full and
    balanced; the complete class uses a deliberately tiny ``complete_n``
    (2**n - 1 keys!).
    """
    source = drbg.make_source(b"table1")
    keygen = lambda: source.generate(8)

    star = StarGroup(keygen)
    for i in range(n_users):
        star.join(f"u{i}", keygen())

    tree = KeyTree.build([(f"u{i}", keygen()) for i in range(n_users)],
                         degree, keygen)
    height = tree.height()

    complete = CompleteGroup([f"u{i}" for i in range(complete_n)], keygen)

    rows = [
        ["Star", f"n+1 = {costs.star_total_keys(n_users)}", star.n_keys,
         f"2", 2],
        ["Tree",
         f"~d/(d-1) n = {float(costs.tree_total_keys(n_users, degree)):.0f}",
         tree.n_keys,
         f"h = {costs.tree_keys_per_user(n_users, degree)}",
         len(tree.user_key_path(f"u0"))],
        ["Complete",
         f"2^n-1 = {costs.complete_total_keys(complete_n)}",
         complete.n_keys,
         f"2^(n-1) = {costs.complete_keys_per_user(complete_n)}",
         len(complete.keyset("u0"))],
    ]
    return TableData(
        title=(f"Table 1: keys held by server / per user "
               f"(n={n_users}, d={degree}; complete n={complete_n})"),
        headers=["class", "total (analytic)", "total (built)",
                 "per user (analytic)", "per user (built)"],
        rows=rows,
        notes=f"tree height h = {height}",
    )

"""Table 4: the signing technique (paper §4).

Average rekey message size and server processing time per join/leave,
for each rekeying strategy, under (a) one RSA signature per rekey
message, and (b) one Merkle-certified signature for all of a request's
rekey messages.  The paper reports a ~10x processing-time reduction for
user- and key-oriented rekeying; group-oriented (one message per
request) is unaffected.
"""

from __future__ import annotations

from typing import Dict

from ..crypto.suite import CipherSuite
from .common import (QUICK, STRATEGY_ORDER, Scale, TableData,
                     strategy_experiment)


def run(scale: Scale = QUICK, degree: int = 4,
        signature_bits: int = 512) -> TableData:
    """Regenerate Table 4.

    ``signature_bits`` defaults to the paper's RSA-512.  Substrate note:
    the paper's premise is "a digital signature operation is around two
    orders of magnitude slower than a key encryption" — true for C
    DES vs RSA-512 in 1998, but pure-Python DES is slow relative to
    Python's bignum RSA-512, which compresses the measured speedup.
    Running with ``signature_bits=2048`` restores the paper's relative
    cost structure (RSA sign ~ 100x a rekey-item encryption here) and
    with it the ~10x Merkle speedup.
    """
    suite = CipherSuite("des", "md5", signature_bits)
    rows = []
    measurements: Dict[str, Dict[str, object]] = {}
    for strategy in STRATEGY_ORDER:
        cells = {}
        for signing, label in (("per-message", "one sig per msg"),
                               ("merkle", "one sig for all")):
            result = strategy_experiment(scale, strategy, degree=degree,
                                         suite=suite,
                                         signing=signing, seed=b"table4")
            metrics = result.server_metrics
            cells[signing] = {
                "join_size": metrics.join.message_bytes.mean,
                "leave_size": metrics.leave.message_bytes.mean,
                "join_ms": metrics.join.processing_ms.mean,
                "leave_ms": metrics.leave.processing_ms.mean,
                "ave_ms": (metrics.join.processing_ms.mean
                           + metrics.leave.processing_ms.mean) / 2,
            }
        measurements[strategy] = cells
        per_message = cells["per-message"]
        merkle = cells["merkle"]
        rows.append([
            strategy,
            per_message["join_size"], per_message["leave_size"],
            per_message["join_ms"], per_message["leave_ms"],
            per_message["ave_ms"],
            merkle["join_size"], merkle["leave_size"],
            merkle["join_ms"], merkle["leave_ms"], merkle["ave_ms"],
        ])
    return TableData(
        title=(f"Table 4: signing technique, key tree degree {degree}, "
               f"n={scale.initial_size} (DES, MD5, RSA-{signature_bits})"),
        headers=["strategy",
                 "sig/msg join B", "sig/msg leave B",
                 "sig/msg join ms", "sig/msg leave ms", "sig/msg ave ms",
                 "merkle join B", "merkle leave B",
                 "merkle join ms", "merkle leave ms", "merkle ave ms"],
        rows=rows,
        notes=("Expected shape: user/key-oriented ave ms drops ~10x with "
               "the Merkle technique; group-oriented is unchanged (one "
               "rekey message either way); message sizes grow slightly "
               "(the Merkle certificate)."),
    )


def speedup(table: TableData) -> Dict[str, float]:
    """Per-strategy ave-ms ratio (per-message / merkle) for assertions."""
    ratios = {}
    for row in table.rows:
        strategy = row[0]
        per_message_ave, merkle_ave = row[5], row[10]
        ratios[strategy] = (per_message_ave / merkle_ave
                            if merkle_ave else float("inf"))
    return ratios

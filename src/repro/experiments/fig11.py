"""Figure 11: server processing time vs key tree degree.

Fixed initial group size, degree sweep, for encryption-only and
encryption+digest+signature configurations.  Three observations the
paper draws: the optimal degree is around 4; group- beats key- beats
user-oriented on the server; signing adds an order of magnitude.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .common import (QUICK, STRATEGY_ORDER, SUITES_BY_PROTECTION, Scale,
                     TableData, signing_for, strategy_experiment)


def run(scale: Scale = QUICK) -> TableData:
    """Regenerate this table/figure at the given scale."""
    rows = []
    for protection, suite in SUITES_BY_PROTECTION.items():
        for strategy in STRATEGY_ORDER:
            for degree in scale.degrees:
                result = strategy_experiment(
                    scale, strategy, degree=degree,
                    suite=suite, signing=signing_for(suite),
                    client_mode="none", seed=b"fig11")
                rows.append([protection, strategy, degree,
                             result.mean_processing_ms,
                             result.server_metrics.join.encryptions.mean,
                             result.server_metrics.leave.encryptions.mean])
    return TableData(
        title=(f"Figure 11: server processing time vs key tree degree "
               f"(initial group size {scale.initial_size})"),
        headers=["protection", "strategy", "degree", "mean ms",
                 "join enc ave", "leave enc ave"],
        rows=rows,
        notes=("Expected shape: per-strategy encryption counts are "
               "U-shaped in d with the minimum near d=4; server-side "
               "strategy ranking group < key < user."),
    )


def series(table: TableData) -> Dict[Tuple[str, str], List[Tuple[int, float]]]:
    """(protection, strategy) -> [(degree, mean ms)]."""
    result: Dict[Tuple[str, str], List[Tuple[int, float]]] = {}
    for protection, strategy, degree, ms, _je, _le in table.rows:
        result.setdefault((protection, strategy), []).append((degree, ms))
    return result


def encryption_series(table: TableData) -> Dict[str, List[Tuple[int, float]]]:
    """strategy -> [(degree, mean join+leave encryptions)] (enc-only rows)."""
    result: Dict[str, List[Tuple[int, float]]] = {}
    for protection, strategy, degree, _ms, join_enc, leave_enc in table.rows:
        if protection == "encryption-only":
            result.setdefault(strategy, []).append(
                (degree, (join_enc + leave_enc) / 2))
    return result

"""Regeneration of every table and figure in the paper's evaluation.

============  ==========================================================
module        reproduces
============  ==========================================================
``table1``    Table 1 — number of keys (star / tree / complete)
``table2``    Table 2 — join/leave cost for server and users
``table3``    Table 3 — average cost per operation, optimal degree
``table4``    Table 4 — signing technique (per-message vs Merkle)
``table5``    Table 5 — rekey messages sent by the server
``table6``    Table 6 — rekey messages received by a client
``fig10``     Figure 10 — processing time vs group size (log scale)
``fig11``     Figure 11 — processing time vs key tree degree
``fig12``     Figure 12 — key changes by a client per request
``ablations`` §1 star-vs-tree, §6 Iolus, §7 hybrid, batch extension
============  ==========================================================

Run them all: ``python -m repro.experiments`` (quick parameters) or
``python -m repro.experiments --paper`` (the paper's full parameters).
"""

from . import (ablations, fig10, fig11, fig12, table1, table2, table3,
               table4, table5, table6)
from .common import PAPER, QUICK, Scale, TableData

ALL_EXPERIMENTS = (
    ("Table 1", table1.run),
    ("Table 2", table2.run),
    ("Table 3", table3.run),
    ("Table 4", table4.run),
    ("Table 5", table5.run),
    ("Table 6", table6.run),
    ("Figure 10", fig10.run),
    ("Figure 11", fig11.run),
    ("Figure 12", fig12.run),
    ("Ablation: star vs tree", ablations.star_vs_tree),
    ("Ablation: Iolus (§6)", ablations.iolus_comparison),
    ("Ablation: hybrid (§7)", ablations.hybrid_tradeoff),
    ("Ablation: batch rekeying", ablations.batch_saving),
    ("Ablation: tree drift", ablations.tree_drift),
    ("Ablation: FEC rekey multicast", ablations.fec_vs_retransmission),
    ("Ablation: client-side work", ablations.client_side_work),
    ("Ablation: multicast addresses (§7)", ablations.multicast_addresses),
    ("Ablation: feature flags", ablations.feature_flags),
)

__all__ = ["ALL_EXPERIMENTS", "QUICK", "PAPER", "Scale", "TableData",
           "table1", "table2", "table3", "table4", "table5", "table6",
           "fig10", "fig11", "fig12", "ablations"]

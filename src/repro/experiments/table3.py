"""Table 3: average cost per operation (1:1 join/leave mix).

Server cost (d+2)(h-1)/2 for trees versus n/2 for stars, and user cost
d/(d-1) versus 1 — including the §3.5 observation that the server cost
is minimised at degree d = 4.
"""

from __future__ import annotations

from ..core import costs
from ..simulation.runner import ExperimentConfig, run_experiment
from .common import QUICK, Scale, TableData


def run(scale: Scale = QUICK, degree: int = 4) -> TableData:
    """Regenerate this table/figure at the given scale."""
    n = min(scale.initial_size, 256)

    star_result = run_experiment(ExperimentConfig(
        initial_size=n, n_requests=scale.n_requests, graph="star",
        signing="none", client_mode="full", seed=b"table3"))
    tree_result = run_experiment(ExperimentConfig(
        initial_size=n, n_requests=scale.n_requests, degree=degree,
        strategy="key", signing="none", client_mode="full", seed=b"table3"))

    mean_enc = lambda res: (sum(r.encryptions for r in res.records)
                            / len(res.records))
    h = tree_result.final_height

    rows = [
        ["server", f"n/2 = {float(costs.star_average_server_cost(n)):.0f}",
         mean_enc(star_result),
         f"(d+2)(h-1)/2 = {float(costs.tree_average_server_cost(degree, h)):.1f}",
         mean_enc(tree_result),
         f"2^n (n=8) = {float(costs.complete_average_server_cost(8)):.0f}"],
        ["user", f"{float(costs.star_average_user_cost()):.2f}",
         star_result.client_metrics.key_changes_per_client(),
         f"d/(d-1) = {float(costs.tree_average_user_cost(degree)):.2f}",
         tree_result.client_metrics.key_changes_per_client(),
         f"2^n (n=8) = {2**8}"],
    ]
    optimal = costs.optimal_tree_degree(n)
    return TableData(
        title=f"Table 3: average cost per operation (n={n}, d={degree}, h={h})",
        headers=["cost of", "star analytic", "star measured",
                 "tree analytic", "tree measured", "complete analytic"],
        rows=rows,
        notes=(f"analytic optimal tree degree for n={n}: d = {optimal} "
               "(the paper: 'the optimal degree of key trees is four')"),
    )

"""ASCII rendering of the paper's figures.

The paper's Figures 10-12 are line charts; this module renders the
regenerated series as terminal charts so ``python -m repro.experiments
--plot`` shows the shapes directly (no plotting dependency exists in the
offline environment).

The renderer is deliberately simple: linear or log-2 x axis, linear y
axis, one glyph per series, a legend, and axis labels.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

GLYPHS = "ox+*#@%&"


def _scale(value: float, low: float, high: float, size: int) -> int:
    if high <= low:
        return 0
    position = (value - low) / (high - low)
    return min(size - 1, max(0, round(position * (size - 1))))


def render_chart(series: Dict[str, Sequence[Tuple[float, float]]],
                 title: str = "", x_label: str = "", y_label: str = "",
                 width: int = 64, height: int = 18,
                 log_x: bool = False) -> str:
    """Render named (x, y) series as an ASCII chart.

    >>> chart = render_chart({"a": [(1, 1), (2, 2)]}, width=20, height=5)
    >>> "a" in chart
    True
    """
    if not series or all(not points for points in series.values()):
        raise ValueError("nothing to plot")
    if width < 16 or height < 4:
        raise ValueError("chart too small")

    def x_of(value: float) -> float:
        return math.log2(value) if log_x else value

    all_points = [(x_of(x), y) for points in series.values()
                  for x, y in points]
    xs = [p[0] for p in all_points]
    ys = [p[1] for p in all_points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(min(ys), 0.0), max(ys)

    grid = [[" "] * width for _ in range(height)]
    legend = []
    for index, (name, points) in enumerate(sorted(series.items())):
        glyph = GLYPHS[index % len(GLYPHS)]
        legend.append(f"{glyph} = {name}")
        ordered = sorted(points)
        # Draw connecting segments then the markers on top.
        for (x0, y0), (x1, y1) in zip(ordered, ordered[1:]):
            steps = max(2, width // max(1, len(ordered) - 1))
            for step in range(steps + 1):
                t = step / steps
                x = x_of(x0) * (1 - t) + x_of(x1) * t
                y = y0 * (1 - t) + y1 * t
                col = _scale(x, x_low, x_high, width)
                row = height - 1 - _scale(y, y_low, y_high, height)
                if grid[row][col] == " ":
                    grid[row][col] = "."
        for x, y in ordered:
            col = _scale(x_of(x), x_low, x_high, width)
            row = height - 1 - _scale(y, y_low, y_high, height)
            grid[row][col] = glyph

    lines = []
    if title:
        lines.append(title)
    y_high_label = f"{y_high:.3g}"
    y_low_label = f"{y_low:.3g}"
    margin = max(len(y_high_label), len(y_low_label), len(y_label)) + 1
    for row_index, row in enumerate(grid):
        if row_index == 0:
            prefix = y_high_label.rjust(margin)
        elif row_index == height - 1:
            prefix = y_low_label.rjust(margin)
        elif row_index == height // 2 and y_label:
            prefix = y_label.rjust(margin)
        else:
            prefix = " " * margin
        lines.append(f"{prefix}|{''.join(row)}")
    x_low_raw = min(x for points in series.values() for x, _ in points)
    x_high_raw = max(x for points in series.values() for x, _ in points)
    axis = f"{' ' * margin}+{'-' * width}"
    lines.append(axis)
    x_legend = (f"{x_low_raw:.3g}".ljust(width - 8) + f"{x_high_raw:.3g}")
    lines.append(f"{' ' * (margin + 1)}{x_legend}")
    if x_label:
        suffix = " (log scale)" if log_x else ""
        lines.append(f"{' ' * (margin + 1)}{x_label}{suffix}")
    lines.append(f"{' ' * (margin + 1)}{'   '.join(legend)}")
    return "\n".join(lines)


def fig10_chart(table) -> str:
    """Figure 10 as an ASCII chart (signed configuration panel)."""
    from . import fig10 as fig10_module
    series = {}
    for (protection, strategy), points in fig10_module.series(table).items():
        if protection == "encryption+digest+signature":
            series[strategy] = points
    return render_chart(
        series, title="Figure 10 (enc+digest+sig): mean ms vs group size",
        x_label="group size", y_label="ms", log_x=True)


def fig11_chart(table) -> str:
    """Figure 11 as an ASCII chart (encryption-only panel)."""
    from . import fig11 as fig11_module
    series = {}
    for (protection, strategy), points in fig11_module.series(table).items():
        if protection == "encryption-only":
            series[strategy] = points
    return render_chart(
        series, title="Figure 11 (encryption only): mean ms vs degree",
        x_label="key tree degree", y_label="ms", log_x=True)


def fig12_chart(table) -> str:
    """Figure 12 (vs degree) as an ASCII chart with the bound."""
    from . import fig12 as fig12_module
    measured = [(d, m) for d, m, _b in fig12_module.degree_series(table)]
    bound = [(d, b) for d, _m, b in fig12_module.degree_series(table)]
    return render_chart(
        {"measured": measured, "d/(d-1)": bound},
        title="Figure 12: key changes per client vs degree",
        x_label="key tree degree", y_label="keys", log_x=True)

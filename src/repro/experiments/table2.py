"""Table 2: encryption/decryption cost of one join/leave.

Measured server encryption counts and client decryption counts from
fully simulated runs, next to the paper's closed forms, for star and
tree key graphs (key-oriented rekeying, as §3.5 assumes).  Complete key
graphs are analytic only (they are never operated at scale).
"""

from __future__ import annotations

from ..core import costs
from ..simulation.runner import ExperimentConfig, run_experiment
from .common import QUICK, Scale, TableData


def _measured(graph: str, strategy: str, scale: Scale, degree: int):
    config = ExperimentConfig(
        initial_size=min(scale.initial_size, 256),
        n_requests=scale.n_requests, degree=degree,
        graph=graph, strategy=strategy,
        signing="none", client_mode="full", seed=b"table2")
    result = run_experiment(config)
    joins = [r for r in result.records if r.op == "join"]
    leaves = [r for r in result.records if r.op == "leave"]
    mean = lambda rs: (sum(r.encryptions for r in rs) / len(rs)) if rs else 0.0
    stats = result.client_metrics
    return {
        "join_server": mean(joins),
        "leave_server": mean(leaves),
        "nonreq_user": stats.key_changes_per_client(),
        "height": result.final_height,
        "n": result.final_size,
    }


def run(scale: Scale = QUICK, degree: int = 4) -> TableData:
    """Regenerate this table/figure at the given scale."""
    star = _measured("star", "group", scale, degree)
    tree = _measured("tree", "key", scale, degree)
    h = tree["height"]
    n_star = star["n"]

    star_join = costs.star_costs("join", n_star)
    star_leave = costs.star_costs("leave", n_star)
    tree_join = costs.tree_costs("join", degree, h)
    tree_leave = costs.tree_costs("leave", degree, h)
    comp_join = costs.complete_costs("join", 8)
    comp_leave = costs.complete_costs("leave", 8)

    rows = [
        ["server join", f"{float(star_join.server):.0f}",
         star["join_server"], f"2(h-1) = {float(tree_join.server):.0f}",
         tree["join_server"], f"{float(comp_join.server):.0f}"],
        ["server leave", f"n-1 = {float(star_leave.server):.0f}",
         star["leave_server"], f"d(h-1) = {float(tree_leave.server):.0f}",
         tree["leave_server"], f"{float(comp_leave.server):.0f}"],
        ["non-req. user (avg)", f"{float(star_join.nonrequesting_user):.2f}",
         star["nonreq_user"],
         f"d/(d-1) = {float(tree_join.nonrequesting_user):.2f}",
         tree["nonreq_user"], f"{float(comp_join.nonrequesting_user):.0f}"],
    ]
    return TableData(
        title=(f"Table 2: cost of a join/leave "
               f"(star n~{n_star}, tree n~{tree['n']} d={degree} h={h}; "
               f"complete analytic n=8)"),
        headers=["cost", "star analytic", "star measured",
                 "tree analytic", "tree measured", "complete analytic"],
        rows=rows,
        notes=("Measured values average over a random 1:1 workload on a "
               "heuristically balanced tree, so they sit near (not at) "
               "the full-balanced-tree closed forms."),
    )

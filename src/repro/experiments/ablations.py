"""Ablations for the design discussions the paper makes without tables.

* :func:`star_vs_tree` — the Introduction's motivation: star (conventional)
  leave cost is O(n); the key tree makes it O(log n).
* :func:`iolus_comparison` — §6: where the "1 affects n" work lands.
  Iolus makes joins/leaves cheap but pays per data message (agents
  re-encrypt the message key); LKH pays ~d log n per membership change
  and exactly 1 encryption per data message.
* :func:`hybrid_tradeoff` — §7: the hybrid strategy with d multicast
  addresses sits between group- and key-oriented rekeying on both server
  message count and client received bytes.
* :func:`batch_saving` — batching an interval's requests reuses path
  rekeying across requests.
"""

from __future__ import annotations

from typing import Dict, List

from ..batch import BatchRekeyServer
from ..iolus import IolusSystem
from ..simulation.runner import ExperimentConfig, run_experiment
from .common import QUICK, Scale, TableData, strategy_experiment

#: Optional subsystems the ablations can switch on against the same
#: deterministic workload.  Each entry carries the config override that
#: enables the feature on a :class:`~repro.core.server.ServerConfig`
#: (``server_config``) and/or a behavioural switch the harness
#: understands (``journal``).  :func:`feature_flags` runs every entry.
FEATURE_FLAGS: Dict[str, Dict[str, object]] = {
    "flat-backend": {
        "description": ("array-backed FlatKeyTree storage engine "
                        "(ServerConfig.backend='flat')"),
        "server_config": {"backend": "flat"},
        "journal": False,
    },
    "tree-journal": {
        "description": ("append-only op journal with restart-by-replay "
                        "(core.persistence.attach_journal)"),
        "server_config": {},
        "journal": True,
    },
    "subcast-cover": {
        "description": ("greedy fallback for the subcast covering engine "
                        "(ServerConfig.subcast_cover='greedy'; the "
                        "structural cover is the default)"),
        "server_config": {"subcast_cover": "greedy"},
        "journal": False,
    },
}


def star_vs_tree(scale: Scale = QUICK) -> TableData:
    """Intro motivation: star leave is Theta(n), tree is Theta(log n)."""
    rows = []
    for size in scale.group_sizes:
        star = run_experiment(ExperimentConfig(
            initial_size=size, n_requests=min(scale.n_requests, 40),
            graph="star", signing="none", client_mode="none",
            seed=b"ablate-star"))
        tree = run_experiment(ExperimentConfig(
            initial_size=size, n_requests=min(scale.n_requests, 40),
            degree=4, strategy="group", signing="none", client_mode="none",
            seed=b"ablate-star"))
        star_leave = star.server_metrics.leave.encryptions.mean
        tree_leave = tree.server_metrics.leave.encryptions.mean
        rows.append([size, star_leave, tree_leave,
                     star_leave / tree_leave if tree_leave else 0.0])
    return TableData(
        title="Ablation: star vs key tree (leave encryptions per request)",
        headers=["group size", "star leave enc", "tree leave enc",
                 "star/tree ratio"],
        rows=rows,
        notes=("Expected shape: star grows linearly in n, the tree "
               "logarithmically, so the ratio grows ~n/log n."),
    )


def iolus_comparison(scale: Scale = QUICK,
                     data_messages_per_membership_op: int = 4) -> TableData:
    """Total crypto ops for a mixed workload, LKH vs Iolus."""
    n_ops = min(scale.n_requests, 40)
    rows = []
    for label, fanout, levels in (("small", 4, 2), ("large", 4, 3)):
        iolus = IolusSystem(agent_fanout=fanout, agent_levels=levels,
                            seed=b"ablate-iolus")
        n_clients = fanout ** levels * 4
        for i in range(n_clients):
            iolus.join(f"c{i}")
        iolus.history.clear()
        membership_crypto = 0
        data_crypto = 0
        for i in range(n_ops):
            membership_crypto += iolus.leave(f"c{i}").crypto_ops
            membership_crypto += iolus.join(f"c{i}").crypto_ops
            for _ in range(data_messages_per_membership_op):
                record, _received = iolus.multicast(
                    f"c{i}", b"payload")
                data_crypto += record.crypto_ops

        lkh = run_experiment(ExperimentConfig(
            initial_size=n_clients, n_requests=2 * n_ops,
            degree=4, strategy="group", signing="none",
            client_mode="none", seed=b"ablate-iolus"))
        lkh_membership = sum(r.encryptions for r in lkh.records)
        # LKH data message: one encryption under the group key, ever.
        lkh_data = 2 * n_ops * data_messages_per_membership_op

        rows.append([label, n_clients, iolus.trusted_entities(),
                     membership_crypto, data_crypto,
                     membership_crypto + data_crypto,
                     1, lkh_membership, lkh_data,
                     lkh_membership + lkh_data])
    return TableData(
        title=("Ablation (paper §6): Iolus vs LKH crypto operations, "
               f"{data_messages_per_membership_op} data msgs per join+leave"
               " pair"),
        headers=["config", "clients", "iolus trusted entities",
                 "iolus membership ops", "iolus data ops", "iolus total",
                 "lkh trusted entities", "lkh membership ops",
                 "lkh data ops", "lkh total"],
        rows=rows,
        notes=("Expected shape: Iolus is cheaper on membership changes, "
               "LKH is cheaper on data messages (1 encryption vs ~one "
               "per agent), and Iolus needs every agent trusted while "
               "LKH needs one trusted server."),
    )


def hybrid_tradeoff(scale: Scale = QUICK) -> TableData:
    """Section 7: the hybrid strategy between group- and key-oriented."""
    rows = []
    for strategy in ("key", "hybrid", "group"):
        result = strategy_experiment(scale, strategy, degree=4,
                                     signing="merkle", seed=b"ablate-hybrid")
        metrics = result.server_metrics
        client = result.client_metrics
        rows.append([
            strategy,
            metrics.leave.n_messages.mean,
            client.received_size("leave").mean,
            metrics.leave.total_bytes.mean,
        ])
    return TableData(
        title="Ablation (paper §7): hybrid strategy trade-off (leaves)",
        headers=["strategy", "server msgs/leave",
                 "client recv bytes/leave", "server total bytes/leave"],
        rows=rows,
        notes=("Expected shape: hybrid needs only d multicast addresses; "
               "its server message count sits at ~d (vs 1 for group, "
               "(d-1)(h-1) for key) and its per-client received bytes sit "
               "below group-oriented."),
    )


def multicast_addresses(scale: Scale = QUICK,
                        pool_limit: int = 4) -> TableData:
    """§7: how many multicast addresses does each strategy need?

    Runs each strategy's rekey traffic through a bounded multicast
    address pool (``pool_limit`` subgroup addresses, as the paper
    suggests: "one for each child of the key tree's root node") and
    counts degradations to unicast plus total message copies carried.
    """
    from ..simulation.clients import ClientSimulator
    from ..simulation.runner import ExperimentConfig
    from ..simulation.workload import generate_workload, initial_members
    from ..core.server import GroupKeyServer
    from ..transport.addressing import AddressedTransport, MulticastAddressPool
    from ..transport.inmemory import InMemoryNetwork

    n = min(scale.initial_size, 256)
    n_requests = min(scale.n_requests, 50)
    rows = []
    for strategy in ("user", "key", "hybrid", "group"):
        config = ExperimentConfig(
            initial_size=n, n_requests=n_requests, degree=4,
            strategy=strategy, signing="none", seed=b"ablate-addr")
        server = GroupKeyServer(config.server_config())
        members = initial_members(n)
        member_keys = [(m, server.new_individual_key()) for m in members]
        server.bootstrap(member_keys)
        simulator = ClientSimulator(config.suite, verify=False)
        for user_id, key in member_keys:
            simulator.add_member(user_id, key)
        simulator.prime_from_server(server)
        transport = AddressedTransport(
            InMemoryNetwork(), MulticastAddressPool(pool_limit))
        for user_id in members:
            transport.attach(user_id, simulator.handler_for(user_id))
        requests = generate_workload(members, n_requests,
                                     seed=b"ablate-addr-load")
        for request in requests:
            if request.op == "join":
                key = server.new_individual_key()
                client = simulator.add_member(request.user_id, key)
                transport.attach(request.user_id,
                                 simulator.handler_for(request.user_id))
                outcome = server.join(request.user_id, key)
                client.process_control(outcome.control_messages[0].encoded)
            else:
                outcome = server.leave(request.user_id)
            transport.send_all(outcome.rekey_messages)
            if request.op == "leave":
                simulator.remove_member(request.user_id)
                transport.detach(request.user_id)
        simulator.assert_synchronized(server)
        stats = transport.addressing
        rows.append([strategy, pool_limit,
                     stats.addresses_requested,
                     stats.unicast_fallbacks,
                     stats.copies_sent,
                     round(stats.copies_sent / n_requests, 1)])
    return TableData(
        title=(f"Ablation (paper §7): multicast address needs "
               f"(n={n}, d=4, pool of {pool_limit} subgroup addresses)"),
        headers=["strategy", "pool", "subgroup addresses wanted",
                 "unicast fallbacks", "network copies",
                 "copies per request"],
        rows=rows,
        notes=("Expected shape: group-oriented needs no subgroup "
               "addresses; hybrid fits the d-address pool exactly (no "
               "fallbacks); user/key-oriented want one address per "
               "subgroup key and degrade to unicast once the pool "
               "overflows, inflating network copies."),
    )


def client_side_work(scale: Scale = QUICK) -> TableData:
    """Where the work lands on the *client* side (§5 Table 6 discussion).

    "group-oriented rekeying, which has the best performance on the
    server side, requires more work on the client side to process a
    larger message" — measured here with fully simulated clients:
    per-client processing time, bytes and decryptions per request.
    """
    from ..simulation.runner import ExperimentConfig, run_experiment

    n = min(scale.initial_size, 256)
    n_requests = min(scale.n_requests, 60)
    rows = []
    for strategy in ("user", "key", "group"):
        result = run_experiment(ExperimentConfig(
            initial_size=n, n_requests=n_requests, degree=4,
            strategy=strategy, signing="none", client_mode="full",
            seed=b"ablate-client"))
        metrics = result.client_metrics
        totals = result.client_totals
        per_message_ms = (totals.processing_seconds * 1000
                          / max(1, totals.rekey_messages))
        rows.append([strategy,
                     metrics.received_size().mean,
                     per_message_ms,
                     totals.decryptions / max(1, totals.rekey_messages),
                     metrics.key_changes_per_client()])
    return TableData(
        title=(f"Ablation: client-side work per request "
               f"(n={n}, d=4, full client simulation)"),
        headers=["strategy", "recv bytes/client", "client ms/message",
                 "decryptions/message", "key changes/client"],
        rows=rows,
        notes=("Expected shape: received bytes and per-message client "
               "processing rank user < key <= group (the server-side "
               "ranking reversed); key changes are ~d/(d-1) for all."),
    )


def fec_vs_retransmission(scale: Scale = QUICK,
                          loss_rates=(0.0, 0.05, 0.15, 0.30)) -> TableData:
    """Reliable rekey multicast: FEC (Keystone-style) vs ack/retransmit.

    Sends the same batch of group-oriented rekey messages to a receiver
    population over increasingly lossy links through both reliability
    layers and accounts bandwidth: retransmission pays per lost copy
    (and a round trip each), FEC pays a fixed parity overhead and never
    retransmits.
    """
    from ..core.messages import (MSG_REKEY, Destination, Message,
                                 OutboundMessage)
    from ..core.signing import NullSigner
    from ..crypto.suite import PAPER_SUITE_NO_SIG
    from ..transport.fecmulticast import FecMulticast
    from ..transport.inmemory import InMemoryNetwork
    from ..transport.reliable import ReliableDelivery

    receivers = tuple(f"u{i}" for i in range(32))
    n_messages = 30
    payload_messages = []
    for index in range(n_messages):
        message = Message(msg_type=MSG_REKEY, seq=index)
        NullSigner(PAPER_SUITE_NO_SIG).seal([message])
        payload_messages.append(OutboundMessage(
            Destination.to_all(), message, receivers, message.encode()))
    payload_bytes = len(payload_messages[0].encoded)

    rows = []
    for loss in loss_rates:
        # -- ack/retransmit: per-copy retries until delivered ------------
        arq_network = InMemoryNetwork(drop_rate=loss, seed=b"ablate-arq")
        arq = ReliableDelivery(arq_network, max_attempts=64)
        arq_counts = {user: [] for user in receivers}
        for user in receivers:
            arq.attach(user, arq_counts[user].append)
        for outbound in payload_messages:
            arq.send(outbound)
        received_arq = sum(len(inbox) for inbox in arq_counts.values())
        # Offered load: every delivery attempt (successes + drops).
        arq_attempts = arq_network.stats.deliveries + arq_network.stats.drops
        arq_bytes = arq_attempts * payload_bytes

        # -- FEC: fixed parity overhead, no retries ----------------------
        fec_network = InMemoryNetwork(drop_rate=loss, seed=b"ablate-fec")
        fec = FecMulticast(fec_network, k=4, r=3)
        fec_counts = {user: [] for user in receivers}
        for user in receivers:
            fec.attach(user, fec_counts[user].append)
        for outbound in payload_messages:
            fec.send(outbound)
        received_fec = sum(len(inbox) for inbox in fec_counts.values())
        fec_attempts = fec_network.stats.deliveries + fec_network.stats.drops
        fec_bytes = fec_attempts * (payload_bytes // 4 + 17)

        rows.append([loss,
                     received_arq, arq_network.stats.retransmissions,
                     arq_bytes,
                     received_fec, fec.recovered_with_parity,
                     round(fec.overhead, 2), fec_bytes])
    return TableData(
        title=("Ablation (Keystone direction): FEC vs ack/retransmit for "
               f"rekey multicast ({len(receivers)} receivers, "
               f"{n_messages} messages)"),
        headers=["loss", "arq delivered", "arq retransmissions",
                 "arq bytes", "fec delivered", "fec parity recoveries",
                 "fec overhead", "fec bytes sent"],
        rows=rows,
        notes=("Expected shape: retransmissions grow with the loss rate "
               "while FEC's cost is the fixed r/k parity overhead; both "
               "deliver ~everything at these rates."),
    )


def tree_drift(scale: Scale = QUICK, n_operations: int = 2000,
               checkpoints: int = 8) -> TableData:
    """Does the balance heuristic hold up under long random churn?

    The paper runs 1000 requests per experiment and notes the tree is
    "unlikely [to be] truly full and balanced at any time"; this ablation
    runs a longer workload and samples the tree shape periodically.  The
    claim that must hold: height stays within one level of the balanced
    optimum, so the O(log n) costs never silently degrade.
    """
    from ..crypto import drbg
    from ..keygraph.analysis import measure
    from ..keygraph.tree import KeyTree
    from ..simulation.workload import JOIN, generate_workload, initial_members

    source = drbg.make_source(b"drift")
    keygen = lambda: source.generate(8)
    members = initial_members(scale.initial_size)
    tree = KeyTree.build([(m, keygen()) for m in members], 4, keygen)
    requests = generate_workload(members, n_operations, seed=b"drift-load")

    rows = []
    interval = max(1, n_operations // checkpoints)
    for index, request in enumerate(requests):
        if request.op == JOIN:
            tree.join(request.user_id, keygen())
        else:
            tree.leave(request.user_id)
        if (index + 1) % interval == 0 or index == n_operations - 1:
            shape = measure(tree)
            rows.append([index + 1, shape.n_users, shape.height,
                         shape.optimal_height, shape.height_slack,
                         shape.interior_fill, shape.key_overhead])
    tree.validate()
    return TableData(
        title=(f"Ablation: tree shape under {n_operations} random "
               f"operations (start n={scale.initial_size}, d=4)"),
        headers=["ops", "users", "height", "optimal", "slack",
                 "interior fill", "key overhead"],
        rows=rows,
        notes=("Expected shape: slack stays <= 1 level and interior fill "
               "stays high throughout, so per-request cost never leaves "
               "the O(log n) regime."),
    )


def feature_flags(scale: Scale = QUICK) -> TableData:
    """Every :data:`FEATURE_FLAGS` entry vs the baseline server.

    Each flag runs the identical seeded workload on a baseline server
    and on a flagged server and must land in the *same cryptographic
    state* (group key, root reference, key count, membership) — the
    features are storage/durability engines, not protocol changes.  The
    journal flag additionally restarts from its journal and checks the
    replayed server is snapshot-identical.
    """
    import os
    import tempfile
    import time as _time

    from ..core import persistence
    from ..core.server import GroupKeyServer, ServerConfig
    from ..simulation.workload import JOIN, generate_workload, initial_members

    n = min(scale.initial_size, 128)
    n_requests = min(scale.n_requests, 60)

    def run(overrides: Dict[str, object], journal_path=None):
        config = ServerConfig(degree=4, strategy="group", signing="none",
                              seed=b"ablate-flags", **overrides)
        server = GroupKeyServer(config)
        members = initial_members(n)
        member_keys = [(m, server.new_individual_key()) for m in members]
        if journal_path is not None:
            persistence.attach_journal(server, journal_path)
        server.bootstrap(member_keys)
        requests = generate_workload(members, n_requests,
                                     seed=b"ablate-flags-load")
        started = _time.perf_counter()
        for request in requests:
            if request.op == JOIN:
                server.join(request.user_id, server.new_individual_key())
            else:
                server.leave(request.user_id)
        seconds = _time.perf_counter() - started
        # One subcast to a deterministic subset: its cover references
        # are part of the compared state, so the subcast-cover flag
        # must pick the same (node id, version) cover the structural
        # default does.
        survivors = sorted(server.members())
        out = server.subcast(survivors[:max(1, len(survivors) // 3)],
                             b"ablate-subcast")
        cover_refs = tuple((item.enc_node_id, item.enc_version)
                           for item in out.message.items[1:])
        state = (server.group_key(), server.group_key_ref(),
                 server.tree.n_keys, tuple(survivors), cover_refs)
        return server, state, seconds

    rows = []
    for name, flag in FEATURE_FLAGS.items():
        _base_server, base_state, base_s = run({})
        journal_path = None
        replay_ok = "n/a"
        try:
            if flag["journal"]:
                fd, journal_path = tempfile.mkstemp(suffix=".kgj")
                os.close(fd)
            server, state, flag_s = run(dict(flag["server_config"]),
                                        journal_path=journal_path)
            if flag["journal"]:
                replayed = persistence.restore_from_journal(journal_path)
                replay_ok = (persistence.snapshot(replayed)
                             == persistence.snapshot(server))
        finally:
            if journal_path is not None:
                os.unlink(journal_path)
        rows.append([name, n_requests, state == base_state, replay_ok,
                     round(base_s * 1000, 1), round(flag_s * 1000, 1)])
    return TableData(
        title=(f"Ablation: feature flags vs baseline "
               f"(n={n}, d=4, group-oriented)"),
        headers=["flag", "requests", "state identical", "replay identical",
                 "baseline ms", "flagged ms"],
        rows=rows,
        notes=("Expected shape: both flags land in exactly the baseline "
               "cryptographic state (they change storage/durability, "
               "never protocol bytes); journaling adds write overhead, "
               "the flat backend tracks the baseline closely at small n "
               "and pulls ahead as n grows."),
    )


def batch_saving(scale: Scale = QUICK,
                 batch_sizes: List[int] = (1, 4, 16, 64)) -> TableData:
    """Extension: encryption saving of interval batch rekeying."""
    rows = []
    for batch_size in batch_sizes:
        server = BatchRekeyServer(degree=4, seed=b"ablate-batch")
        n = scale.initial_size
        server.bootstrap([(f"u{i}", server.new_individual_key())
                          for i in range(n)])
        total_batched = 0
        total_individual = 0
        rounds = max(1, 32 // batch_size)
        leaver = 0
        joiner = 0
        for _ in range(rounds):
            for _ in range(batch_size):
                server.request_leave(f"u{leaver}")
                leaver += 1
                key = server.new_individual_key()
                server.request_join(f"j{joiner}", key)
                joiner += 1
            result = server.flush()
            total_batched += result.encryptions
            total_individual += result.individual_cost_estimate
        rows.append([batch_size, total_batched, total_individual,
                     1 - total_batched / total_individual])
    return TableData(
        title=("Ablation (extension): interval batch rekeying saving "
               f"(n={scale.initial_size}, d=4)"),
        headers=["requests per batch (joins+leaves each)",
                 "batched encryptions", "per-request encryptions",
                 "saving"],
        rows=rows,
        notes=("Expected shape: saving grows with batch size (shared "
               "path rekeying), approaching the point where one flush "
               "rekeys the whole tree once."),
    )

"""CLI: regenerate the paper's tables and figures.

Usage::

    python -m repro.experiments                # quick parameters
    python -m repro.experiments --paper        # the paper's parameters
    python -m repro.experiments table5 fig10   # a subset
"""

from __future__ import annotations

import argparse
import sys

from ..observability import Stopwatch
from . import ALL_EXPERIMENTS, PAPER, QUICK


def main(argv=None) -> int:
    """Parse arguments and dispatch."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the SIGCOMM '98 key-graphs tables/figures.")
    parser.add_argument("--paper", action="store_true",
                        help="use the paper's full parameters "
                             "(n=8192, 1000 requests; slow in pure Python)")
    parser.add_argument("--plot", action="store_true",
                        help="also render Figures 10-12 as ASCII charts")
    parser.add_argument("--output", metavar="PATH",
                        help="also append the formatted tables to a file")
    parser.add_argument("names", nargs="*",
                        help="experiment name filters, e.g. 'table5' 'fig10'")
    args = parser.parse_args(argv)
    scale = PAPER if args.paper else QUICK

    selected = []
    for title, runner in ALL_EXPERIMENTS:
        key = title.lower().replace(" ", "").replace(":", "")
        if not args.names or any(name.lower().replace(" ", "") in key
                                 for name in args.names):
            selected.append((title, runner))
    if not selected:
        parser.error(f"no experiment matches {args.names}")

    sink = open(args.output, "a", encoding="utf-8") if args.output else None
    for title, runner in selected:
        watch = Stopwatch()
        table = runner(scale)
        elapsed = watch.elapsed()
        print(table.format())
        if sink is not None:
            sink.write(table.format() + "\n\n")
            sink.flush()
        if args.plot:
            from . import plot
            charts = {"Figure 10": plot.fig10_chart,
                      "Figure 11": plot.fig11_chart,
                      "Figure 12": plot.fig12_chart}
            if title in charts:
                print()
                print(charts[title](table))
        print(f"[{title} regenerated in {elapsed:.1f}s at scale "
              f"'{scale.name}']")
        print()
    if sink is not None:
        sink.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())

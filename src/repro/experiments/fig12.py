"""Figure 12: average number of key changes by a client per request.

Two sweeps — versus key tree degree (top panel) and versus initial group
size (bottom panel) — compared with the analytic bound d/(d-1).  The
measured value is small, close to the bound, and independent of group
size: the client-side scalability half of the paper's argument.
"""

from __future__ import annotations

from typing import List, Tuple

from ..core import costs
from .common import QUICK, Scale, TableData, strategy_experiment


def run(scale: Scale = QUICK, strategy: str = "group") -> TableData:
    """Regenerate this table/figure at the given scale."""
    rows = []
    for degree in scale.degrees:
        result = strategy_experiment(scale, strategy, degree=degree,
                                     signing="none", seed=b"fig12")
        rows.append(["vs degree", degree, scale.initial_size,
                     result.client_metrics.key_changes_per_client(),
                     float(costs.tree_average_user_cost(degree))])
    for size in scale.group_sizes:
        result = strategy_experiment(scale, strategy, degree=4,
                                     initial_size=size,
                                     signing="none", seed=b"fig12")
        rows.append(["vs group size", 4, size,
                     result.client_metrics.key_changes_per_client(),
                     float(costs.tree_average_user_cost(4))])
    return TableData(
        title="Figure 12: key changes by a client per request",
        headers=["sweep", "degree", "group size", "measured", "d/(d-1)"],
        rows=rows,
        notes=("Expected shape: measured values sit near d/(d-1) and are "
               "flat in group size."),
    )


def degree_series(table: TableData) -> List[Tuple[int, float, float]]:
    """[(degree, measured, bound)] rows of the top panel."""
    return [(degree, measured, bound)
            for sweep, degree, _size, measured, bound in table.rows
            if sweep == "vs degree"]


def size_series(table: TableData) -> List[Tuple[int, float, float]]:
    """[(group size, measured, bound)] rows of the bottom panel."""
    return [(size, measured, bound)
            for sweep, _degree, size, measured, bound in table.rows
            if sweep == "vs group size"]

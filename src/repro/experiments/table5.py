"""Table 5: number and size of rekey messages sent by the server.

Per key-tree degree (4, 8, 16) and strategy: ave/min/max rekey message
size and ave/min/max number of rekey messages, for joins and leaves,
with encryption and (Merkle) signature enabled.
"""

from __future__ import annotations

from .common import (QUICK, STRATEGY_ORDER, Scale, TableData,
                     strategy_experiment)


def run(scale: Scale = QUICK) -> TableData:
    """Regenerate this table/figure at the given scale."""
    rows = []
    for degree in scale.degrees:
        if degree < 3:
            continue  # the paper's Table 5 sweeps d = 4, 8, 16
        for strategy in STRATEGY_ORDER:
            result = strategy_experiment(scale, strategy, degree=degree,
                                         signing="merkle", seed=b"table5")
            join = result.server_metrics.join
            leave = result.server_metrics.leave
            rows.append([
                degree, strategy,
                join.message_bytes.mean, int(join.message_bytes.minimum),
                int(join.message_bytes.maximum),
                leave.message_bytes.mean, int(leave.message_bytes.minimum),
                int(leave.message_bytes.maximum),
                join.n_messages.mean, int(join.n_messages.minimum),
                int(join.n_messages.maximum),
                leave.n_messages.mean, int(leave.n_messages.minimum),
                int(leave.n_messages.maximum),
            ])
    return TableData(
        title=(f"Table 5: rekey messages sent by the server "
               f"(initial group size {scale.initial_size}, enc+signature)"),
        headers=["d", "strategy",
                 "join size ave", "min", "max",
                 "leave size ave", "min", "max",
                 "join msgs ave", "min", "max",
                 "leave msgs ave", "min", "max"],
        rows=rows,
        notes=("Expected shape: group-oriented sends exactly 1 message "
               "whose leave size grows with d; user/key send h messages "
               "per join and ~(d-1)(h-1) per leave, so their leave "
               "message count grows with d while sizes stay flat."),
    )

"""Chaos scenarios: Figure-10-style workloads under named fault profiles.

A scenario drives one of the three server stacks (immediate-mode
:class:`~repro.core.server.GroupKeyServer`, interval-batched
:class:`~repro.batch.rekeying.BatchRekeyServer`, or the sharded
:class:`~repro.cluster.coordinator.ClusterCoordinator` behind its front
end) through rounds of joins and leaves while a
:class:`~repro.chaos.faults.ChaosTransport` drops, duplicates and
reorders the rekey traffic — optionally crashing members, restarting
them, and failing/promoting whole shards mid-run.  The
:class:`~repro.recovery.manager.RecoveryManager` and the members' own
gap detection are the only repair mechanisms allowed: the scenario
**passes** iff every surviving member converges back to the server's
group key and decrypts a post-recovery data message, with zero manual
intervention.

Everything is seeded: the same config reproduces the same faults, the
same retries, and the same final keyset, bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Union

from ..batch.rekeying import BatchRekeyServer
from ..cluster.coordinator import ClusterConfig, ClusterCoordinator
from ..cluster.routing import ClusterFrontEnd, ClusterMember
from ..core.server import GroupKeyServer, ServerConfig
from ..crypto.suite import PAPER_SUITE_NO_SIG
from ..recovery import (BatchBackend, RecoveryManager, RecoveryPolicy,
                        ResilientMember, ServerBackend)
from ..transport.inmemory import InMemoryNetwork
from .faults import PROFILES, ChaosError, ChaosTransport, FaultProfile

STACKS = ("server", "batch", "cluster", "serve", "serve-crash")


@dataclass
class ScenarioConfig:
    """One chaos scenario: a stack, a fault profile, and a fault plan.

    ``crash_at`` / ``restart_at`` map a round index to member ids;
    ``fail_shard_at`` / ``promote_at`` map a round index to a shard id
    (cluster stack only).  Round indices keep counting through the
    recovery phase, so a restart or promotion can land after the
    workload ends.
    """

    name: str
    stack: str = "server"
    profile: Union[str, FaultProfile] = "clean"
    n_initial: int = 12
    rounds: int = 10
    n_shards: int = 3
    crash_at: Mapping[int, Sequence[str]] = field(default_factory=dict)
    restart_at: Mapping[int, Sequence[str]] = field(default_factory=dict)
    fail_shard_at: Mapping[int, int] = field(default_factory=dict)
    promote_at: Mapping[int, int] = field(default_factory=dict)
    policy: Optional[RecoveryPolicy] = None
    max_recovery_rounds: int = 40
    seed: bytes = b"chaos-scenario"
    #: serve-crash stack only: op index -> crash kind.  ``"kill"`` is a
    #: clean SIGKILL-equivalent teardown after the op; ``"kill-torn"``
    #: additionally tears the journal tail so the op's record is lost
    #: (the client must retry it after the restart).  Empty picks one
    #: default ``kill-torn`` two-thirds through the workload.
    crash_plan: Mapping[int, str] = field(default_factory=dict)
    #: serve-crash stack only: recovery substrate, ``"journal"``
    #: (restart by strict journal replay) or ``"standby"`` (warm-standby
    #: promotion; the in-memory journal is complete, so only ``"kill"``
    #: crashes apply).
    serve_recovery: str = "journal"

    def fault_profile(self) -> FaultProfile:
        """Resolve ``profile`` to a :class:`FaultProfile`."""
        if isinstance(self.profile, FaultProfile):
            return self.profile
        try:
            return PROFILES[self.profile]
        except KeyError:
            raise ChaosError(f"unknown fault profile {self.profile!r}") \
                from None

    def validate(self) -> None:
        """Check field consistency; raises ChaosError."""
        if self.stack not in STACKS:
            raise ChaosError(f"stack must be one of {STACKS}")
        if self.n_initial < 2:
            raise ChaosError("n_initial must be >= 2")
        if self.rounds < 1 or self.max_recovery_rounds < 1:
            raise ChaosError("rounds and max_recovery_rounds must be >= 1")
        if self.serve_recovery not in ("journal", "standby"):
            raise ChaosError(
                f"unknown serve recovery {self.serve_recovery!r}")
        for kind in self.crash_plan.values():
            if kind not in ("kill", "kill-torn"):
                raise ChaosError(f"unknown crash kind {kind!r}")
            if kind == "kill-torn" and self.serve_recovery == "standby":
                raise ChaosError(
                    "kill-torn needs the on-disk journal (standby keeps "
                    "its journal in memory; nothing tears)")
        self.fault_profile().validate()


@dataclass
class ScenarioReport:
    """What one scenario run observed."""

    name: str
    stack: str
    profile: str
    converged: bool
    data_ok: bool
    workload_rounds: int
    recovery_rounds: int
    survivors: int
    resyncs: int                 # successful client-side resync installs
    desyncs: int                 # client-side gap detections
    evicted: List[str]
    shed_flushes: int
    injected: Dict[str, int]     # faults actually injected, by kind
    #: Flight-recorder document dumped at scenario end (serve stack
    #: only; None for stacks without a flight recorder).
    flight_dump: Optional[Dict] = None

    @property
    def passed(self) -> bool:
        """True iff the group healed with no manual intervention."""
        return self.converged and self.data_ok

    def summary(self) -> str:
        """One human-readable result line."""
        faults = sum(self.injected.values())
        verdict = "PASS" if self.passed else "FAIL"
        return (f"{verdict} {self.name:<18} stack={self.stack:<7} "
                f"profile={self.profile:<13} faults={faults:<4} "
                f"resyncs={self.resyncs:<3} evicted={len(self.evicted)} "
                f"recovery_rounds={self.recovery_rounds}")


class _Harness:
    """Shared scenario plumbing over one stack + chaos + recovery."""

    def __init__(self, config: ScenarioConfig):
        config.validate()
        self.config = config
        self.suite = PAPER_SUITE_NO_SIG
        self.network = InMemoryNetwork(strict=False)
        self.chaos = ChaosTransport(self.network, config.fault_profile())
        self.members: Dict[str, object] = {}
        self._left: List[str] = []
        self._next_join = 0
        self._build_stack()
        self._bootstrap()

    # -- stack construction ------------------------------------------------

    def _build_stack(self) -> None:
        config = self.config
        if config.stack == "cluster":
            self.coordinator = ClusterCoordinator(ClusterConfig(
                n_shards=config.n_shards, strategy="group",
                suite=self.suite, signing="none",
                seed=config.seed + b"/cluster"))
            self.front_end = ClusterFrontEnd(self.coordinator,
                                             transport=self.chaos)
            self.manager = self.front_end.enable_recovery(config.policy)
            return
        if config.stack == "batch":
            self.server = BatchRekeyServer(
                degree=4, suite=self.suite, seed=config.seed + b"/batch")
            backend = BatchBackend(self.server)
        else:
            self.server = GroupKeyServer(ServerConfig(
                degree=4, strategy="group", suite=self.suite,
                signing="none", seed=config.seed + b"/server"))
            backend = ServerBackend(self.server)
        self.manager = RecoveryManager(backend, self.chaos,
                                       policy=config.policy)

    def _bootstrap(self) -> None:
        """Fault-free initial population (the steady state under test)."""
        roster = []
        for i in range(self.config.n_initial):
            uid = f"u{i}"
            if self.config.stack == "cluster":
                key = self.coordinator.new_individual_key()
            else:
                key = self.server.new_individual_key()
            roster.append((uid, key))
        if self.config.stack == "cluster":
            self.coordinator.bootstrap(roster)
            self.coordinator.enable_standbys()
            for uid, key in roster:
                member = ClusterMember(uid, self.suite, verify=False)
                member.client.set_individual_key(key)
                leaf_id, records, root_ref = \
                    self.coordinator.member_records(uid)
                member.client.set_leaf(leaf_id)
                for record in records:
                    member.client.keys[record.node_id] = (record.version,
                                                          record.key)
                member.client.root_ref = root_ref
                self.members[uid] = member
                self.front_end.attach_member(member)
                self.manager.track(uid)
            return
        self.server.bootstrap(roster)
        for uid, key in roster:
            member = ResilientMember(uid, self.suite, verify=False,
                                     uplink=self._uplink)
            member.client.set_individual_key(key)
            member.client.set_leaf(self.server.tree.leaf_of(uid).node_id)
            for node in self.server.tree.user_key_path(uid)[1:]:
                member.client.keys[node.node_id] = (node.version, node.key)
            member.client.root_ref = self.server.group_key_ref()
            self.members[uid] = member
            self.chaos.attach(uid, member.handle)
            self.manager.track(uid)

    def _uplink(self, datagram: bytes) -> None:
        """Member-to-server control channel (heartbeats, resync asks).

        The paper already assumes a reliable unicast registration path,
        so member requests arrive intact; the *replies* go back through
        chaos and take the full fault pipeline.
        """
        self.chaos.send_all(self.manager.receive(datagram))

    # -- workload ----------------------------------------------------------

    def group_key(self) -> bytes:
        if self.config.stack == "cluster":
            return self.coordinator.group_key()
        return self.server.group_key()

    def is_member(self, uid: str) -> bool:
        if self.config.stack == "cluster":
            return self.coordinator.is_member(uid)
        return self.server.is_member(uid)

    def _client(self, uid: str):
        return self.members[uid].client

    def _join(self, uid: str) -> None:
        if self.config.stack == "cluster":
            key = self.coordinator.new_individual_key()
            self.coordinator.register_individual_key(uid, key)
            member = ClusterMember(uid, self.suite, verify=False)
            member.client.set_individual_key(key)
            self.members[uid] = member
            self.front_end.attach_member(member)
            self.front_end.submit(member.join_request())
        else:
            key = self.server.new_individual_key()
            member = ResilientMember(uid, self.suite, verify=False,
                                     uplink=self._uplink)
            member.client.set_individual_key(key)
            self.members[uid] = member
            self.chaos.attach(uid, member.handle)
            if self.config.stack == "batch":
                self.server.request_join(uid, key)
                self._flush()
            else:
                outcome = self.server.join(uid, key)
                self.chaos.send_all(outcome.all_messages)
        self.manager.track(uid)

    def _leave(self, uid: str) -> None:
        self.manager.untrack(uid)
        if self.config.stack == "cluster":
            self.front_end.submit(self.members[uid].leave_request())
            self.front_end.detach_member(uid)
        elif self.config.stack == "batch":
            self.chaos.detach(uid)
            self.server.request_leave(uid)
            self._flush()
        else:
            self.chaos.detach(uid)
            outcome = self.server.leave(uid)
            self.chaos.send_all(outcome.rekey_messages)
        del self.members[uid]
        self._left.append(uid)

    def _flush(self) -> None:
        if self.server.pending == (0, 0):
            return
        result = self.server.flush()
        if result.rekey_message is not None:
            self.chaos.send(result.rekey_message)
        self.chaos.send_all(result.joiner_messages)

    def _workload_op(self, round_index: int) -> None:
        if self.config.stack == "cluster" and any(
                shard.failed for shard in self.coordinator.shards):
            # A failed shard denies requests; a real operator gates the
            # control plane during failover, so the workload pauses too.
            return
        if round_index % 2 == 0:
            uid = f"m{self._next_join}"
            self._next_join += 1
            self._join(uid)
        else:
            victims = [uid for uid in sorted(self.members)
                       if uid not in self.chaos.crashed
                       and self.is_member(uid)
                       and not self._planned(uid)]
            if victims:
                self._leave(victims[0])

    def _planned(self, uid: str) -> bool:
        """True if the fault plan needs this member (do not leave it)."""
        for users in list(self.config.crash_at.values()) \
                + list(self.config.restart_at.values()):
            if uid in users:
                return True
        return False

    # -- fault plan --------------------------------------------------------

    def _apply_plans(self, round_index: int) -> None:
        for uid in self.config.crash_at.get(round_index, ()):
            self.chaos.crash(uid)
        for uid in self.config.restart_at.get(round_index, ()):
            self.chaos.restart(uid)
        if round_index in self.config.fail_shard_at:
            self.coordinator.fail_shard(
                self.config.fail_shard_at[round_index])
        if round_index in self.config.promote_at:
            self.coordinator.promote_standby(
                self.config.promote_at[round_index])

    # -- the heartbeat / maintenance half-round ----------------------------

    def _heartbeats(self) -> None:
        for uid, member in list(self.members.items()):
            if uid in self.chaos.crashed:
                continue  # a crashed process cannot beat
            if self.config.stack == "cluster":
                self.front_end.submit(member.heartbeat())
                if member.client.desynced and not member.client.evicted:
                    self.front_end.submit(member.resync_request())
            else:
                member.beat()
                member.maintain()

    def _live(self) -> List[str]:
        """Members that should converge: attached, alive, still admitted."""
        return [uid for uid in self.members
                if uid not in self.chaos.crashed
                and not self._client(uid).evicted
                and self.is_member(uid)]

    def converged(self) -> bool:
        if self.chaos.in_flight or self.manager.pending_resyncs \
                or self.manager.pending_evictions:
            return False
        target = self.group_key()
        return all(self._client(uid).group_key() == target
                   for uid in self._live())

    def data_check(self) -> bool:
        """Every survivor must decrypt a fresh group data message."""
        if self.config.stack == "cluster":
            sealed = self.coordinator.seal_group_message(b"probe")
        else:
            sealed = self.server.seal_group_message(b"probe")
        ok = True
        for uid in self._live():
            member = self.members[uid]
            before = len(member.received)
            member.handle(sealed.encoded)
            ok &= (len(member.received) == before + 1
                   and member.received[-1] == b"probe")
        return ok


def run_scenario(config: ScenarioConfig) -> ScenarioReport:
    """Run one chaos scenario end to end and report what happened."""
    if config.stack == "serve":
        # The async front end has its own harness (event loop, socket
        # fanout drop filter, in-memory control run for byte-identity).
        from .serve_scenario import run_serve_scenario
        config.validate()
        return run_serve_scenario(config)
    if config.stack == "serve-crash":
        # Supervised crash injection: SIGKILL-equivalent core teardown
        # mid-workload, torn journal tail, restart by replay.
        from .serve_scenario import run_crash_scenario
        config.validate()
        return run_crash_scenario(config)
    _harness, report = _execute(config)
    return report


def _execute(config: ScenarioConfig):
    """Run a scenario, returning the live harness alongside the report
    (the acceptance tests inspect member keysets byte for byte)."""
    harness = _Harness(config)
    round_index = 0
    for _ in range(config.rounds):
        round_index += 1
        harness._apply_plans(round_index)
        harness._workload_op(round_index)
        harness.chaos.pump()
        harness._heartbeats()
        harness.manager.tick()
        harness.chaos.pump()

    recovery_rounds = 0
    while not harness.converged() \
            and recovery_rounds < config.max_recovery_rounds:
        recovery_rounds += 1
        round_index += 1
        harness._apply_plans(round_index)
        harness.chaos.pump()
        harness._heartbeats()
        harness.manager.tick()
        harness.chaos.pump()

    converged = harness.converged()
    live = harness._live()
    return harness, ScenarioReport(
        name=config.name, stack=config.stack,
        profile=harness.chaos.profile.name,
        converged=converged,
        data_ok=converged and harness.data_check(),
        workload_rounds=config.rounds,
        recovery_rounds=recovery_rounds,
        survivors=len(live),
        resyncs=sum(harness._client(uid).stats.resyncs
                    for uid in harness.members),
        desyncs=sum(harness._client(uid).stats.desyncs_detected
                    for uid in harness.members),
        evicted=list(harness.manager.evicted),
        shed_flushes=harness.manager.sheds,
        injected=dict(harness.chaos.injected))


def quick_matrix() -> List[ScenarioConfig]:
    """The CI chaos-smoke set: one scenario per headline fault class."""
    return [
        ScenarioConfig(name="drop10-server", stack="server",
                       profile="drop10", n_initial=12, rounds=10),
        ScenarioConfig(name="dup-reorder-batch", stack="batch",
                       profile="dup-reorder", n_initial=16, rounds=8),
        ScenarioConfig(name="shard-crash", stack="cluster",
                       profile="drop10", n_initial=18, rounds=10,
                       n_shards=3, fail_shard_at={3: 1}, promote_at={6: 1}),
        ScenarioConfig(name="drop10-serve", stack="serve",
                       profile="drop10", n_initial=12, rounds=12),
        ScenarioConfig(name="crash-serve", stack="serve-crash",
                       profile="drop10", n_initial=10, rounds=12,
                       crash_plan={14: "kill-torn"},
                       seed=b"chaos-crash"),
    ]


def full_matrix() -> List[ScenarioConfig]:
    """The quick set plus crash/restart, mass eviction, and heavy loss."""
    return quick_matrix() + [
        ScenarioConfig(name="crash-restart", stack="server",
                       profile="lossy-reorder", n_initial=12, rounds=12,
                       crash_at={3: ["u1"]}, restart_at={7: ["u1"]}),
        ScenarioConfig(name="mass-evict-shed", stack="batch",
                       profile="drop10", n_initial=16, rounds=10,
                       crash_at={2: ["u0", "u1", "u2", "u3"]},
                       policy=RecoveryPolicy(dead_after=3,
                                             shed_threshold=3)),
        ScenarioConfig(name="heavy-server", stack="server",
                       profile="heavy", n_initial=12, rounds=12),
        ScenarioConfig(name="crash-serve-standby", stack="serve-crash",
                       profile="drop10", serve_recovery="standby",
                       n_initial=10, rounds=12,
                       crash_plan={14: "kill"}, seed=b"chaos-crash"),
    ]

"""Run the chaos scenario matrix from the command line.

::

    python -m repro.chaos              # quick matrix (the CI smoke set)
    python -m repro.chaos --full       # full matrix
    python -m repro.chaos --json out.json

Exits nonzero if any scenario fails to converge or a survivor cannot
decrypt the post-recovery data probe.
"""

from __future__ import annotations

import argparse
import json
import sys

from .scenarios import full_matrix, quick_matrix, run_scenario


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.chaos",
        description="Chaos matrix: fault-injected group-rekeying runs.")
    parser.add_argument("--full", action="store_true",
                        help="run the full matrix instead of the quick set")
    parser.add_argument("--json", metavar="PATH",
                        help="also write the reports as JSON")
    args = parser.parse_args(argv)

    configs = full_matrix() if args.full else quick_matrix()
    reports = [run_scenario(config) for config in configs]
    for report in reports:
        print(report.summary())

    if args.json:
        payload = [{
            "name": r.name, "stack": r.stack, "profile": r.profile,
            "passed": r.passed, "converged": r.converged,
            "data_ok": r.data_ok, "survivors": r.survivors,
            "resyncs": r.resyncs, "desyncs": r.desyncs,
            "evicted": r.evicted, "shed_flushes": r.shed_flushes,
            "recovery_rounds": r.recovery_rounds, "injected": r.injected,
        } for r in reports]
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)

    failed = [r.name for r in reports if not r.passed]
    if failed:
        print(f"FAILED: {', '.join(failed)}", file=sys.stderr)
        return 1
    print(f"all {len(reports)} scenarios recovered")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Chaos through the async front end: the ``serve`` scenario stack.

The PR5 scenarios inject faults on an in-memory bus; this module runs
the same fault profiles against :class:`~repro.serve.core.
ImmediateServingCore` instead, using the :class:`~repro.serve.fanout.
SocketFanout` per-copy ``drop_filter`` as the loss point.  The headline
claim is stronger than "it recovers": a second, in-memory *control*
server with the same seed is driven through the identical op sequence
with no serving layer at all, and the live server's final group key
must match the control's **byte for byte** — the async front end
(event-loop planning, executor encrypt/seal, admission control) must
not perturb a single DRBG draw.

Clients replay exactly what their reply path received (acks and
multicasts, minus the dropped copies) through the ordinary
:class:`~repro.core.client.GroupClient` state machine, then repair via
resync requests submitted back through the core — the same path a real
lossy client takes.

The live server runs with tracing on, and every injected drop is
tagged into the trace of the rekey that produced the dropped copy (a
``fault.drop`` span parented to the copy's trace trailer) plus a
flight-recorder event — so the flight dump returned on the report
shows *which* drop caused each later resync.
"""

from __future__ import annotations

import asyncio
from typing import Dict, List, Tuple

from ..core.client import GroupClient
from ..core.messages import (MSG_JOIN_ACK, MSG_JOIN_DENIED,
                             MSG_JOIN_REQUEST, MSG_LEAVE_ACK,
                             MSG_LEAVE_DENIED, MSG_LEAVE_REQUEST,
                             MSG_REKEY, MSG_RESYNC_REQUEST, Message)
from ..core.server import GroupKeyServer, ServerConfig
from ..crypto import drbg
from ..observability.instrumentation import Instrumentation
from ..observability.spans import Tracer, split_trace_trailer
from .faults import FaultProfile

#: Rate decisions use the same 20-bit fixed-point draw as ChaosTransport.
_RATE_BITS = 1 << 20


def serve_workload(config) -> List[Tuple[str, str]]:
    """The deterministic op sequence for a serve scenario.

    ``n_initial`` joins, then ``rounds`` churn ops: every third op
    leaves the oldest current member, the rest join fresh users.
    """
    ops = [("join", f"m{i}") for i in range(config.n_initial)]
    present = [user for _op, user in ops]
    for index in range(config.rounds):
        if index % 3 == 2 and len(present) > 2:
            ops.append(("leave", present.pop(0)))
        else:
            user = f"g{index}"
            ops.append(("join", user))
            present.append(user)
    return ops


def _server_config(config) -> ServerConfig:
    return ServerConfig(signing="none", seed=config.seed, backend="flat")


def _individual_keys(ops, suite) -> Dict[str, bytes]:
    """Constant per-user keys: no DRBG draws, identical on both runs."""
    keys = {}
    for _op, user in ops:
        if user not in keys:
            keys[user] = bytes([(len(keys) % 255) + 1]) * suite.key_size
    return keys


def _control_run(config, ops, keys):
    """Drive a plain in-memory server through the same op sequence."""
    server = GroupKeyServer(_server_config(config))
    for op, user in ops:
        if op == "join":
            server.register_individual_key(user, keys[user])
            server.join(user)
        else:
            server.leave(user)
    return server


def run_serve_scenario(config) -> "ScenarioReport":
    """Run one serve-stack chaos scenario; see module docstring."""
    from .scenarios import ScenarioReport  # circular at module load

    from ..serve import ImmediateServingCore, ServeConfig

    profile: FaultProfile = config.fault_profile()
    ops = serve_workload(config)
    # A live tracer: every multicast copy then carries the trace
    # trailer of the rekey that produced it, so drops can be tied back
    # to the causing operation.  Tracing draws nothing from the DRBG,
    # so the control-run byte-identity claim is untouched.
    tracer = Tracer(capacity=8192)
    server = GroupKeyServer(
        _server_config(config),
        instrumentation=Instrumentation("chaos-serve", tracer=tracer))
    keys = _individual_keys(ops, server.config.suite)
    control = _control_run(config, ops, keys)

    injected = {"drop": 0}
    random = drbg.make_source(profile.seed, b"serve-chaos")

    async def drive():
        core = ImmediateServingCore(
            server, ServeConfig(tick_interval=0, open_enroll=False))

        def drop_filter(user_id: str, payload: bytes) -> bool:
            hit = random.randint_below(_RATE_BITS) \
                < int(profile.drop_rate * _RATE_BITS)
            if hit:
                injected["drop"] += 1
                # Tag the fault into the trace of the rekey whose copy
                # we are dropping, and into the flight recorder — the
                # dump then shows which drop forced each later resync.
                _body, ctx = split_trace_trailer(payload)
                span = tracer.span("fault.drop", parent=ctx, user=user_id)
                span.finish(error=True)
                core.flight.record("fault.drop", trace_id=span.trace_id,
                                   user=user_id)
            return hit

        core.fanout.drop_filter = drop_filter
        streams: Dict[str, list] = {}

        def attach(user):
            streams.setdefault(user, [])
            core.fanout.attach(user, streams[user].append,
                               path_id=f"path-{user}")

        resyncs = 0
        desyncs = 0
        recovery_rounds = 0
        try:
            # Serial submits: the plan order (and so every DRBG draw)
            # matches the control run; only deliveries differ.
            for op, user in ops:
                if op == "join":
                    server.register_individual_key(user, keys[user])
                    attach(user)
                    msg_type = MSG_JOIN_REQUEST
                else:
                    msg_type = MSG_LEAVE_REQUEST
                request = Message(msg_type=msg_type,
                                  body=user.encode()).encode()
                await core.submit(request, streams[user].append,
                                  path_id=None)

            expected = server.group_key()
            clients: Dict[str, GroupClient] = {}
            for user in streams:
                if not server.is_member(user):
                    continue
                client = GroupClient(user, server.config.suite)
                client.set_individual_key(keys[user])
                for payload in streams[user]:
                    try:
                        message = Message.decode(payload)
                    except Exception:
                        continue
                    try:
                        if message.msg_type == MSG_REKEY:
                            client.process_message(payload)
                        elif message.msg_type in (MSG_JOIN_ACK,
                                                  MSG_LEAVE_ACK,
                                                  MSG_JOIN_DENIED,
                                                  MSG_LEAVE_DENIED):
                            client.process_control(message)
                    except Exception:
                        client.desynced = True
                clients[user] = client
                if client.desynced:
                    desyncs += 1

            def pending():
                return [user for user, client in clients.items()
                        if client.desynced
                        or client.group_key() != expected]

            # Repair through the front end: resync requests submitted
            # to the core, replies applied client-side.
            while pending() and recovery_rounds < config.max_recovery_rounds:
                recovery_rounds += 1
                for user in pending():
                    box: list = []
                    request = Message(msg_type=MSG_RESYNC_REQUEST,
                                      body=user.encode()).encode()
                    await core.submit(request, box.append, path_id=None)
                    if box:
                        clients[user].process_resync(box[0])
                        resyncs += 1

            converged = not pending() \
                and server.group_key() == control.group_key() \
                and server.group_key_ref() == control.group_key_ref()
            data_ok = False
            if converged:
                sealed = server.seal_group_message(b"probe")
                wire = sealed.encoded or sealed.message.encode()
                data_ok = all(
                    clients[user].open_data(wire) == b"probe"
                    for user in clients)
            flight_doc = core.flight.dump("chaos")
            return clients, converged, data_ok, resyncs, desyncs, \
                recovery_rounds, flight_doc
        finally:
            await core.aclose()

    clients, converged, data_ok, resyncs, desyncs, recovery_rounds, \
        flight_doc = asyncio.run(drive())
    return ScenarioReport(
        name=config.name, stack="serve", profile=profile.name,
        converged=converged, data_ok=data_ok,
        workload_rounds=config.rounds,
        recovery_rounds=recovery_rounds,
        survivors=len(clients), resyncs=resyncs, desyncs=desyncs,
        evicted=[], shed_flushes=0, injected=dict(injected),
        flight_dump=flight_doc)

"""Chaos through the async front end: the ``serve`` scenario stack.

The PR5 scenarios inject faults on an in-memory bus; this module runs
the same fault profiles against :class:`~repro.serve.core.
ImmediateServingCore` instead, using the :class:`~repro.serve.fanout.
SocketFanout` per-copy ``drop_filter`` as the loss point.  The headline
claim is stronger than "it recovers": a second, in-memory *control*
server with the same seed is driven through the identical op sequence
with no serving layer at all, and the live server's final group key
must match the control's **byte for byte** — the async front end
(event-loop planning, executor encrypt/seal, admission control) must
not perturb a single DRBG draw.

Clients replay exactly what their reply path received (acks and
multicasts, minus the dropped copies) through the ordinary
:class:`~repro.core.client.GroupClient` state machine, then repair via
resync requests submitted back through the core — the same path a real
lossy client takes.

The live server runs with tracing on, and every injected drop is
tagged into the trace of the rekey that produced the dropped copy (a
``fault.drop`` span parented to the copy's trace trailer) plus a
flight-recorder event — so the flight dump returned on the report
shows *which* drop caused each later resync.
"""

from __future__ import annotations

import asyncio
import tempfile
from typing import Dict, List, Set, Tuple

from ..core.client import GroupClient
from ..core.messages import (MSG_JOIN_ACK, MSG_JOIN_DENIED,
                             MSG_JOIN_REQUEST, MSG_LEAVE_ACK,
                             MSG_LEAVE_DENIED, MSG_LEAVE_REQUEST,
                             MSG_REKEY, MSG_RESYNC_REQUEST, Message)
from ..core.server import GroupKeyServer, ServerConfig
from ..crypto import drbg
from ..observability.instrumentation import Instrumentation
from ..observability.spans import Tracer, split_trace_trailer
from .faults import FaultProfile

#: Rate decisions use the same 20-bit fixed-point draw as ChaosTransport.
_RATE_BITS = 1 << 20


def serve_workload(config) -> List[Tuple[str, str]]:
    """The deterministic op sequence for a serve scenario.

    ``n_initial`` joins, then ``rounds`` churn ops: every third op
    leaves the oldest current member, the rest join fresh users.
    """
    ops = [("join", f"m{i}") for i in range(config.n_initial)]
    present = [user for _op, user in ops]
    for index in range(config.rounds):
        if index % 3 == 2 and len(present) > 2:
            ops.append(("leave", present.pop(0)))
        else:
            user = f"g{index}"
            ops.append(("join", user))
            present.append(user)
    return ops


def _server_config(config) -> ServerConfig:
    return ServerConfig(signing="none", seed=config.seed, backend="flat")


def _individual_keys(ops, suite) -> Dict[str, bytes]:
    """Constant per-user keys: no DRBG draws, identical on both runs."""
    keys = {}
    for _op, user in ops:
        if user not in keys:
            keys[user] = bytes([(len(keys) % 255) + 1]) * suite.key_size
    return keys


def _control_run(config, ops, keys):
    """Drive a plain in-memory server through the same op sequence."""
    server = GroupKeyServer(_server_config(config))
    for op, user in ops:
        if op == "join":
            server.register_individual_key(user, keys[user])
            server.join(user)
        else:
            server.leave(user)
    return server


def run_serve_scenario(config) -> "ScenarioReport":
    """Run one serve-stack chaos scenario; see module docstring."""
    from .scenarios import ScenarioReport  # circular at module load

    from ..serve import ImmediateServingCore, ServeConfig

    profile: FaultProfile = config.fault_profile()
    ops = serve_workload(config)
    # A live tracer: every multicast copy then carries the trace
    # trailer of the rekey that produced it, so drops can be tied back
    # to the causing operation.  Tracing draws nothing from the DRBG,
    # so the control-run byte-identity claim is untouched.
    tracer = Tracer(capacity=8192)
    server = GroupKeyServer(
        _server_config(config),
        instrumentation=Instrumentation("chaos-serve", tracer=tracer))
    keys = _individual_keys(ops, server.config.suite)
    control = _control_run(config, ops, keys)

    injected = {"drop": 0}
    random = drbg.make_source(profile.seed, b"serve-chaos")

    async def drive():
        core = ImmediateServingCore(
            server, ServeConfig(tick_interval=0, open_enroll=False))

        def drop_filter(user_id: str, payload: bytes) -> bool:
            hit = random.randint_below(_RATE_BITS) \
                < int(profile.drop_rate * _RATE_BITS)
            if hit:
                injected["drop"] += 1
                # Tag the fault into the trace of the rekey whose copy
                # we are dropping, and into the flight recorder — the
                # dump then shows which drop forced each later resync.
                _body, ctx = split_trace_trailer(payload)
                span = tracer.span("fault.drop", parent=ctx, user=user_id)
                span.finish(error=True)
                core.flight.record("fault.drop", trace_id=span.trace_id,
                                   user=user_id)
            return hit

        core.fanout.drop_filter = drop_filter
        streams: Dict[str, list] = {}

        def attach(user):
            streams.setdefault(user, [])
            core.fanout.attach(user, streams[user].append,
                               path_id=f"path-{user}")

        resyncs = 0
        desyncs = 0
        recovery_rounds = 0
        try:
            # Serial submits: the plan order (and so every DRBG draw)
            # matches the control run; only deliveries differ.
            for op, user in ops:
                if op == "join":
                    server.register_individual_key(user, keys[user])
                    attach(user)
                    msg_type = MSG_JOIN_REQUEST
                else:
                    msg_type = MSG_LEAVE_REQUEST
                request = Message(msg_type=msg_type,
                                  body=user.encode()).encode()
                await core.submit(request, streams[user].append,
                                  path_id=None)

            expected = server.group_key()
            clients: Dict[str, GroupClient] = {}
            for user in streams:
                if not server.is_member(user):
                    continue
                client = GroupClient(user, server.config.suite)
                client.set_individual_key(keys[user])
                for payload in streams[user]:
                    try:
                        message = Message.decode(payload)
                    except Exception:
                        continue
                    try:
                        if message.msg_type == MSG_REKEY:
                            client.process_message(payload)
                        elif message.msg_type in (MSG_JOIN_ACK,
                                                  MSG_LEAVE_ACK,
                                                  MSG_JOIN_DENIED,
                                                  MSG_LEAVE_DENIED):
                            client.process_control(message)
                    except Exception:
                        client.desynced = True
                clients[user] = client
                if client.desynced:
                    desyncs += 1

            def pending():
                return [user for user, client in clients.items()
                        if client.desynced
                        or client.group_key() != expected]

            # Repair through the front end: resync requests submitted
            # to the core, replies applied client-side.
            while pending() and recovery_rounds < config.max_recovery_rounds:
                recovery_rounds += 1
                for user in pending():
                    box: list = []
                    request = Message(msg_type=MSG_RESYNC_REQUEST,
                                      body=user.encode()).encode()
                    await core.submit(request, box.append, path_id=None)
                    if box:
                        clients[user].process_resync(box[0])
                        resyncs += 1

            converged = not pending() \
                and server.group_key() == control.group_key() \
                and server.group_key_ref() == control.group_key_ref()
            data_ok = False
            if converged:
                sealed = server.seal_group_message(b"probe")
                wire = sealed.encoded or sealed.message.encode()
                data_ok = all(
                    clients[user].open_data(wire) == b"probe"
                    for user in clients)
            flight_doc = core.flight.dump("chaos")
            return clients, converged, data_ok, resyncs, desyncs, \
                recovery_rounds, flight_doc
        finally:
            await core.aclose()

    clients, converged, data_ok, resyncs, desyncs, recovery_rounds, \
        flight_doc = asyncio.run(drive())
    return ScenarioReport(
        name=config.name, stack="serve", profile=profile.name,
        converged=converged, data_ok=data_ok,
        workload_rounds=config.rounds,
        recovery_rounds=recovery_rounds,
        survivors=len(clients), resyncs=resyncs, desyncs=desyncs,
        evicted=[], shed_flushes=0, injected=dict(injected),
        flight_dump=flight_doc)


def run_crash_scenario(config) -> "ScenarioReport":
    """Supervised crash injection: kill, torn tail, restart by replay.

    One supervised shard serves the deterministic workload through the
    async core.  At each op index in ``config.crash_plan`` the shard
    takes a SIGKILL-equivalent teardown (transport closed, tasks
    cancelled, worker pool yanked — no drain, no flush); ``kill-torn``
    additionally tears the journal tail, losing the just-applied op's
    record the way a crash between apply and fsync would.  The
    supervisor then restarts the shard from its recovery substrate
    (strict journal replay, or warm-standby promotion with
    ``serve_recovery="standby"``), two members stay partitioned through
    the restart window, and a torn-away op is retried by the client —
    twice with the same correlation token, proving the server-side
    idempotency cache absorbs the duplicate instead of double-applying.

    The control run is fault-free but replicates the restart's DRBG
    reseed boundary at the same op index (a restored server draws
    future keys from a reseeded DRBG; a control without the cycle would
    legitimately diverge).  Passing requires the live server's full
    snapshot — tree, key material, sequence counter — to match the
    control **byte for byte**, every surviving member to converge (the
    partitioned ones via resync), and a post-recovery data probe to
    reach everyone.
    """
    from .scenarios import ScenarioReport  # circular at module load

    from ..core import persistence
    from ..core.server import ServerConfig as _ServerConfig
    from ..serve import ServeConfig
    from ..serve.supervise import SupervisePolicy, Supervisor
    from ..serve.wire import attach_corr_trailer

    profile: FaultProfile = config.fault_profile()
    ops = serve_workload(config)
    crash_plan = dict(config.crash_plan)
    if not crash_plan:
        crash_plan = {(2 * len(ops)) // 3: "kill-torn"}
    mode = config.serve_recovery
    # The supervisor derives per-shard seeds; the control must match
    # the shard's derived stream, not the base seed.
    shard_seed = config.seed + b"/shard-0"
    control_config = _ServerConfig(signing="none", seed=shard_seed,
                                   backend="flat")
    keys = _individual_keys(ops, control_config.suite)

    control = GroupKeyServer(control_config)
    for index, (op, user) in enumerate(ops):
        if crash_plan.get(index) == "kill-torn":
            # The torn record loses this op: the live run re-executes
            # it post-restart with the reseeded DRBG, so the control
            # cycles through snapshot/restore *before* applying it.
            control = persistence.restore(persistence.snapshot(control))
        if op == "join":
            control.register_individual_key(user, keys[user])
            control.join(user)
        else:
            control.leave(user)
        if crash_plan.get(index) == "kill":
            # A clean kill keeps the op; only the reseed boundary lands.
            control = persistence.restore(persistence.snapshot(control))

    tracer = Tracer(capacity=8192)
    injected = {"kill": 0, "torn": 0, "drop": 0, "partition_drop": 0,
                "restarts": 0, "dup_absorbed": 0}
    random = drbg.make_source(profile.seed, b"serve-crash")
    journal_dir = (tempfile.mkdtemp(prefix="chaos-crash-")
                   if mode == "journal" else None)

    async def drive():
        supervisor = Supervisor(
            1,
            server_config=_ServerConfig(signing="none", seed=config.seed,
                                        backend="flat"),
            serve_config=ServeConfig(tick_interval=0, open_enroll=False,
                                     tcp_port=None),
            journal_dir=journal_dir,
            policy=SupervisePolicy(probe_interval=0, mode=mode),
            instrumentation=Instrumentation("chaos-crash", tracer=tracer))
        await supervisor.start()
        shard = supervisor.shard(0)
        streams: Dict[str, list] = {}
        partitioned: Set[str] = set()

        def drop_filter(user_id: str, payload: bytes) -> bool:
            if user_id in partitioned:
                injected["partition_drop"] += 1
                return True
            hit = random.randint_below(_RATE_BITS) \
                < int(profile.drop_rate * _RATE_BITS)
            if hit:
                injected["drop"] += 1
                _body, ctx = split_trace_trailer(payload)
                span = tracer.span("fault.drop", parent=ctx, user=user_id)
                span.finish(error=True)
                supervisor.flight.record("fault.drop",
                                         trace_id=span.trace_id,
                                         user=user_id)
            return hit

        def wire_core():
            # A restart builds a fresh core: re-point the fault filter
            # and re-attach every member's delivery sink to its fanout.
            shard.core.fanout.drop_filter = drop_filter
            for user, box in streams.items():
                shard.core.fanout.attach(user, box.append,
                                         path_id=f"path-{user}")

        wire_core()

        async def submit(op: str, user: str, token: int,
                         reply=None, register: bool = True) -> None:
            if op == "join" and register:
                shard.server.register_individual_key(user, keys[user])
                if user not in streams:
                    streams[user] = []
                    shard.core.fanout.attach(user, streams[user].append,
                                             path_id=f"path-{user}")
            msg_type = MSG_JOIN_REQUEST if op == "join" \
                else MSG_LEAVE_REQUEST
            request = attach_corr_trailer(
                Message(msg_type=msg_type, body=user.encode()).encode(),
                token)
            sink = reply if reply is not None else streams[user].append
            await shard.core.submit(request, sink, path_id=None)

        resyncs = 0
        desyncs = 0
        recovery_rounds = 0
        clear_partition_next = False
        try:
            for index, (op, user) in enumerate(ops):
                await submit(op, user, 1000 + index)
                if clear_partition_next:
                    partitioned.clear()
                    clear_partition_next = False
                kind = crash_plan.get(index)
                if kind is None:
                    continue
                injected["kill"] += 1
                await supervisor.kill(
                    0, tear_tail=(5 if kind == "kill-torn" else 0))
                if kind == "kill-torn":
                    injected["torn"] += 1
                # Two members stay partitioned through the restart
                # window: they miss the first post-restart rekey and
                # must recover by resync.
                partitioned.update(list(streams)[:2])
                await supervisor.restart(0)
                injected["restarts"] += 1
                wire_core()
                if kind == "kill-torn":
                    # The journal lost the op: retry with the *same*
                    # token, then duplicate the retry to prove the
                    # idempotency cache replays instead of re-applying.
                    await submit(op, user, 1000 + index)
                    seq_before = shard.server._seq
                    box: list = []
                    # Same datagram re-sent: the auth exchange does not
                    # rerun, so no fresh key registration.
                    await submit(op, user, 1000 + index, reply=box.append,
                                 register=False)
                    if shard.server._seq == seq_before and box:
                        injected["dup_absorbed"] += 1
                    partitioned.clear()
                else:
                    clear_partition_next = True

            snapshot_match = persistence.snapshot(shard.server) \
                == persistence.snapshot(control)
            expected = shard.server.group_key()
            clients: Dict[str, GroupClient] = {}
            for user in streams:
                if not shard.server.is_member(user):
                    continue
                client = GroupClient(user, control_config.suite)
                client.set_individual_key(keys[user])
                for payload in streams[user]:
                    try:
                        message = Message.decode(payload)
                    except Exception:
                        continue
                    try:
                        if message.msg_type == MSG_REKEY:
                            client.process_message(payload)
                        elif message.msg_type in (MSG_JOIN_ACK,
                                                  MSG_LEAVE_ACK,
                                                  MSG_JOIN_DENIED,
                                                  MSG_LEAVE_DENIED):
                            client.process_control(message)
                    except Exception:
                        client.desynced = True
                clients[user] = client
                if client.desynced or client.group_key() != expected:
                    desyncs += 1

            def pending():
                return [user for user, client in clients.items()
                        if client.desynced
                        or client.group_key() != expected]

            while pending() and recovery_rounds < config.max_recovery_rounds:
                recovery_rounds += 1
                for user in pending():
                    box: list = []
                    request = Message(msg_type=MSG_RESYNC_REQUEST,
                                      body=user.encode()).encode()
                    await shard.core.submit(request, box.append,
                                            path_id=None)
                    if box:
                        clients[user].process_resync(box[0])
                        resyncs += 1

            converged = snapshot_match and not pending() \
                and shard.server.group_key() == control.group_key() \
                and shard.server.group_key_ref() == control.group_key_ref()
            data_ok = False
            if converged:
                sealed = shard.server.seal_group_message(b"probe")
                wire = sealed.encoded or sealed.message.encode()
                data_ok = all(
                    clients[user].open_data(wire) == b"probe"
                    for user in clients)
            flight_doc = supervisor.flight.dump("chaos-crash")
            return clients, converged, data_ok, resyncs, desyncs, \
                recovery_rounds, flight_doc
        finally:
            await supervisor.aclose()

    clients, converged, data_ok, resyncs, desyncs, recovery_rounds, \
        flight_doc = asyncio.run(drive())
    return ScenarioReport(
        name=config.name, stack="serve-crash", profile=profile.name,
        converged=converged, data_ok=data_ok,
        workload_rounds=config.rounds,
        recovery_rounds=recovery_rounds,
        survivors=len(clients), resyncs=resyncs, desyncs=desyncs,
        evicted=[], shed_flushes=0, injected=dict(injected),
        flight_dump=flight_doc)

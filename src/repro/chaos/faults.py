"""Seeded fault injection at the transport boundary.

:class:`ChaosTransport` wraps an :class:`~repro.transport.inmemory.
InMemoryNetwork`-style inner transport (anything exposing ``attach`` /
``detach`` / ``deliver_to``) and perturbs every delivered copy:

* **drop** — the copy is silently lost;
* **duplicate** — the copy is delivered twice;
* **delay** — the copy is parked on a logical-time heap and released by
  :meth:`ChaosTransport.pump`; copies delayed by different amounts
  overtake each other, which is how *reordering* arises (exactly as in a
  real multicast fabric: reordering is differential delay);
* **crash/restart** — a crashed member's copies are lost without
  detaching its handler, so :meth:`restart` resumes delivery instantly;
* **partition** — a set of members is unreachable until :meth:`heal`.

Every decision comes from one seeded HMAC-DRBG, so a chaos run is a pure
function of ``(profile, workload)`` — rerunning a failing scenario
reproduces it bit-for-bit.  ``ChaosTransport`` itself exposes
``deliver_to``, so :class:`~repro.transport.reliable.ReliableDelivery`
can sit *on top of* chaos (retransmit through it) while chaos sits on
the raw bus.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from ..core.messages import DEST_USER, OutboundMessage
from ..crypto import drbg
from ..observability.spans import NULL_TRACER
from ..transport.base import Transport
from ..transport.inmemory import UnknownReceiverError


class ChaosError(ValueError):
    """Raised on invalid chaos configuration or operations."""


@dataclass(frozen=True)
class FaultProfile:
    """One named, seeded bundle of fault rates.

    Rates are per delivered *copy* (as in real multicast: different
    receivers lose different copies).  ``max_delay`` bounds how many
    :meth:`ChaosTransport.pump` ticks a delayed copy can be parked —
    delay 0 disables reordering entirely.
    """

    name: str = "custom"
    seed: bytes = b"chaos"
    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    delay_rate: float = 0.0
    max_delay: int = 0

    def validate(self) -> None:
        """Check rate ranges; raises ChaosError."""
        for label, rate in (("drop_rate", self.drop_rate),
                            ("duplicate_rate", self.duplicate_rate),
                            ("delay_rate", self.delay_rate)):
            if not 0.0 <= rate < 1.0:
                raise ChaosError(f"{label} must be in [0, 1)")
        if self.max_delay < 0:
            raise ChaosError("max_delay must be >= 0")
        if self.delay_rate and not self.max_delay:
            raise ChaosError("delay_rate needs max_delay >= 1")


#: Named profiles used by the scenario matrix and CI chaos-smoke job.
PROFILES: Dict[str, FaultProfile] = {
    "clean": FaultProfile(name="clean"),
    "drop10": FaultProfile(name="drop10", seed=b"chaos/drop10",
                           drop_rate=0.10),
    "dup-reorder": FaultProfile(name="dup-reorder", seed=b"chaos/dup-reorder",
                                duplicate_rate=0.10, delay_rate=0.25,
                                max_delay=3),
    "lossy-reorder": FaultProfile(name="lossy-reorder",
                                  seed=b"chaos/lossy-reorder",
                                  drop_rate=0.10, duplicate_rate=0.05,
                                  delay_rate=0.25, max_delay=3),
    "heavy": FaultProfile(name="heavy", seed=b"chaos/heavy",
                          drop_rate=0.20, duplicate_rate=0.10,
                          delay_rate=0.35, max_delay=5),
}


class ChaosTransport(Transport):
    """Fault-injecting wrapper over an in-memory style transport."""

    def __init__(self, network, profile: Optional[FaultProfile] = None,
                 registry=None, tracer=None):
        super().__init__(registry)
        self.profile = profile if profile is not None else FaultProfile()
        self.profile.validate()
        self._network = network
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._random = drbg.make_source(self.profile.seed, b"chaos-faults")
        # All ever-attached handlers; crash keeps the entry so restart
        # can re-attach without the member re-registering.
        self._handlers: Dict[str, Callable[[bytes], None]] = {}
        self._crashed: Set[str] = set()
        self._partitioned: Set[str] = set()
        # Delayed copies: (due tick, insertion order, user, payload).
        self._delayed: List[Tuple[int, int, str, bytes]] = []
        self._order = 0
        self.now = 0
        self.injected: Dict[str, int] = {
            "drop": 0, "duplicate": 0, "delay": 0,
            "crash_drop": 0, "partition_drop": 0}
        self._m_faults = self.registry.counter(
            "chaos_faults_total", "Faults injected, by kind.",
            labels=("fault",))

    # -- membership --------------------------------------------------------

    def attach(self, user_id: str, handler: Callable[[bytes], None]) -> None:
        """Register a receiver (delivers unless crashed/partitioned)."""
        self._handlers[user_id] = handler
        self._crashed.discard(user_id)
        self._network.attach(user_id, handler)

    def detach(self, user_id: str) -> None:
        """Remove a receiver for good (a clean leave, not a crash)."""
        self._handlers.pop(user_id, None)
        self._crashed.discard(user_id)
        self._partitioned.discard(user_id)
        self._network.detach(user_id)

    def crash(self, user_id: str) -> None:
        """Crash a member: all its copies are lost until :meth:`restart`."""
        if user_id not in self._handlers:
            raise ChaosError(f"unknown member {user_id!r}")
        if user_id in self._crashed:
            raise ChaosError(f"member {user_id!r} already crashed")
        with self._tracer.span("chaos.crash", user=user_id):
            self._crashed.add(user_id)
            self._network.detach(user_id)

    def restart(self, user_id: str) -> None:
        """Restart a crashed member (its handler and key state survive,
        but everything sent while down is gone — the recovery protocol's
        job to repair)."""
        if user_id not in self._crashed:
            raise ChaosError(f"member {user_id!r} is not crashed")
        with self._tracer.span("chaos.restart", user=user_id):
            self._crashed.discard(user_id)
            self._network.attach(user_id, self._handlers[user_id])

    def partition(self, user_ids: Iterable[str]) -> None:
        """Cut the given members off from all delivery until healed."""
        users = set(user_ids)
        with self._tracer.span("chaos.partition", users=len(users)):
            self._partitioned |= users

    def heal(self, user_ids: Optional[Iterable[str]] = None) -> None:
        """Heal a partition (all of it, or just the given members)."""
        with self._tracer.span("chaos.heal"):
            if user_ids is None:
                self._partitioned.clear()
            else:
                self._partitioned -= set(user_ids)

    @property
    def crashed(self) -> Set[str]:
        """Currently crashed members (read-only copy)."""
        return set(self._crashed)

    # -- fault draws -------------------------------------------------------

    def _chance(self, rate: float) -> bool:
        if not rate:
            return False
        # Same 20-bit fixed-point draw as InMemoryNetwork loss injection.
        return self._random.randint_below(1 << 20) < int(rate * (1 << 20))

    def _fault(self, kind: str) -> None:
        self.injected[kind] += 1
        self._m_faults.inc(fault=kind)

    # -- delivery ----------------------------------------------------------

    def send(self, outbound: OutboundMessage) -> None:
        """Fan a message out, one independent fault pipeline per copy."""
        payload = outbound.encoded or outbound.message.encode()
        if outbound.destination.kind == DEST_USER:
            self.stats.unicast_sends += 1
        else:
            self.stats.multicast_sends += 1
        self.stats.bytes_sent += len(payload)
        for user_id in outbound.receivers:
            self.deliver_to(user_id, payload)

    def deliver_to(self, user_id: str, payload: bytes) -> bool:
        """Push one copy through the fault pipeline.

        Returns True iff at least one copy was delivered *now* (a
        delayed copy counts as in flight, not delivered — retransmitting
        callers like ReliableDelivery see it as success later, via the
        duplicate-suppressed original).
        """
        copies = 1
        if self._chance(self.profile.duplicate_rate):
            copies = 2
            self._fault("duplicate")
        delivered = False
        for _ in range(copies):
            delivered |= self._deliver_copy(user_id, payload)
        return delivered

    def _deliver_copy(self, user_id: str, payload: bytes) -> bool:
        if user_id in self._crashed:
            self._fault("crash_drop")
            self.stats.drops += 1
            return False
        if user_id in self._partitioned:
            self._fault("partition_drop")
            self.stats.drops += 1
            return False
        if self._chance(self.profile.drop_rate):
            self._fault("drop")
            self.stats.drops += 1
            return False
        if self._chance(self.profile.delay_rate):
            delay = 1 + self._random.randint_below(self.profile.max_delay)
            self._order += 1
            heapq.heappush(self._delayed,
                           (self.now + delay, self._order, user_id, payload))
            self._fault("delay")
            # In flight: will surface on a later pump() tick.  Reported
            # as delivered so reliable layers do not also retransmit it.
            return True
        return self._release(user_id, payload)

    def _release(self, user_id: str, payload: bytes) -> bool:
        """Hand one copy to the inner transport (post-delay checks)."""
        try:
            if self._network.deliver_to(user_id, payload):
                self.stats.deliveries += 1
                self.stats.bytes_delivered += len(payload)
                return True
        except UnknownReceiverError:
            # The member left (cleanly) while the copy was in flight.
            self.stats.drops += 1
        return False

    # -- logical time ------------------------------------------------------

    @property
    def in_flight(self) -> int:
        """Delayed copies not yet released."""
        return len(self._delayed)

    def pump(self, steps: int = 1) -> int:
        """Advance logical time, releasing every copy that came due.

        Copies parked with different delays overtake each other here —
        this is where reordering actually happens.  Returns the number
        of copies released.
        """
        released = 0
        for _ in range(steps):
            self.now += 1
            while self._delayed and self._delayed[0][0] <= self.now:
                _due, _order, user_id, payload = heapq.heappop(self._delayed)
                if user_id in self._crashed:
                    self._fault("crash_drop")
                    self.stats.drops += 1
                    continue
                if user_id in self._partitioned:
                    self._fault("partition_drop")
                    self.stats.drops += 1
                    continue
                self._release(user_id, payload)
                released += 1
        return released

    def quiesce(self, limit: int = 64) -> int:
        """Pump until nothing is in flight; returns ticks spent.

        Raises :class:`ChaosError` if the queue fails to drain within
        ``limit`` ticks (it cannot, absent a bug: delays are bounded).
        """
        ticks = 0
        while self._delayed:
            if ticks >= limit:
                raise ChaosError(
                    f"{len(self._delayed)} copies still in flight "
                    f"after {limit} ticks")
            self.pump()
            ticks += 1
        return ticks

"""Deterministic fault injection for the secure-group stack.

The paper assumes "a reliable message delivery system, for both unicast
and multicast" (§5).  This package removes that assumption on purpose:
:class:`~repro.chaos.faults.ChaosTransport` injects seeded, reproducible
loss, duplication, reordering (via bounded delay), member crash/restart
and network partitions under any transport consumer, and
:mod:`repro.chaos.scenarios` drives Figure-10-style join/leave workloads
under named fault profiles, asserting that every surviving member
converges back to the group key through the resync protocol alone.

Quick start::

    python -m repro.chaos            # quick scenario matrix
    python -m repro.chaos --full     # the full matrix
"""

from .faults import PROFILES, ChaosError, ChaosTransport, FaultProfile
from .scenarios import (ScenarioConfig, ScenarioReport, full_matrix,
                        quick_matrix, run_scenario)

__all__ = [
    "PROFILES", "ChaosError", "ChaosTransport", "FaultProfile",
    "ScenarioConfig", "ScenarioReport", "full_matrix", "quick_matrix",
    "run_scenario",
]

"""Multiple secure groups over one user population (paper §7).

The paper closes: "we are constructing a group key management service
for applications that require the formation of multiple secure groups
over a population of users and a user can join several secure groups.
For these applications, the key trees of different group keys are merged
to form a key graph" (the Keystone direction).

:class:`MultiGroupService` manages one :class:`~repro.core.server.
GroupKeyServer` per group while users register once and share a single
individual key across all their groups.  :meth:`merged_key_graph`
exports the union of the per-group key trees as one formal
:class:`~repro.keygraph.graph.KeyGraph` — each u-node reaches the keys
of every group it belongs to — which the model-level queries
(``keyset`` across groups) and validation run against.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple

from ..core.server import GroupKeyServer, RekeyOutcome, ServerConfig
from ..crypto import drbg
from ..crypto.suite import PAPER_SUITE, CipherSuite
from ..keygraph.graph import KeyGraph


class MultiGroupError(ValueError):
    """Raised on invalid multi-group operations."""


class MultiGroupService:
    """A key management service hosting many secure groups."""

    def __init__(self, suite: CipherSuite = PAPER_SUITE,
                 seed: Optional[bytes] = None):
        self.suite = suite
        self._seed = seed
        self._random = drbg.make_source(seed, b"multigroup")
        self._servers: Dict[str, GroupKeyServer] = {}
        self._individual_keys: Dict[str, bytes] = {}
        self._memberships: Dict[str, set] = {}  # user -> group names

    # -- users ---------------------------------------------------------------

    def register_user(self, user_id: str) -> bytes:
        """One authentication exchange per user; the resulting individual
        key is reused by every group the user joins."""
        if user_id in self._individual_keys:
            raise MultiGroupError(f"user {user_id!r} already registered")
        key = self._random.generate(self.suite.key_size)
        self._individual_keys[user_id] = key
        self._memberships[user_id] = set()
        return key

    def individual_key(self, user_id: str) -> bytes:
        """The user's service-wide individual key."""
        try:
            return self._individual_keys[user_id]
        except KeyError:
            raise MultiGroupError(f"unknown user {user_id!r}") from None

    def users(self) -> List[str]:
        """All registered users."""
        return list(self._individual_keys)

    def groups_of(self, user_id: str) -> FrozenSet[str]:
        """Names of the groups the user currently belongs to."""
        if user_id not in self._memberships:
            raise MultiGroupError(f"unknown user {user_id!r}")
        return frozenset(self._memberships[user_id])

    # -- groups ----------------------------------------------------------------

    def create_group(self, name: str, degree: int = 4,
                     strategy: str = "group",
                     signing: str = "none") -> GroupKeyServer:
        """Create a new secure group (its own key tree and server)."""
        if name in self._servers:
            raise MultiGroupError(f"group {name!r} already exists")
        group_seed = (self._seed + b"/" + name.encode("utf-8")
                      if self._seed is not None else None)
        config = ServerConfig(group_id=len(self._servers) + 1,
                              degree=degree, strategy=strategy,
                              suite=self.suite, signing=signing,
                              seed=group_seed)
        server = GroupKeyServer(config)
        self._servers[name] = server
        return server

    def group(self, name: str) -> GroupKeyServer:
        """The named group's key server."""
        try:
            return self._servers[name]
        except KeyError:
            raise MultiGroupError(f"unknown group {name!r}") from None

    def group_names(self) -> List[str]:
        """All group names."""
        return list(self._servers)

    # -- membership ops -----------------------------------------------------------

    def join(self, group_name: str, user_id: str) -> RekeyOutcome:
        """Join ``user_id`` into a group with its shared individual key."""
        server = self.group(group_name)
        key = self.individual_key(user_id)
        outcome = server.join(user_id, key)
        self._memberships[user_id].add(group_name)
        return outcome

    def leave(self, group_name: str, user_id: str) -> RekeyOutcome:
        """Remove ``user_id`` from a group (rekeys that group only)."""
        server = self.group(group_name)
        outcome = server.leave(user_id)
        self._memberships[user_id].discard(group_name)
        return outcome

    def remove_user(self, user_id: str) -> List[Tuple[str, RekeyOutcome]]:
        """Deregister a user entirely: leave every group, drop the key.

        The service-wide analogue of a single group's leave — after it,
        no group holds the user and the shared individual key is
        forgotten (a later :meth:`register_user` starts a fresh
        authentication exchange with a fresh key).  Returns the
        ``(group name, rekey outcome)`` pairs in deterministic (group
        creation) order, so callers can deliver every group's rekey
        messages.
        """
        groups = self.groups_of(user_id)  # validates the user exists
        outcomes = [(name, self.leave(name, user_id))
                    for name in self._servers if name in groups]
        del self._individual_keys[user_id]
        del self._memberships[user_id]
        return outcomes

    # -- the merged key graph ---------------------------------------------------------

    def merged_key_graph(self) -> KeyGraph:
        """Union of all group key trees as one key graph.

        Each user appears as a single u-node; its individual-key k-nodes
        from different trees are distinct k-nodes (one session key per
        group in this implementation), all reachable from the one u-node,
        alongside every subgroup and group key the user holds.
        """
        graph = KeyGraph()
        for user_id, groups in self._memberships.items():
            if groups:
                graph.add_u_node(user_id)
        for name, server in self._servers.items():
            if server.tree is None or server.tree.root is None:
                continue
            prefix = f"{name}:"
            for node in server.tree.nodes():
                graph.add_k_node(f"{prefix}{node.node_id}")
            for node in server.tree.nodes():
                for child in node.children:
                    graph.add_edge(f"{prefix}{child.node_id}",
                                   f"{prefix}{node.node_id}")
                if node.is_leaf:
                    graph.add_edge(node.user_id, f"{prefix}{node.node_id}")
        return graph

    def keyset_across_groups(self, user_id: str) -> FrozenSet[str]:
        """All key names (group-qualified) the user holds service-wide."""
        graph = self.merged_key_graph()
        if user_id not in graph.u_nodes:
            return frozenset()
        return graph.keyset(user_id)

"""Multiple secure groups over one user population (paper §7 / Keystone)."""

from .service import MultiGroupError, MultiGroupService

__all__ = ["MultiGroupService", "MultiGroupError"]

"""User-oriented rekeying (paper §3.3/§3.4).

For each audience of users that needs the same set of new keys, the
server builds one message containing *precisely those keys*, encrypted
together (a single CBC pass) under one key that audience holds.  Cheap
for clients — each receives exactly what it needs in one decryption
pass — but the server re-encrypts ancestor keys once per audience:

* join cost  : ``1 + 2 + ... + (h-1) + (h-1) = h(h+1)/2 - 1``
* leave cost : ``(d-1) * h(h-1)/2``
"""

from __future__ import annotations

from typing import List

from ...keygraph.tree import JoinResult, KeyTree, LeaveResult
from ..messages import STRATEGY_USER_ORIENTED, Destination
from .base import (PlannedMessage, RekeyContext, join_cover_key,
                   join_frontier, new_key_record, other_children,
                   rekeyed_child, requesting_user_message,
                   subtree_receivers)


class UserOrientedStrategy:
    """Per-audience bundles: best for clients, worst for the server."""

    name = "user"
    wire_code = STRATEGY_USER_ORIENTED

    def rekey_join(self, tree: KeyTree, result: JoinResult,
                   ctx: RekeyContext) -> List[PlannedMessage]:
        """One bundle per audience with precisely the keys it needs."""
        plans = []
        for index, change in enumerate(result.changes):
            frontier = join_frontier(tree, result, index)
            if frontier is None:
                continue
            resolve, destination = frontier
            # This audience needs the new keys of x_0 .. x_index, all
            # encrypted together under the old key of x_index.
            records = [new_key_record(c) for c in result.changes[:index + 1]]
            cover_key, enc_id, enc_version = join_cover_key(result, change, index)
            item = ctx.encrypt(cover_key, records, enc_id, enc_version)
            plans.append(PlannedMessage(destination, [item], resolve))
        plans.append(requesting_user_message(result, ctx))
        return plans

    def rekey_leave(self, tree: KeyTree, result: LeaveResult,
                    ctx: RekeyContext) -> List[PlannedMessage]:
        """Per unchanged child: the new ancestor keys in one bundle."""
        plans = []
        for index, change in enumerate(result.changes):
            # For each unchanged child y of x_index: one message with the
            # new keys of x_index .. x_0 under y's key (Figure 5 example).
            records = [new_key_record(c) for c in result.changes[:index + 1]]
            skip = rekeyed_child(result, index)
            for child in other_children(change.node, skip):
                item = ctx.encrypt(child.key, list(records),
                                   child.node_id, child.version)
                plans.append(PlannedMessage(
                    Destination.to_subgroup(child.node_id), [item],
                    subtree_receivers(tree, child)))
        return plans

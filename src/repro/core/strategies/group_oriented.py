"""Group-oriented rekeying (paper §3.3/§3.4, Figures 7 and 9).

The server builds a *single* rekey message holding all new keys and
multicasts it to the entire group (plus, on a join, one unicast to the
joining user).  Best for the server — one message, ``2(h-1)`` / ``d(h-1)``
encryptions, no subgroup multicast needed — but each client receives a
message of size O(d log n) containing keys it does not need.
"""

from __future__ import annotations

from typing import List

from ...keygraph.tree import JoinResult, KeyTree, LeaveResult
from ..messages import STRATEGY_GROUP_ORIENTED, Destination, EncryptedItem
from .base import (PlannedMessage, RekeyContext, join_cover_key,
                   new_key_record, requesting_user_message,
                   subtree_receivers)


class GroupOrientedStrategy:
    """One multicast with every new key: best for the server."""

    name = "group"
    wire_code = STRATEGY_GROUP_ORIENTED

    def rekey_join(self, tree: KeyTree, result: JoinResult,
                   ctx: RekeyContext) -> List[PlannedMessage]:
        # Figure 7 step (4): {K'_0}_{K_0}, ..., {K'_j}_{K_j} to the old group.
        """Figure 7: one multicast with all new keys + joiner unicast."""
        items: List[EncryptedItem] = []
        for index, change in enumerate(result.changes):
            cover_key, enc_id, enc_version = join_cover_key(result, change, index)
            items.append(ctx.encrypt(cover_key, [new_key_record(change)],
                                     enc_id, enc_version))
        plans = []
        # Audience: the pre-join group — non-empty iff the tree holds
        # anyone besides the joiner.
        if items and tree.n_users > 1:
            plans.append(PlannedMessage(
                Destination.to_all(), items,
                subtree_receivers(tree, tree.root, exclude=result.user_id)))
        plans.append(requesting_user_message(result, ctx))
        return plans

    def rekey_leave(self, tree: KeyTree, result: LeaveResult,
                    ctx: RekeyContext) -> List[PlannedMessage]:
        # Figure 9: L_i = {K'_i} under the key of *every* child of x_i
        # (the rekeyed child contributes its new key); one multicast.
        """Figure 9: a single multicast; each new key under every child key."""
        items: List[EncryptedItem] = []
        changes = result.changes
        changed_nodes = {change.node.node_id: change for change in changes}
        for index, change in enumerate(changes):
            record = new_key_record(change)
            for child in change.node.children:
                child_change = changed_nodes.get(child.node_id)
                if child_change is not None:
                    # Child is x_{i+1}: encrypt under its new key.
                    items.append(ctx.encrypt(child_change.new_key, [record],
                                             child.node_id, child.version))
                else:
                    items.append(ctx.encrypt(child.key, [record],
                                             child.node_id, child.version))
        if not items or tree.root is None or not tree.n_users:
            return []
        return [PlannedMessage(Destination.to_all(), items,
                               subtree_receivers(tree, tree.root))]

"""Key-oriented rekeying (paper §3.3/§3.4, Figures 6 and 8).

Each new key is encrypted *individually* and the encryptions are shared
across messages, so the server performs far fewer encryptions than
user-oriented rekeying while sending the same number of messages
(combined per audience):

* join cost  : ``2(h-1)``
* leave cost : ``d(h-1)`` (approximately; exactly
  ``(d-1)(h-1) + (h-2) + ...`` depending on tree shape)
"""

from __future__ import annotations

from typing import List

from ...keygraph.tree import JoinResult, KeyTree, LeaveResult
from ..messages import STRATEGY_KEY_ORIENTED, Destination, EncryptedItem
from .base import (PlannedMessage, RekeyContext, join_cover_key,
                   join_frontier, new_key_record, other_children,
                   rekeyed_child, requesting_user_message,
                   subtree_receivers)


class KeyOrientedStrategy:
    """Individually-encrypted keys, shared across combined messages."""

    name = "key"
    wire_code = STRATEGY_KEY_ORIENTED

    def rekey_join(self, tree: KeyTree, result: JoinResult,
                   ctx: RekeyContext) -> List[PlannedMessage]:
        # Encrypt each new key once: {K'_i}_{K_i} (old key of the same
        # node; for a split joining point, the displaced leaf's key).
        """Figure 6: each new key encrypted once; combined per audience."""
        items: List[EncryptedItem] = []
        for index, change in enumerate(result.changes):
            cover_key, enc_id, enc_version = join_cover_key(result, change, index)
            items.append(ctx.encrypt(cover_key, [new_key_record(change)],
                                     enc_id, enc_version))
        plans = []
        # Figure 6 step (4): audience userset(K_i) - userset(K_{i+1})
        # receives the combined message {K'_0}_{K_0}, ..., {K'_i}_{K_i}.
        for index in range(len(result.changes)):
            frontier = join_frontier(tree, result, index)
            if frontier is None:
                continue
            resolve, destination = frontier
            plans.append(PlannedMessage(destination, items[:index + 1],
                                        resolve))
        plans.append(requesting_user_message(result, ctx))
        return plans

    def rekey_leave(self, tree: KeyTree, result: LeaveResult,
                    ctx: RekeyContext) -> List[PlannedMessage]:
        """Figure 8: per-child heads plus the shared ancestor chain."""
        changes = result.changes
        # Chain items {K'_{i-1}}_{K'_i}: the new key of each node
        # encrypted under the new key of its rekeyed child, computed once
        # and shared by every message below that child (Figure 8).
        chain: List[EncryptedItem] = []
        for index in range(1, len(changes)):
            parent_change = changes[index - 1]
            child_change = changes[index]
            chain.append(ctx.encrypt(
                child_change.new_key, [new_key_record(parent_change)],
                child_change.node.node_id, child_change.node.version))
        plans = []
        for index, change in enumerate(changes):
            skip = rekeyed_child(result, index)
            # Message to each unchanged child y: {K'_i}_{K_y} followed by
            # the chain up to the root.
            ancestors = list(reversed(chain[:index]))  # child-to-root order
            for child in other_children(change.node, skip):
                head = ctx.encrypt(child.key, [new_key_record(change)],
                                   child.node_id, child.version)
                plans.append(PlannedMessage(
                    Destination.to_subgroup(child.node_id),
                    [head] + ancestors, subtree_receivers(tree, child)))
        return plans

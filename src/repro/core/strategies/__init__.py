"""Rekeying strategies (paper §3.3–3.4 and the §7 hybrid).

``STRATEGIES`` maps the specification-file names onto classes:

=========  ======================================  ===========================
name       class                                    character
=========  ======================================  ===========================
user       :class:`UserOrientedStrategy`            best for clients
key        :class:`KeyOrientedStrategy`             balanced
group      :class:`GroupOrientedStrategy`           best for the server
hybrid     :class:`HybridStrategy`                  d multicast addresses
=========  ======================================  ===========================
"""

from .base import PlannedMessage, RekeyContext
from .group_oriented import GroupOrientedStrategy
from .hybrid import HybridStrategy
from .key_oriented import KeyOrientedStrategy
from .user_oriented import UserOrientedStrategy

STRATEGIES = {
    "user": UserOrientedStrategy,
    "key": KeyOrientedStrategy,
    "group": GroupOrientedStrategy,
    "hybrid": HybridStrategy,
}

__all__ = ["STRATEGIES", "PlannedMessage", "RekeyContext",
           "UserOrientedStrategy", "KeyOrientedStrategy",
           "GroupOrientedStrategy", "HybridStrategy"]

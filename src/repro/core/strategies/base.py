"""Shared machinery for the rekeying strategies (paper §3.3–3.4).

A strategy turns a key-tree edit (:class:`~repro.keygraph.tree.JoinResult`
or :class:`~repro.keygraph.tree.LeaveResult`) into *planned messages*:
destination + encrypted items + the resolved receiver list.  The server
wraps the plans into wire messages, signs and sends them.

The :class:`RekeyContext` carries the cipher suite, the IV source and the
encryption counters the experiments report (number of key-encryptions,
per Table 2's cost measure).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from ...crypto import batchenc
from ...keygraph.tree import JoinResult, KeyTree, LeaveResult, PathChange, TreeNode
from ..messages import (INDIVIDUAL_KEY, Destination, EncryptedItem,
                        KeyRecord, encrypt_records, padded_records_plaintext)


@dataclass
class PendingItem:
    """A deferred encryption: everything needed to build the item later.

    The pipeline's plan stage captures the inputs (including the IV, so
    the DRBG stream order is identical to immediate encryption) and the
    encrypt stage materializes :attr:`value`.  Until then the pending
    item stands in for the :class:`EncryptedItem` inside a plan's item
    list.
    """

    key: bytes
    iv: bytes
    records: List[KeyRecord]
    enc_node_id: int
    enc_version: int
    value: Optional[EncryptedItem] = None

    def materialize(self, suite) -> EncryptedItem:
        """Perform the captured encryption (idempotent)."""
        if self.value is None:
            self.value = encrypt_records(suite, self.key, self.iv,
                                         self.records, self.enc_node_id,
                                         self.enc_version)
        return self.value


def resolve_item(item) -> EncryptedItem:
    """An item as wire-ready: a materialized pending item or itself."""
    if isinstance(item, PendingItem):
        if item.value is None:
            raise ValueError("pending item not yet materialized")
        return item.value
    return item


@dataclass
class RekeyContext:
    """Per-request state handed to a strategy.

    With ``defer=False`` (the default), :meth:`encrypt` performs the
    encryption immediately.  The staged pipeline passes ``defer=True``:
    the plan stage then only *schedules* encryptions (capturing key, IV
    and payload) and the pipeline's encrypt stage executes them all via
    :meth:`materialize`.  Either way the DRBG is consumed in the same
    order, so both modes produce identical bytes.
    """

    suite: object
    make_iv: Callable[[], bytes]
    encryptions: int = 0
    defer: bool = False
    pending: List[PendingItem] = field(default_factory=list)

    def encrypt(self, key: bytes, records: Sequence[KeyRecord],
                enc_node_id: int, enc_version: int):
        """Encrypt ``records`` under ``key``; counts one encryption per record.

        The paper's cost measure is the number of *keys encrypted*
        (Table 2); a bundle of m keys in one CBC pass counts m.
        Returns an :class:`EncryptedItem`, or a :class:`PendingItem` in
        deferred mode.
        """
        self.encryptions += len(records)
        if self.defer:
            item = PendingItem(key, self.make_iv(), list(records),
                               enc_node_id, enc_version)
            self.pending.append(item)
            return item
        return encrypt_records(self.suite, key, self.make_iv(), records,
                               enc_node_id, enc_version)

    def materialize(self) -> None:
        """Execute every deferred encryption (the pipeline encrypt stage).

        Large batches (a star rekey, a wide interval flush) go through
        :mod:`repro.crypto.batchenc`, which runs the cipher rounds
        vectorized across the independent items; small batches and
        unsupported ciphers take the per-item path.  Both produce
        byte-identical items (pinned by the batch equivalence tests),
        so this is purely an encrypt-stage throughput decision.
        """
        pending = [item for item in self.pending if item.value is None]
        if (len(pending) >= batchenc.MIN_BATCH_JOBS
                and batchenc.available(self.suite)):
            jobs = []
            lengths = []
            for item in pending:
                padded, plaintext_len = padded_records_plaintext(
                    self.suite, item.records)
                jobs.append((item.key, padded, item.iv))
                lengths.append(plaintext_len)
            # Raw-key jobs: AES suites vectorize the key expansion too
            # (no per-item cipher objects); others build ciphers inside.
            ciphertexts = batchenc.cbc_encrypt_keys_many(self.suite, jobs)
            for item, ciphertext, plaintext_len in zip(pending, ciphertexts,
                                                       lengths):
                item.value = EncryptedItem(item.enc_node_id,
                                           item.enc_version, item.iv,
                                           ciphertext, plaintext_len)
            return
        for item in pending:
            item.materialize(self.suite)


@dataclass
class PlannedMessage:
    """A strategy's output unit, pre-wire-format.

    ``resolve_receivers`` enumerates the concrete user ids the simulation
    must deliver to.  It is a *lazy* callable: a real server multicasts to
    a (sub)group address without enumerating members, so enumeration is
    accounting work that the server excludes from its timed region.  The
    strategy guarantees the audience is non-empty via cheap structural
    checks; the closure is invoked by the server after the processing
    clock stops (and before any further tree edit).
    """

    destination: Destination
    items: List[EncryptedItem]
    resolve_receivers: Callable[[], Tuple[str, ...]]


def fixed_receivers(*user_ids: str) -> Callable[[], Tuple[str, ...]]:
    """A resolver returning a constant receiver tuple."""
    receivers = tuple(user_ids)
    return lambda: receivers


def subtree_receivers(tree: KeyTree, node: TreeNode,
                      exclude: str = None) -> Callable[[], Tuple[str, ...]]:
    """Lazy enumeration of the users below ``node`` (minus ``exclude``)."""
    def resolve() -> Tuple[str, ...]:
        users = tree.userset(node)
        if exclude is None:
            return tuple(users)
        return tuple(user for user in users if user != exclude)
    return resolve


def frontier_receivers(tree: KeyTree, node: TreeNode, below: TreeNode,
                       exclude: str) -> Callable[[], Tuple[str, ...]]:
    """Lazy ``userset(node) - userset(below) - {exclude}`` (Figure 6)."""
    def resolve() -> Tuple[str, ...]:
        outside = set(tree.userset(below))
        outside.add(exclude)
        return tuple(user for user in tree.userset(node)
                     if user not in outside)
    return resolve


def new_key_record(change: PathChange) -> KeyRecord:
    """The key record announcing a path change's new key."""
    return KeyRecord(change.node.node_id, change.node.version, change.new_key)


def join_cover_key(result: JoinResult, change: PathChange,
                   index: int) -> Tuple[bytes, int, int]:
    """Key covering the *pre-join* holders of a changed node.

    Normally that is the node's old key.  When the join split a leaf, the
    joining point is a freshly created interior node whose "old key" was
    never distributed; its only pre-join holder is the displaced user, so
    that user's individual (leaf) key is the cover.

    Returns ``(key_bytes, enc_node_id, enc_version)``.
    """
    is_fresh_interior = (result.split_leaf is not None
                         and index == len(result.changes) - 1)
    if is_fresh_interior:
        leaf = result.split_leaf
        return leaf.key, leaf.node_id, leaf.version
    return change.old_key, change.node.node_id, change.old_version


def join_frontier(tree: KeyTree, result: JoinResult, index: int):
    """The Figure 6 frontier for changed node ``x_index``.

    Returns ``(resolve, destination)`` for the audience
    ``userset(K_i) - userset(K_{i+1}) - {joiner}`` — the users whose
    deepest needed new key is ``K'_i`` — or ``None`` when that audience
    is structurally empty.  The emptiness test is O(d): the audience is
    empty iff every child of ``x_i`` is either the next path node or the
    joiner's new leaf.
    """
    changes = result.changes
    node = changes[index].node
    if index + 1 < len(changes):
        below = changes[index + 1].node
    else:
        below = result.leaf
    has_audience = any(child != below and child != result.leaf
                       for child in node.children)
    if not has_audience:
        return None
    resolve = frontier_receivers(tree, node, below, result.user_id)
    destination = Destination.to_subgroup(node.node_id)
    return resolve, destination


def requesting_user_message(result: JoinResult, ctx: RekeyContext) -> PlannedMessage:
    """The unicast to the joiner: all path keys under its individual key.

    Figure 6/7 step (5): ``s -> u : {K'_0, ..., K'_j}_{k_u}``.
    """
    records = [new_key_record(change) for change in result.changes]
    item = ctx.encrypt(result.leaf.key, records, INDIVIDUAL_KEY, 0)
    return PlannedMessage(Destination.to_user(result.user_id), [item],
                          fixed_receivers(result.user_id))


def other_children(node: TreeNode, excluded: Optional[TreeNode]) -> List[TreeNode]:
    """Children of ``node`` other than ``excluded`` (the rekeyed child)."""
    return [child for child in node.children if child != excluded]


def rekeyed_child(result: LeaveResult, index: int) -> Optional[TreeNode]:
    """The child of ``x_index`` that lies on the rekeyed path (x_{index+1})."""
    changes = result.changes
    if index + 1 < len(changes):
        return changes[index + 1].node
    return None

"""Hybrid group/key-oriented rekeying (paper §7).

The paper suggests allocating "just a small number of multicast
addresses (e.g., one for each child of the key tree's root node) and
[using] a rekeying strategy that is a hybrid of group-oriented and
key-oriented rekeying".

This strategy does exactly that: for each child ``c`` of the root it
builds one message containing precisely the encrypted items useful to
users below ``c`` (key-oriented in spirit), and multicasts it on ``c``'s
address (group-oriented in spirit).  Clients therefore receive smaller
messages than with group-oriented rekeying, while the server sends at
most ``d`` messages per request and needs only ``d`` multicast
addresses.
"""

from __future__ import annotations

from typing import Dict, List

from ...keygraph.tree import JoinResult, KeyTree, LeaveResult, TreeNode
from ..messages import STRATEGY_HYBRID, Destination, EncryptedItem
from .base import (PlannedMessage, RekeyContext, join_cover_key,
                   new_key_record, requesting_user_message,
                   subtree_receivers)


class HybridStrategy:
    """Group-oriented within each top-level subtree; d multicast groups."""

    name = "hybrid"
    wire_code = STRATEGY_HYBRID

    def _top_level_subtree(self, tree: KeyTree, node: TreeNode) -> TreeNode:
        """The root child whose subtree contains ``node`` (or root itself)."""
        current = node
        while current.parent is not None and current.parent != tree.root:
            current = current.parent
        return current

    def rekey_join(self, tree: KeyTree, result: JoinResult,
                   ctx: RekeyContext) -> List[PlannedMessage]:
        """Key-oriented items partitioned per top-level subtree address."""
        changes = result.changes
        # Encrypt each new key once, exactly as key-oriented does.
        items: List[EncryptedItem] = []
        for index, change in enumerate(changes):
            cover_key, enc_id, enc_version = join_cover_key(result, change, index)
            items.append(ctx.encrypt(cover_key, [new_key_record(change)],
                                     enc_id, enc_version))
        # Root item ({K'_0}_{K_0}) is useful to everyone; deeper items only
        # to the top-level subtree containing the rekeyed path.
        plans = []
        if tree.root is not None and len(changes) > 0:
            deep_subtree = (self._top_level_subtree(tree, changes[-1].node)
                            if len(changes) > 1 else None)
            for top_child in tree.root.children:
                if top_child == result.leaf:
                    continue
                # Non-empty unless this top-level subtree holds only the
                # joiner (then it IS the joiner's leaf, skipped above, or
                # the fresh interior over the joiner alone - impossible:
                # a split interior always keeps the displaced leaf too).
                if deep_subtree is not None and top_child == deep_subtree:
                    useful = items  # whole path changed inside this subtree
                else:
                    useful = items[:1]  # only the new group key
                plans.append(PlannedMessage(
                    Destination.to_subgroup(top_child.node_id), list(useful),
                    subtree_receivers(tree, top_child,
                                      exclude=result.user_id)))
        plans.append(requesting_user_message(result, ctx))
        return plans

    def rekey_leave(self, tree: KeyTree, result: LeaveResult,
                    ctx: RekeyContext) -> List[PlannedMessage]:
        """Group-oriented items partitioned per top-level subtree address."""
        changes = result.changes
        if not changes or tree.root is None:
            return []
        changed_nodes = {change.node.node_id: change for change in changes}
        # Encrypt exactly the items group-oriented would, but remember
        # which top-level subtree each item is useful to.
        per_subtree: Dict[int, List[EncryptedItem]] = {}
        for change in changes:
            record = new_key_record(change)
            for child in change.node.children:
                child_change = changed_nodes.get(child.node_id)
                if child_change is not None:
                    item = ctx.encrypt(child_change.new_key, [record],
                                       child.node_id, child.version)
                else:
                    item = ctx.encrypt(child.key, [record],
                                       child.node_id, child.version)
                if change.node == tree.root:
                    # Items decryptable with a root-child key: useful to
                    # exactly that top-level subtree.
                    per_subtree.setdefault(child.node_id, []).append(item)
                else:
                    subtree = self._top_level_subtree(tree, change.node)
                    per_subtree.setdefault(subtree.node_id, []).append(item)
        plans = []
        for top_child in tree.root.children:
            useful = per_subtree.get(top_child.node_id, [])
            if not useful:
                continue
            plans.append(PlannedMessage(
                Destination.to_subgroup(top_child.node_id), useful,
                subtree_receivers(tree, top_child)))
        return plans

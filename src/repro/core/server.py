"""The group key server (paper §3, §5).

Owns the key graph (a key tree or a star), performs group access
control, executes the join/leave protocols under a configurable rekeying
strategy, signs rekey messages, and records the per-request statistics
the paper's experiments report (processing time, encryption counts,
message counts and sizes).

All rekey operations run through the shared staged pipeline
(:class:`~repro.core.pipeline.RekeyPipeline`): the server contributes
the *planner* for each operation (the key-graph edit plus the strategy's
planned messages) and the pipeline performs the encrypt, sign and
dispatch stages, feeding stage timings into the server's
:class:`~repro.observability.Instrumentation`.

The server is transport-agnostic: :meth:`GroupKeyServer.join` /
:meth:`~GroupKeyServer.leave` return :class:`~repro.core.messages.
OutboundMessage` batches that a transport (in-memory bus, UDP, ...)
delivers.  :meth:`~GroupKeyServer.handle_datagram` adapts raw request
datagrams onto those methods for socket-driven operation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..crypto.suite import PAPER_SUITE, CipherSuite
from ..keygraph.backend import BACKENDS, build_tree, make_tree
from ..keygraph.covering import greedy_tree_cover, tree_subset_cover
from ..keygraph.star import StarGroup
from ..keygraph.tree import KeyTree
from ..observability import (COUNT_BUCKETS, LATENCY_BUCKETS_S,
                             SIZE_BUCKETS_BYTES, Instrumentation)
from .messages import (INDIVIDUAL_KEY, MSG_DATA, MSG_HEARTBEAT, MSG_JOIN_ACK,
                       MSG_JOIN_DENIED, MSG_JOIN_REQUEST, MSG_LEAVE_ACK,
                       MSG_LEAVE_DENIED, MSG_LEAVE_REQUEST, MSG_REKEY,
                       MSG_RESYNC_REQUEST, MSG_SUBCAST_REQUEST, STRATEGY_STAR,
                       Destination, EncryptedItem, KeyRecord, Message,
                       OutboundMessage, WireError)
from .pipeline import (KeyMaterialSource, RekeyPipeline, Sequencer,
                       make_signer, validate_signing)
from .resync import RESYNC_NOT_MEMBER, RESYNC_OK, build_resync_reply
from .strategies import STRATEGIES
from .strategies.base import PlannedMessage, RekeyContext

# Reserved node id for the star graph's group key.
STAR_GROUP_NODE = 0


class ServerError(ValueError):
    """Raised on invalid server configuration or requests."""


class AccessDenied(ServerError):
    """Raised when group access control rejects a join."""


@dataclass
class ServerConfig:
    """Mirrors the paper's server specification file."""

    group_id: int = 1
    graph: str = "tree"              # "tree" or "star"
    degree: int = 4                   # key tree degree d
    strategy: str = "group"           # user | key | group | hybrid
    suite: CipherSuite = PAPER_SUITE
    signing: str = "merkle"           # none | per-message | merkle
    seed: Optional[bytes] = None      # deterministic DRBG seed
    access_list: Optional[Set[str]] = None  # None = open group
    # Tree storage engine: "object" (one Python object per k-node) or
    # "flat" (contiguous arrays + key arena; the million-member engine).
    backend: str = "object"
    # Worker-pool size for the async serving layer's encrypt/sign
    # offload (0 = a sensible default chosen by the serving layer).
    # The synchronous server ignores it.
    workers: int = 0
    # Public key of a TicketAuthority (footnote 7): when set, joins must
    # present a valid ticket for this group instead of matching the ACL.
    ticket_authority: Optional[object] = None
    # Covering algorithm for subcasts: "tree" (the O(|S| log n)
    # structural cover, optimal on a key tree) or "greedy" (classic
    # greedy set cover over materialized usersets — the ablation
    # fallback; same cover on a tree, linear-in-n compute).
    subcast_cover: str = "tree"

    def validate(self) -> None:
        """Check field consistency; raises ServerError."""
        if self.graph not in ("tree", "star"):
            raise ServerError(f"unknown graph class {self.graph!r}")
        if self.graph == "tree" and self.strategy not in STRATEGIES:
            raise ServerError(f"unknown strategy {self.strategy!r}")
        if self.backend not in BACKENDS:
            raise ServerError(f"unknown tree backend {self.backend!r}")
        if self.subcast_cover not in ("tree", "greedy"):
            raise ServerError(
                f"unknown subcast cover mode {self.subcast_cover!r}")
        if self.workers < 0:
            raise ServerError("workers must be >= 0")
        validate_signing(self.signing, self.suite, error=ServerError)


@dataclass
class RequestRecord:
    """Statistics of one processed join/leave (one Figure 10/11 sample)."""

    op: str                        # "join" or "leave"
    user_id: str
    seconds: float                 # server processing time
    n_rekey_messages: int
    rekey_bytes: int               # total bytes of rekey messages sent
    max_message_bytes: int
    encryptions: int               # keys encrypted (Table 2 measure)
    signatures: int
    key_changes_total: int         # sum over non-requesting clients
    n_users_after: int
    # Per-stage breakdown of ``seconds`` (plan/encrypt/sign/dispatch),
    # from the pipeline's StageClock; None for hand-built records.
    stage_seconds: Optional[Dict[str, float]] = None


@dataclass
class RekeyOutcome:
    """Everything produced by one join/leave."""

    record: RequestRecord
    rekey_messages: List[OutboundMessage]
    control_messages: List[OutboundMessage] = field(default_factory=list)

    @property
    def all_messages(self) -> List[OutboundMessage]:
        """Control messages followed by rekey messages."""
        return self.control_messages + self.rekey_messages


class StagedRekeyOp:
    """A join/leave whose encrypt/sign stages are still pending.

    Produced by :meth:`GroupKeyServer.begin_join` /
    :meth:`~GroupKeyServer.begin_leave`.  The plan stage — access
    control, the key-graph edit, and every DRBG draw — already ran on
    the calling thread; what remains is per-op work the async serving
    layer offloads to worker threads:

    * :meth:`encrypt` — materialize this op's scheduled encryptions
      (touches only per-op state; independent ops may overlap),
    * :meth:`seal` — assemble + sign + encode (admitted in plan order
      by the pipeline's seal turnstile and serialized under its seal
      lock, so sequence numbers are drawn exactly as the synchronous
      path draws them),
    * :meth:`finish` — build the ack (which draws this op's ack
      sequence number before the turn is passed on), journal the op
      and record the request statistics; returns the
      :class:`RekeyOutcome`.

    ``begin_join(u).encrypt().seal().finish()`` is byte-identical to
    ``join(u)`` — the synchronous methods are implemented exactly that
    way.  Statistics frozen at plan time (key-change counts, group
    size, the ack's root reference) describe *this* op's edit even
    when later ops plan before this one finishes.
    """

    __slots__ = ("server", "staged", "op", "user_id", "_state",
                 "_journal_keys", "_key_changes", "_root_ref",
                 "_n_users_after")

    def __init__(self, server: "GroupKeyServer", staged, op: str,
                 user_id: str, state: Dict[str, object],
                 journal_keys: Optional[List[bytes]],
                 key_changes: int, root_ref: Tuple[int, int],
                 n_users_after: int):
        self.server = server
        self.staged = staged
        self.op = op
        self.user_id = user_id
        self._state = state
        self._journal_keys = journal_keys
        self._key_changes = key_changes
        self._root_ref = root_ref
        self._n_users_after = n_users_after

    def encrypt(self) -> "StagedRekeyOp":
        """Run the encrypt stage (safe on a worker thread)."""
        self.staged.encrypt()
        return self

    def seal(self) -> "StagedRekeyOp":
        """Run the sign + dispatch stages (internally serialized)."""
        self.staged.seal()
        return self

    def finish(self) -> RekeyOutcome:
        """Complete the op: ack, journal entry, request record."""
        server = self.server
        # The ack draws a sequence number, so it must be built while
        # this op still holds its seal turn — before the next planned
        # op is admitted to seal — to keep the overlapped path
        # byte-identical to the synchronous one.
        if self.op == "join":
            ack = server._control_message(
                MSG_JOIN_ACK, self.user_id,
                body=int(self._state["leaf_id"]).to_bytes(4, "big"),
                root_ref=self._root_ref, journal_seq=False)
        else:
            ack = server._control_message(MSG_LEAVE_ACK, self.user_id,
                                          root_ref=self._root_ref,
                                          journal_seq=False)
        self.staged.release_turn()
        run = self.staged.finish()
        if server._journal is not None:
            if self.op == "join":
                server._journal_op(
                    "join", user_id=self.user_id,
                    individual_key=self._state["individual_key"],
                    keys=self._journal_keys)
            else:
                server._journal_op("leave", user_id=self.user_id,
                                   keys=self._journal_keys)
        record = server._record_from_run(run, self._key_changes,
                                         n_users_after=self._n_users_after)
        return RekeyOutcome(record, run.messages, [ack])

    def abort(self) -> None:
        """Record the op as errored (idempotent)."""
        self.staged.abort()


class GroupKeyServer:
    """Trusted key server for one secure group."""

    def __init__(self, config: ServerConfig,
                 instrumentation: Optional[Instrumentation] = None):
        config.validate()
        self.config = config
        self.suite = config.suite
        self.material = KeyMaterialSource(config.suite, config.seed,
                                          b"group-key-server")
        # Dedicated IV stream for resync replies: serving a resync must
        # not perturb the main rekey key/IV draws, so a chaos run's key
        # state stays byte-identical to a fault-free control run's.
        self.resync_material = KeyMaterialSource(config.suite, config.seed,
                                                 b"resync-replies")
        self.history: List[RequestRecord] = []
        # Individual keys registered by the (out-of-band) authentication
        # exchange, for users not yet members.
        self._registered_keys: Dict[str, bytes] = {}
        # Optional append-only op journal (attach_journal); the tap
        # captures tree-edit key draws while an op is being logged.
        self._journal = None
        self._journal_tap: Optional[List[bytes]] = None

        if config.graph == "tree":
            self.tree: Optional[KeyTree] = make_tree(
                config.backend, config.degree, self._new_key)
            self.star: Optional[StarGroup] = None
            self._strategy = STRATEGIES[config.strategy]()
            self._strategy_code = self._strategy.wire_code
        else:
            self.tree = None
            self.star = StarGroup(self._new_key)
            self._strategy = None
            self._strategy_code = STRATEGY_STAR

        self._signer, self.signing_keypair = make_signer(
            config.suite, config.signing, config.seed, error=ServerError)
        self.instrumentation = (instrumentation if instrumentation is not None
                                else Instrumentation("group-key-server"))
        # Paper-facing metric families (all no-ops on NULL_REGISTRY).
        registry = self.instrumentation.registry
        self._m_requests = registry.counter(
            "server_requests_total", "Requests processed by outcome.",
            labels=("op", "status"))
        self._m_messages = registry.counter(
            "rekey_messages_total", "Rekey messages sent (Table 5).",
            labels=("op",))
        self._m_bytes = registry.counter(
            "rekey_bytes_total", "Total rekey message bytes sent.",
            labels=("op",))
        self._m_encryptions = registry.counter(
            "encryptions_total", "Keys encrypted (Table 2 measure).",
            labels=("op",))
        self._m_signatures = registry.counter(
            "signatures_total", "Signatures computed on rekey messages.",
            labels=("op",))
        self._m_key_changes = registry.counter(
            "key_changes_total",
            "Key changes summed over non-requesting clients (Fig. 12).",
            labels=("op",))
        self._m_group_size = registry.gauge(
            "group_size", "Current number of group members.").labels()
        self._m_message_bytes = registry.histogram(
            "rekey_message_bytes", "Rekey message size distribution.",
            bounds=SIZE_BUCKETS_BYTES, labels=("op",))
        self._m_resyncs = registry.counter(
            "resync_replies_total",
            "Resync replies served, by status.", labels=("status",))
        self._m_subcasts = registry.counter(
            "subcast_messages_total", "Subcast messages sealed.").labels()
        self._m_subcast_bytes = registry.counter(
            "subcast_bytes_total", "Subcast message bytes sealed.").labels()
        self._m_subcast_cover = registry.histogram(
            "subcast_cover_keys",
            "Key-cover size per subcast (ciphertexts beyond the payload).",
            bounds=COUNT_BUCKETS).labels()
        self._m_subcast_seal = registry.histogram(
            "subcast_seal_seconds",
            "Cover + seal time per subcast.",
            bounds=LATENCY_BUCKETS_S).labels()
        self._sequencer = Sequencer()
        self.pipeline = RekeyPipeline(
            config.suite, self.material, signer=self._signer,
            sequencer=self._sequencer, group_id=config.group_id,
            instrumentation=self.instrumentation)
        # Dedicated DRBG personalization for subcast message keys/IVs:
        # sealing a subcast must never perturb the rekey key stream.
        self.subcast_material = KeyMaterialSource(config.suite, config.seed,
                                                  b"subcast-seal")
        from ..subcast.sealing import SubcastSealer
        self.subcast_sealer = SubcastSealer(
            config.suite, self.subcast_material, self._signer,
            self._sequencer, group_id=config.group_id,
            seal_lock=self.pipeline.seal_lock)

    # -- key material -------------------------------------------------------

    def _new_key(self) -> bytes:
        key = self.material.new_key()
        if self._journal_tap is not None:
            self._journal_tap.append(key)
        return key

    def _new_iv(self) -> bytes:
        return self.material.new_iv()

    def new_individual_key(self) -> bytes:
        """Generate an individual key (stands in for the auth exchange)."""
        return self.material.new_individual_key()

    def register_individual_key(self, user_id: str, key: bytes) -> None:
        """Record the session key from the authentication exchange."""
        if len(key) != self.suite.key_size:
            raise ServerError(
                f"individual key must be {self.suite.key_size} bytes")
        self._registered_keys[user_id] = key
        if self._journal is not None:
            self._journal.append("register", user_id=user_id,
                                 individual_key=key, seq=self._seq)

    # -- journaling ---------------------------------------------------------

    def attach_journal(self, journal) -> None:
        """Log every state-changing op to ``journal`` from now on.

        Writes an initial checkpoint (a full snapshot) so replay starts
        from the server's current state.  See
        :func:`repro.core.persistence.attach_journal` for the
        file-backed convenience wrapper and
        :func:`repro.core.persistence.restore_from_journal` for
        recovery.
        """
        self._journal = journal
        journal.checkpoint(self._checkpoint_blob())

    def _checkpoint_blob(self) -> bytes:
        from .persistence import snapshot
        return snapshot(self)

    def _journal_op(self, op: str, **fields) -> None:
        if self._journal is not None:
            self._journal.append(op, seq=self._seq, **fields)

    @property
    def public_key(self):
        """The server's signature-verification key (None when unsigned)."""
        return (self.signing_keypair.public_key
                if self.signing_keypair is not None else None)

    # -- sequence counter (snapshot/restore keeps it) -----------------------

    @property
    def _seq(self) -> int:
        return self._sequencer.value

    @_seq.setter
    def _seq(self, value: int) -> None:
        self._sequencer.value = value

    def _next_seq(self) -> int:
        return self._sequencer.next()

    # -- group state -----------------------------------------------------------

    @property
    def n_users(self) -> int:
        """Current group size."""
        if self.tree is not None:
            return self.tree.n_users
        return len(self.star)

    def members(self) -> List[str]:
        """Current member ids."""
        if self.tree is not None:
            return self.tree.users()
        return self.star.members()

    def is_member(self, user_id: str) -> bool:
        """True iff ``user_id`` is currently in the group."""
        if self.tree is not None:
            return self.tree.has_user(user_id)
        return self.star.has_user(user_id)

    def group_key_ref(self) -> Tuple[int, int]:
        """(node id, version) of the current group key."""
        if self.tree is not None:
            if self.tree.root is None:
                raise ServerError("group is empty")
            return self.tree.root.node_id, self.tree.root.version
        return STAR_GROUP_NODE, self.star.group_key_version

    def group_key(self) -> bytes:
        """Current group key bytes."""
        if self.tree is not None:
            return self.tree.group_key_node().key
        return self.star.group_key

    def bootstrap(self, members: Iterable[Tuple[str, bytes]]) -> None:
        """Bulk-initialise the group without generating rekey traffic.

        Reaches the same steady-state tree as the paper's initial n joins
        (the paper measures only the subsequent request phase).
        """
        members = list(members)
        if self.n_users:
            raise ServerError("bootstrap requires an empty group")
        # Bootstrap is operator-initiated: the ACL applies, but ticket
        # checks do not (the operator vouches for the initial roster).
        acl = self.config.access_list
        for user_id, key in members:
            if acl is not None and user_id not in acl:
                raise AccessDenied(
                    f"user {user_id!r} not in access control list")
        if self.tree is not None:
            self.tree = build_tree(self.config.backend, members,
                                   self.config.degree, self._new_key)
        else:
            for user_id, key in members:
                self.star.join(user_id, key)
        if self._journal is not None:
            # Bootstrapping rewrites the whole tree: checkpoint instead
            # of logging an op (replay resumes from the checkpoint).
            self._journal.checkpoint(self._checkpoint_blob())

    def _check_acl(self, user_id: str, ticket=None) -> None:
        authority_key = self.config.ticket_authority
        if authority_key is not None:
            from .tickets import TicketAuthority, TicketError
            if ticket is None:
                raise AccessDenied(
                    f"group {self.config.group_id} requires a ticket")
            try:
                TicketAuthority.verify(authority_key, ticket, user_id,
                                       self.config.group_id)
            except TicketError as exc:
                raise AccessDenied(str(exc)) from None
            return
        acl = self.config.access_list
        if acl is not None and user_id not in acl:
            raise AccessDenied(f"user {user_id!r} not in access control list")

    # -- message assembly ---------------------------------------------------------

    def _base_message(self, msg_type: int, strategy_code: int) -> Message:
        root_id, root_version = self.group_key_ref()
        return Message(
            msg_type=msg_type,
            group_id=self.config.group_id,
            strategy=strategy_code,
            seq=self._next_seq(),
            timestamp_us=time.time_ns() // 1000,
            root_node_id=root_id,
            root_version=root_version,
        )

    def _key_changes_total(self, changes, requester: str) -> int:
        """Sum over non-requesting users of path keys changed (Fig. 12)."""
        if self.tree is None:
            # Star: every remaining user changes exactly the group key.
            total = len(self.star)
            return total - (1 if self.star.has_user(requester) else 0)
        total = 0
        requester_on_path = self.tree.has_user(requester)
        for change in changes:
            # O(1) via the maintained subtree sizes; the requester (if
            # still a member) lies on every changed node's subtree.
            total += self.tree.subtree_size(change.node)
            if requester_on_path:
                total -= 1
        return total

    def _record_from_run(self, run, key_changes_total: int,
                         n_users_after: Optional[int] = None
                         ) -> RequestRecord:
        """Derive the paper-facing request record from a pipeline run."""
        record = RequestRecord(
            op=run.op, user_id=run.user_id, seconds=run.seconds,
            n_rekey_messages=len(run.messages),
            rekey_bytes=run.total_bytes,
            max_message_bytes=run.max_message_bytes,
            encryptions=run.encryptions, signatures=run.signatures,
            key_changes_total=key_changes_total,
            n_users_after=(n_users_after if n_users_after is not None
                           else self.n_users),
            stage_seconds=run.stage_seconds,
        )
        self.history.append(record)
        op = run.op
        self._m_requests.inc(op=op, status="ok")
        self._m_messages.inc(len(run.messages), op=op)
        self._m_bytes.inc(run.total_bytes, op=op)
        self._m_encryptions.inc(run.encryptions, op=op)
        self._m_signatures.inc(run.signatures, op=op)
        self._m_key_changes.inc(key_changes_total, op=op)
        self._m_group_size.set(self.n_users)
        for outbound in run.messages:
            self._m_message_bytes.observe(outbound.size, op=op)
        return record

    # -- join -------------------------------------------------------------------

    def join(self, user_id: str, individual_key: Optional[bytes] = None,
             ticket=None) -> RekeyOutcome:
        """Admit a user and rekey (Figures 2, 6, 7).

        ``individual_key`` may be omitted when previously registered via
        :meth:`register_individual_key`.  ``ticket`` (a
        :class:`~repro.core.tickets.Ticket`) is required when the server
        is configured with a ticket authority (footnote 7).
        """
        return (self.begin_join(user_id, individual_key, ticket)
                .encrypt().seal().finish())

    def begin_join(self, user_id: str,
                   individual_key: Optional[bytes] = None,
                   ticket=None) -> StagedRekeyOp:
        """Plan a join now; the remaining stages run on the caller's terms.

        The graph edit and every DRBG draw happen here, so ``begin_*``
        calls must be serialized by the caller (the async serving layer
        keeps them on the event loop); the returned op's encrypt stage
        may then overlap with other ops' on worker threads.
        """
        state: Dict[str, object] = {}

        def planner(ctx: RekeyContext) -> List[PlannedMessage]:
            self._check_acl(user_id, ticket)
            key = individual_key
            if key is None:
                key = self._registered_keys.pop(user_id, None)
                if key is None:
                    raise ServerError(f"no individual key for {user_id!r}")
            if self.is_member(user_id):
                raise ServerError(f"user {user_id!r} is already a member")
            state["individual_key"] = key
            if self.tree is not None:
                result = self.tree.join(user_id, key)
                state["changes"] = result.changes
                state["leaf_id"] = result.leaf.node_id
                return self._strategy.rekey_join(self.tree, result, ctx)
            state["changes"] = None
            # Star members have no tree leaf; the ack carries the
            # individual-key sentinel (it must NOT collide with the star
            # group-key node id 0).
            state["leaf_id"] = INDIVIDUAL_KEY
            return self._star_join_plans(user_id, key, ctx)

        return self._begin_op("join", user_id, planner, state)

    def _star_key_changes(self, requester: str) -> int:
        return len(self.star) - (1 if self.star.has_user(requester) else 0)

    def _star_join_plans(self, user_id: str, individual_key: bytes,
                         ctx: RekeyContext) -> List[PlannedMessage]:
        """Figure 2: multicast under the old group key + unicast to joiner."""
        rekey = self.star.join(user_id, individual_key)
        record = KeyRecord(STAR_GROUP_NODE, rekey.new_version,
                           rekey.new_group_key)
        plans = []
        if rekey.multicast_under_old_group_key:
            item = ctx.encrypt(rekey.multicast_under_old_group_key, [record],
                               STAR_GROUP_NODE, rekey.old_version)
            resolve = (lambda: tuple(u for u in self.star.members()
                                     if u != user_id))
            plans.append(PlannedMessage(Destination.to_all(), [item],
                                        resolve))
        item = ctx.encrypt(individual_key, [record], INDIVIDUAL_KEY, 0)
        plans.append(PlannedMessage(Destination.to_user(user_id), [item],
                                    lambda: (user_id,)))
        return plans

    # -- leave -------------------------------------------------------------------

    def leave(self, user_id: str) -> RekeyOutcome:
        """Expel/release a user and rekey (Figures 4, 8, 9)."""
        return self.begin_leave(user_id).encrypt().seal().finish()

    def begin_leave(self, user_id: str) -> StagedRekeyOp:
        """Plan a leave now; see :meth:`begin_join` for the contract."""
        state: Dict[str, object] = {}

        def planner(ctx: RekeyContext) -> List[PlannedMessage]:
            if not self.is_member(user_id):
                raise ServerError(f"user {user_id!r} is not a member")
            if self.tree is not None:
                result = self.tree.leave(user_id)
                state["changes"] = result.changes
                return self._strategy.rekey_leave(self.tree, result, ctx)
            state["changes"] = None
            return self._star_leave_plans(user_id, ctx)

        return self._begin_op("leave", user_id, planner, state)

    def _begin_op(self, op: str, user_id: str, planner,
                  state: Dict[str, object]) -> StagedRekeyOp:
        """Shared begin path: plan under the journal tap, freeze stats.

        The root reference handed to the pipeline's sign stage is
        frozen *here*, right after the plan — under concurrency a later
        op may advance the root before this op seals, and its rekey
        messages must still advertise the root their items install.
        """
        frozen: Dict[str, Tuple[int, int]] = {}
        if self._journal is not None:
            self._journal_tap = []
        try:
            staged = self.pipeline.begin(op, planner,
                                         strategy_code=self._strategy_code,
                                         root_ref=lambda: frozen["ref"],
                                         user_id=user_id)
        except Exception:
            self._journal_tap = None
            raise
        keys, self._journal_tap = self._journal_tap, None
        try:
            root_ref = self.group_key_ref()
        except ServerError:
            # The op emptied the group (last member left): no plans
            # were produced, so the pipeline never asks for the ref.
            root_ref = (0, 0)
        frozen["ref"] = root_ref
        key_changes = (self._key_changes_total(state["changes"], user_id)
                       if self.tree is not None
                       else self._star_key_changes(user_id))
        return StagedRekeyOp(self, staged, op, user_id, state, keys,
                             key_changes, root_ref, self.n_users)

    def _star_leave_plans(self, user_id: str,
                          ctx: RekeyContext) -> List[PlannedMessage]:
        """Figure 4: the new group key unicast to each remaining member."""
        rekey = self.star.leave(user_id)
        record = KeyRecord(STAR_GROUP_NODE, rekey.new_version,
                           rekey.new_group_key)
        plans = []
        for member_id, member_key in rekey.encrypt_for:
            item = ctx.encrypt(member_key, [record], INDIVIDUAL_KEY, 0)
            plans.append(PlannedMessage(
                Destination.to_user(member_id), [item],
                (lambda mid=member_id: (mid,))))
        return plans

    # -- periodic refresh ------------------------------------------------------

    def refresh(self) -> RekeyOutcome:
        """Rotate the group key without a membership change.

        "To achieve a high level of security, the group key should be
        changed frequently" — beyond per-join/leave rekeying, long-lived
        groups rotate the group key periodically to bound the exposure
        of any single key.  One multicast carries the new group key
        encrypted under the old one (everyone currently entitled to the
        old key is entitled to the new one).
        """

        def planner(ctx: RekeyContext) -> List[PlannedMessage]:
            if self.n_users == 0:
                raise ServerError("cannot refresh an empty group")
            if self.tree is not None:
                root = self.tree.root
                old_key, old_version = root.key, root.version
                root.replace_key(self._new_key())
                record_key = KeyRecord(root.node_id, root.version, root.key)
                item = ctx.encrypt(old_key, [record_key], root.node_id,
                                   old_version)
                return [PlannedMessage(
                    Destination.to_all(), [item],
                    lambda: tuple(self.tree.users()))]
            old_key = self.star.group_key
            old_version = self.star.group_key_version
            self.star.group_key = self._new_key()
            self.star.group_key_version += 1
            record_key = KeyRecord(STAR_GROUP_NODE,
                                   self.star.group_key_version,
                                   self.star.group_key)
            item = ctx.encrypt(old_key, [record_key], STAR_GROUP_NODE,
                               old_version)
            return [PlannedMessage(
                Destination.to_all(), [item],
                lambda: tuple(self.star.members()))]

        if self._journal is not None:
            self._journal_tap = []
        try:
            run = self.pipeline.run("refresh", planner,
                                    strategy_code=self._strategy_code,
                                    root_ref=self.group_key_ref)
        except Exception:
            self._journal_tap = None
            raise
        if self._journal is not None:
            keys, self._journal_tap = self._journal_tap, None
            self._journal_op("refresh", keys=keys)
        record = self._record_from_run(run, key_changes_total=self.n_users)
        return RekeyOutcome(record, run.messages, [])

    def _control_message(self, msg_type: int, user_id: str,
                         body: bytes = b"",
                         root_ref: Optional[Tuple[int, int]] = None,
                         journal_seq: bool = True) -> OutboundMessage:
        if root_ref is None:
            try:
                root_ref = self.group_key_ref()
            except ServerError:
                root_ref = (0, 0)
        root_id, root_version = root_ref
        message = Message(msg_type=msg_type, group_id=self.config.group_id,
                          seq=self._next_seq(),
                          timestamp_us=time.time_ns() // 1000,
                          root_node_id=root_id, root_version=root_version,
                          body=body)
        # The signer is stateful and shared with pipeline runs that may
        # be sealing on worker threads; serialize with them.
        with self.pipeline.seal_lock:
            self._signer.seal([message])
        # ``journal_seq=False`` is for acks inside a staged commit: the
        # op record written right after carries this same (final) seq,
        # and a standalone marker *before* the op record would survive
        # a torn-tail crash that loses the op — restarting with the
        # op's seq draws but not its tree edit.
        if journal_seq:
            self._journal_op("seq")
        return OutboundMessage(Destination.to_user(user_id), message,
                               (user_id,), message.encode())

    # -- application data ----------------------------------------------------------

    def seal_group_message(self, payload: bytes) -> OutboundMessage:
        """Encrypt application data under the current group key."""
        group_key = self.group_key()
        root_id, root_version = self.group_key_ref()
        iv = self._new_iv()
        from ..crypto import modes
        block = self.suite.block_size
        padded_len = -(-max(len(payload), 1) // block) * block
        padded = payload.ljust(padded_len, b"\x00")
        cipher = self.suite.new_cipher(group_key)
        ciphertext = modes.cbc_encrypt_nopad(cipher, padded, iv)
        item = EncryptedItem(root_id, root_version, iv, ciphertext,
                             len(payload))
        message = self._base_message(MSG_DATA, 0)
        message.items = [item]
        self._signer.seal([message])
        self._journal_op("seq")
        return OutboundMessage(Destination.to_all(), message,
                               tuple(self.members()), message.encode())

    def subcast(self, targets: Iterable[str],
                payload: bytes) -> OutboundMessage:
        """Seal ``payload`` to exactly ``targets`` via a key cover (§2.1).

        Computes a minimum key cover of the target subset on the key
        tree (``config.subcast_cover`` selects the O(|S| log n)
        structural cover or the classic greedy ablation — same cover on
        a tree), then seals one payload ciphertext plus one sealed
        message-key copy per cover key.  Only current members can be
        addressed; evicted members hold stale key versions and fail
        closed at the client.
        """
        if self.tree is None:
            raise ServerError("subcast requires a tree key graph "
                              "(star groups hold no subgroup keys)")
        target_list = sorted(set(targets))
        if not target_list:
            raise ServerError("subcast needs at least one target")
        for user_id in target_list:
            if not self.tree.has_user(user_id):
                raise ServerError(
                    f"subcast target {user_id!r} is not a member")
        started = time.perf_counter()
        with self.instrumentation.tracer.span(
                "subcast.cover", targets=len(target_list),
                mode=self.config.subcast_cover) as span:
            if self.config.subcast_cover == "greedy":
                cover_nodes = greedy_tree_cover(self.tree, target_list)
            else:
                cover_nodes = tree_subset_cover(self.tree, target_list)
            span.set("cover", len(cover_nodes))
        cover = [(node.node_id, node.version, node.key)
                 for node in cover_nodes]
        with self.instrumentation.tracer.span("subcast.seal",
                                              cover=len(cover)):
            out = self.subcast_sealer.seal(
                cover, payload, receivers=target_list,
                root_ref=self.group_key_ref())
        self._journal_op("seq")
        self._m_subcasts.inc()
        self._m_subcast_bytes.inc(len(out.encoded))
        self._m_subcast_cover.observe(len(cover))
        self._m_subcast_seal.observe(time.perf_counter() - started)
        return out

    # -- resynchronization ---------------------------------------------------------

    def resync(self, user_id: str) -> OutboundMessage:
        """Serve one ``MSG_RESYNC_REPLY`` for ``user_id`` (paper §5 relaxed).

        A member gets its full current key path (leaf parent up to the
        group key) in one item under its individual key; a non-member
        gets ``RESYNC_NOT_MEMBER`` so a dead-then-evicted client learns
        it must rejoin rather than wait for keys that never come.
        """
        with self.instrumentation.tracer.span("resync.reply",
                                              user=user_id) as span:
            if not self.is_member(user_id):
                self._m_resyncs.inc(status="not-member")
                span.set("status", "not-member")
                with self.pipeline.seal_lock:
                    reply = build_resync_reply(
                        self.suite, self._signer, self._sequencer,
                        group_id=self.config.group_id, user_id=user_id,
                        status=RESYNC_NOT_MEMBER, leaf_node_id=0)
                self._journal_op("seq")
                return reply
            if self.tree is not None:
                leaf = self.tree.leaf_of(user_id)
                individual_key = leaf.key
                leaf_node_id = leaf.node_id
                records = [KeyRecord(node.node_id, node.version, node.key)
                           for node in leaf.path_to_root()[1:]]
            else:
                individual_key = self.star.individual_key(user_id)
                leaf_node_id = INDIVIDUAL_KEY
                records = [KeyRecord(STAR_GROUP_NODE,
                                     self.star.group_key_version,
                                     self.star.group_key)]
            self._m_resyncs.inc(status="ok")
            span.set("status", "ok").set("records", len(records))
            with self.pipeline.seal_lock:
                reply = build_resync_reply(
                    self.suite, self._signer, self._sequencer,
                    group_id=self.config.group_id, user_id=user_id,
                    status=RESYNC_OK, leaf_node_id=leaf_node_id,
                    records=records, root_ref=self.group_key_ref(),
                    individual_key=individual_key,
                    iv=self.resync_material.new_iv())
            self._journal_op("seq")
            return reply

    # -- datagram interface ------------------------------------------------------------

    def handle_datagram(self, data: bytes) -> List[OutboundMessage]:
        """Socket-facing entry point: parse a request, run the protocol.

        The join request body is the UTF-8 user id; the individual key
        must have been registered beforehand (standing in for the
        authentication exchange, which the paper also excludes from
        processing-time measurements).
        """
        try:
            message = Message.decode(data)
        except WireError as exc:
            raise ServerError(f"malformed request: {exc}") from None
        user_id = message.body.decode("utf-8", errors="replace")
        if message.msg_type == MSG_JOIN_REQUEST:
            try:
                outcome = self.join(user_id)
            except (AccessDenied, ServerError):
                self._m_requests.inc(op="join", status="denied")
                return [self._control_message(MSG_JOIN_DENIED, user_id)]
            return outcome.all_messages
        if message.msg_type == MSG_LEAVE_REQUEST:
            try:
                outcome = self.leave(user_id)
            except ServerError:
                self._m_requests.inc(op="leave", status="denied")
                return [self._control_message(MSG_LEAVE_DENIED, user_id)]
            return outcome.all_messages
        if message.msg_type == MSG_RESYNC_REQUEST:
            return [self.resync(user_id)]
        if message.msg_type == MSG_SUBCAST_REQUEST:
            from ..subcast.wire import SubcastWireError, \
                parse_subcast_request
            try:
                sender, targets, payload = parse_subcast_request(
                    message.body)
            except SubcastWireError as exc:
                raise ServerError(
                    f"malformed subcast request: {exc}") from None
            if not self.is_member(sender):
                raise ServerError(
                    f"subcast sender {sender!r} is not a member")
            return [self.subcast(targets, payload)]
        if message.msg_type == MSG_HEARTBEAT:
            # Heartbeats are consumed by a RecoveryManager when one is
            # wired in front of the server; a bare server ignores them.
            return []
        raise ServerError(f"unexpected message type {message.msg_type}")

"""Signing rekey messages (paper §4).

A digital signature is ~two orders of magnitude slower than a DES
encryption, so signing each of the many per-join/leave rekey messages
individually dominates server time for user- and key-oriented rekeying.
The paper's remedy (after Merkle's certified digital signature) signs
*one* value — the root of a hash tree over the message digests — and
attaches to each message a certificate: the signature plus the sibling
digests needed to recompute the root.

Three signer policies implement the paper's measured configurations:

* :class:`NullSigner` — no signature (digest only, or nothing);
* :class:`PerMessageSigner` — one RSA signature per rekey message
  (Table 4, left half);
* :class:`MerkleSigner` — one RSA signature per join/leave for the
  whole batch of rekey messages (Table 4, right half).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from ..crypto import rsa
from .messages import (SIG_MERKLE, SIG_NONE, SIG_PER_MESSAGE, AuthBlock,
                       Message)


class MerkleTree:
    """Binary hash tree over a list of leaf digests.

    Interior node = H(left || right); an odd node is promoted unchanged
    (no duplication), so the tree over one digest is that digest itself.
    """

    def __init__(self, leaves: Sequence[bytes], digest_fn: Callable[[bytes], bytes]):
        if not leaves:
            raise ValueError("Merkle tree needs at least one leaf")
        self._digest = digest_fn
        self.levels: List[List[bytes]] = [list(leaves)]
        while len(self.levels[-1]) > 1:
            current = self.levels[-1]
            parents = []
            for i in range(0, len(current) - 1, 2):
                parents.append(digest_fn(current[i] + current[i + 1]))
            if len(current) % 2:
                parents.append(current[-1])
            self.levels.append(parents)

    @property
    def root(self) -> bytes:
        """The tree's root digest (the value that gets signed)."""
        return self.levels[-1][0]

    def path(self, index: int) -> List[bytes]:
        """Sibling digests from leaf ``index`` up to (not incl.) the root.

        An empty sibling marks levels where the node was promoted without
        a partner; verification skips those.
        """
        if not 0 <= index < len(self.levels[0]):
            raise IndexError("leaf index out of range")
        siblings = []
        position = index
        for level in self.levels[:-1]:
            partner = position ^ 1
            if partner < len(level):
                siblings.append(level[partner])
            else:
                siblings.append(b"")
            position //= 2
        return siblings

    @staticmethod
    def verify_path(leaf: bytes, index: int, siblings: Sequence[bytes],
                    root: bytes, digest_fn: Callable[[bytes], bytes]) -> bool:
        """Recompute the root from a leaf and its authentication path."""
        value = leaf
        position = index
        for sibling in siblings:
            if sibling:
                if position % 2:
                    value = digest_fn(sibling + value)
                else:
                    value = digest_fn(value + sibling)
            position //= 2
        return value == root


class SigningError(ValueError):
    """Raised when a message fails digest or signature verification."""


class NullSigner:
    """Attach a digest (if the suite has one) but no signature."""

    name = "none"

    def __init__(self, suite):
        self.suite = suite
        self.signatures_performed = 0

    def seal(self, messages: Sequence[Message]) -> None:
        """Fill each message's auth block in place."""
        for message in messages:
            digest = self.suite.digest(message.signed_region())
            message.auth = AuthBlock(digest=digest, scheme=SIG_NONE)


class PerMessageSigner:
    """One RSA signature per rekey message (the naive baseline)."""

    name = "per-message"

    def __init__(self, suite, private_key: rsa.RsaPrivateKey):
        if not suite.signs:
            raise ValueError("suite has no signature algorithm")
        self.suite = suite
        self.private_key = private_key
        self.signatures_performed = 0

    def seal(self, messages: Sequence[Message]) -> None:
        """Sign every message individually (the naive baseline)."""
        for message in messages:
            region = message.signed_region()
            digest = self.suite.digest(region)
            signature = self.suite.sign(self.private_key, region)
            self.signatures_performed += 1
            message.auth = AuthBlock(digest=digest, scheme=SIG_PER_MESSAGE,
                                     signature=signature)


class MerkleSigner:
    """One RSA signature for the whole batch of rekey messages (§4)."""

    name = "merkle"

    def __init__(self, suite, private_key: rsa.RsaPrivateKey):
        if not suite.signs:
            raise ValueError("suite has no signature algorithm")
        self.suite = suite
        self.private_key = private_key
        self.signatures_performed = 0

    def seal(self, messages: Sequence[Message]) -> None:
        """One signature over the batch's Merkle root; per-message certificates."""
        if not messages:
            return
        digests = [self.suite.digest(message.signed_region())
                   for message in messages]
        tree = MerkleTree(digests, self.suite.digest)
        signature = rsa.sign_digest(
            self.private_key, tree.root,
            _rsa_digest_name(self.suite))
        self.signatures_performed += 1
        for index, message in enumerate(messages):
            message.auth = AuthBlock(digest=digests[index], scheme=SIG_MERKLE,
                                     signature=signature,
                                     merkle_index=index,
                                     merkle_path=tree.path(index))


def _rsa_digest_name(suite) -> str:
    from ..crypto.suite import RSA_DIGEST_NAME
    return RSA_DIGEST_NAME[suite.digest_name]


def verify_message(suite, message: Message,
                   public_key: Optional[rsa.RsaPublicKey]) -> None:
    """Client-side check of a received message's auth block.

    Raises :class:`SigningError` if the digest mismatches, a signature is
    present but invalid, or a signature was expected (``public_key``
    given and suite signs) but absent.
    """
    auth = message.auth
    if auth is None:
        if suite.digest_name is not None:
            raise SigningError("missing auth block")
        return
    if suite.digest_name is not None:
        digest = suite.digest(message.signed_region())
        if digest != auth.digest:
            raise SigningError("message digest mismatch")
    expects_signature = public_key is not None and suite.signs
    if auth.scheme == SIG_NONE:
        if expects_signature:
            raise SigningError("expected a signature but message has none")
        return
    if public_key is None:
        raise SigningError("signed message but no server public key")
    if auth.scheme == SIG_PER_MESSAGE:
        try:
            suite.verify(public_key, message.signed_region(), auth.signature)
        except rsa.SignatureError as exc:
            raise SigningError(str(exc)) from None
    elif auth.scheme == SIG_MERKLE:
        # Recompute the root from this message's digest and the attached
        # sibling path, then check the signature over the root.
        value = auth.digest
        position = auth.merkle_index
        for sibling in auth.merkle_path:
            if sibling:
                if position % 2:
                    value = suite.digest(sibling + value)
                else:
                    value = suite.digest(value + sibling)
            position //= 2
        try:
            rsa.verify_digest(public_key, value, auth.signature,
                              _rsa_digest_name(suite))
        except rsa.SignatureError as exc:
            raise SigningError(str(exc)) from None
    else:
        raise SigningError(f"unknown signature scheme {auth.scheme}")

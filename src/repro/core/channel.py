"""Authenticated group data channel over the group key.

The paper focuses on key management and notes (§1, footnote 2) that
given a shared group key, confidentiality is immediate and "authenticity
and integrity can be provided ... using standard techniques".  This
module is those standard techniques: a member-to-group channel that
provides, per data frame,

* confidentiality  — CBC encryption under a key *derived* from the
  group key (never the group key itself, so rekey traffic and data
  traffic use independent keys);
* integrity + group authenticity — HMAC under a second derived key
  (proves the sender was a group member at this epoch; individual
  sender authenticity would need signatures, as §4 discusses for the
  server);
* replay protection — per-sender sequence numbers with a sliding
  acceptance window;
* epoch binding — frames name the group-key version they were sealed
  under; an old epoch's frames are rejected once the group rekeys, so
  departed members' frames die with their keys;
* optional *individual* sender authenticity — §4 notes that "it is
  possible for a user to masquerade as the server"; symmetrically, any
  member can masquerade as another under a shared MAC key.  Passing a
  per-sender RSA keypair (and registering peers' public keys) adds a
  signature over each frame, pinning the claimed sender identity.

Both the server and any member can run a channel; members feed it from
their :class:`~repro.core.client.GroupClient`.
"""

from __future__ import annotations

import struct
from typing import Callable, Dict, Optional, Tuple

from ..crypto import hmac as hmac_module
from ..crypto import modes
from .messages import MSG_DATA, EncryptedItem, Message, WireError

_FRAME = struct.Struct(">B")          # sender length
_SEQ = struct.Struct(">Q")

REPLAY_WINDOW = 64


class ChannelError(ValueError):
    """Raised when a frame fails authentication, replay or epoch checks."""


def derive_keys(suite, group_key: bytes) -> Tuple[bytes, bytes]:
    """Derive (encryption key, MAC key) from the group key.

    HMAC with the suite digest (SHA-1 when the suite carries no digest,
    so encryption-only suites still get channel authenticity).
    """
    digest_factory = suite.digest_factory
    if digest_factory is None:
        from ..crypto.sha1 import sha1
        digest_factory = sha1
    enc = hmac_module.new(group_key, b"keygraph-channel-encrypt",
                          digest_factory).digest()
    while len(enc) < suite.key_size:
        enc += hmac_module.new(group_key, enc, digest_factory).digest()
    mac = hmac_module.new(group_key, b"keygraph-channel-mac",
                          digest_factory).digest()
    return enc[:suite.key_size], mac


class ReplayWindow:
    """Sliding-window duplicate/replay detector for one sender."""

    def __init__(self, size: int = REPLAY_WINDOW):
        self.size = size
        self.highest = 0
        self._mask = 0

    def check_and_update(self, seq: int) -> None:
        """Accept ``seq`` exactly once; raise ChannelError otherwise."""
        if seq <= 0:
            raise ChannelError("sequence numbers start at 1")
        if seq > self.highest:
            shift = seq - self.highest
            self._mask = ((self._mask << shift) | 1) & ((1 << self.size) - 1)
            self.highest = seq
            return
        offset = self.highest - seq
        if offset >= self.size:
            raise ChannelError(f"frame {seq} is older than the replay window")
        if self._mask & (1 << offset):
            raise ChannelError(f"replayed frame {seq}")
        self._mask |= 1 << offset


class SecureGroupChannel:
    """Seal/open authenticated data frames under the current group key.

    ``key_source`` returns ``(root_node_id, root_version, group_key)``
    for the *current* epoch, or None when no group key is held.
    ``iv_source`` supplies fresh IVs (defaults to os.urandom).
    """

    def __init__(self, suite, sender_id: str,
                 key_source: Callable[[], Optional[Tuple[int, int, bytes]]],
                 iv_source: Optional[Callable[[], bytes]] = None,
                 accept_previous_epochs: int = 0,
                 signing_keypair=None):
        if not sender_id or len(sender_id.encode("utf-8")) > 255:
            raise ChannelError("sender id must be 1..255 UTF-8 bytes")
        self.suite = suite
        self.sender_id = sender_id
        self._key_source = key_source
        if iv_source is None:
            import os
            iv_source = lambda: os.urandom(suite.block_size)
        self._iv_source = iv_source
        self._send_seq = 0
        self._windows: Dict[str, ReplayWindow] = {}
        # Recent epochs kept for in-flight frames that raced a rekey.
        self.accept_previous_epochs = accept_previous_epochs
        self._epoch_cache: Dict[Tuple[int, int], bytes] = {}
        # Optional individual sender authenticity (RSA over the frame).
        self._signing_keypair = signing_keypair
        self._peer_keys: Dict[str, object] = {}
        self.require_sender_signatures = False

    def register_peer(self, sender_id: str, public_key) -> None:
        """Trust ``public_key`` to speak for ``sender_id``.

        Once any peer is registered, frames claiming a registered
        identity must carry a valid signature; set
        ``require_sender_signatures`` to insist on signatures from
        *every* sender.
        """
        self._peer_keys[sender_id] = public_key

    @classmethod
    def for_client(cls, client, **kwargs) -> "SecureGroupChannel":
        """Channel fed by a :class:`~repro.core.client.GroupClient`."""
        def source():
            if client.root_ref is None:
                return None
            key = client.group_key()
            if key is None:
                return None
            return (client.root_ref[0], client.root_ref[1], key)
        return cls(client.suite, client.user_id, source, **kwargs)

    @classmethod
    def for_server(cls, server, **kwargs) -> "SecureGroupChannel":
        """Channel fed by a :class:`~repro.core.server.GroupKeyServer`."""
        def source():
            if server.n_users == 0:
                return None
            node_id, version = server.group_key_ref()
            return (node_id, version, server.group_key())
        return cls(server.suite, "@server", source,
                   iv_source=server._new_iv, **kwargs)

    # -- sending -----------------------------------------------------------

    def seal(self, payload: bytes) -> bytes:
        """Produce an authenticated, encrypted frame for the group."""
        epoch = self._key_source()
        if epoch is None:
            raise ChannelError("no group key available to seal under")
        node_id, version, group_key = epoch
        self._remember_epoch(node_id, version, group_key)
        enc_key, mac_key = derive_keys(self.suite, group_key)
        self._send_seq += 1
        sender = self.sender_id.encode("utf-8")
        iv = self._iv_source()
        cipher = self.suite.new_cipher(enc_key)
        block = self.suite.block_size
        padded_len = -(-max(len(payload), 1) // block) * block
        ciphertext = modes.cbc_encrypt_nopad(
            cipher, payload.ljust(padded_len, b"\x00"), iv)
        item = EncryptedItem(node_id, version, iv, ciphertext, len(payload))
        body = (_FRAME.pack(len(sender)) + sender
                + _SEQ.pack(self._send_seq))
        message = Message(msg_type=MSG_DATA, root_node_id=node_id,
                          root_version=version, seq=self._send_seq,
                          items=[item], body=body)
        mac = hmac_module.new(mac_key, message.signed_region(),
                              self._mac_digest()).digest()
        from .messages import SIG_NONE, SIG_PER_MESSAGE, AuthBlock
        if self._signing_keypair is not None:
            # Individual sender authenticity: RSA over (MAC || region).
            from ..crypto import rsa as rsa_module
            digest = self._channel_digest(mac + message.signed_region())
            signature = rsa_module.sign_digest(
                self._signing_keypair, digest, self._rsa_algorithm())
            message.auth = AuthBlock(digest=mac, scheme=SIG_PER_MESSAGE,
                                     signature=signature)
        else:
            message.auth = AuthBlock(digest=mac, scheme=SIG_NONE)
        return message.encode()

    def _channel_digest(self, data: bytes) -> bytes:
        return self._mac_digest()(data).digest()

    def _rsa_algorithm(self) -> str:
        if self.suite.digest_name is None:
            return "sha1"
        from ..crypto.suite import RSA_DIGEST_NAME
        return RSA_DIGEST_NAME[self.suite.digest_name]

    def _mac_digest(self):
        factory = self.suite.digest_factory
        if factory is None:
            from ..crypto.sha1 import sha1
            factory = sha1
        return factory

    def _remember_epoch(self, node_id: int, version: int,
                        group_key: bytes) -> None:
        self._epoch_cache[(node_id, version)] = group_key
        # Trim to current + allowed previous epochs.
        while len(self._epoch_cache) > 1 + self.accept_previous_epochs:
            oldest = min(self._epoch_cache, key=lambda ref: ref[1])
            del self._epoch_cache[oldest]

    # -- receiving -----------------------------------------------------------

    def open(self, frame: bytes) -> Tuple[bytes, str, int]:
        """Verify and decrypt a frame; returns (payload, sender, seq)."""
        try:
            message = Message.decode(frame)
        except WireError as exc:
            raise ChannelError(f"malformed frame: {exc}") from None
        if message.msg_type != MSG_DATA or len(message.items) != 1:
            raise ChannelError("not a data frame")

        # Epoch check before anything else.
        epoch = self._key_source()
        if epoch is not None:
            self._remember_epoch(*epoch)
        ref = (message.root_node_id, message.root_version)
        group_key = self._epoch_cache.get(ref)
        if group_key is None:
            raise ChannelError(
                f"frame from unknown epoch {ref} (stale or future key)")
        enc_key, mac_key = derive_keys(self.suite, group_key)

        # Authenticity: constant-time MAC comparison.
        expected = hmac_module.new(mac_key, message.signed_region(),
                                   self._mac_digest()).digest()
        if message.auth is None or not hmac_module.compare_digest(
                message.auth.digest, expected):
            raise ChannelError("frame MAC verification failed")

        # Parse sender/seq and enforce replay protection.
        body = message.body
        if len(body) < 1:
            raise ChannelError("truncated frame body")
        (sender_len,) = _FRAME.unpack_from(body, 0)
        if len(body) < 1 + sender_len + _SEQ.size:
            raise ChannelError("truncated frame body")
        sender = body[1:1 + sender_len].decode("utf-8", errors="replace")
        (seq,) = _SEQ.unpack_from(body, 1 + sender_len)

        # Individual sender authenticity (when keys are pinned).
        peer_key = self._peer_keys.get(sender)
        if peer_key is not None or self.require_sender_signatures:
            from .messages import SIG_PER_MESSAGE
            if peer_key is None:
                raise ChannelError(
                    f"no pinned public key for sender {sender!r}")
            if message.auth.scheme != SIG_PER_MESSAGE                     or not message.auth.signature:
                raise ChannelError(
                    f"frame from {sender!r} lacks a sender signature")
            from ..crypto import rsa as rsa_module
            digest = self._channel_digest(
                message.auth.digest + message.signed_region())
            try:
                rsa_module.verify_digest(peer_key, digest,
                                         message.auth.signature,
                                         self._rsa_algorithm())
            except rsa_module.SignatureError:
                raise ChannelError(
                    f"sender signature for {sender!r} does not verify"
                ) from None

        window = self._windows.setdefault(sender, ReplayWindow())
        window.check_and_update(seq)

        item = message.items[0]
        cipher = self.suite.new_cipher(enc_key)
        padded = modes.cbc_decrypt_nopad(cipher, item.ciphertext, item.iv)
        if item.plaintext_len > len(padded):
            raise ChannelError("corrupt frame length")
        return padded[:item.plaintext_len], sender, seq

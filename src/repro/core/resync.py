"""Resync reply construction/parsing (shared by every server flavor).

The paper assumes "a reliable message delivery system, for both unicast
and multicast" (§5); this module is half of the mechanism that relaxes
it.  A desynchronized member sends ``MSG_RESYNC_REQUEST`` (body: its
UTF-8 user id) and the server answers with one ``MSG_RESYNC_REPLY``
unicast:

* body — one status byte (:data:`RESYNC_OK` / :data:`RESYNC_NOT_MEMBER`)
  followed by the member's 4-byte leaf node id;
* items — for ``RESYNC_OK``, exactly one :class:`~repro.core.messages.
  EncryptedItem` holding every key record on the member's current path
  (leaf parent up to the group key), encrypted under the member's
  *individual* key and referenced by the :data:`~repro.core.messages.
  INDIVIDUAL_KEY` sentinel — decryptable no matter how stale the
  member's group state is;
* header — the current group-key ``(node id, version)`` reference, which
  the client adopts as authoritative.

The reply is signed like any other server message, so a forged resync
cannot inject keys.  IVs come from a *dedicated* material source (same
seed, distinct personalization) so serving resyncs never perturbs the
main rekey key/IV stream — a chaos run's server-side key state stays
byte-identical to a fault-free control run's.
"""

from __future__ import annotations

import struct
import time
from typing import Sequence, Tuple

from .messages import (INDIVIDUAL_KEY, MSG_RESYNC_REPLY, Destination,
                       KeyRecord, Message, OutboundMessage, WireError,
                       encrypt_records)

#: Resync reply status codes (first body byte).
RESYNC_OK = 0
RESYNC_NOT_MEMBER = 1

_BODY = struct.Struct(">BI")


def encode_resync_body(status: int, leaf_node_id: int) -> bytes:
    """Pack the reply body: status byte + leaf node id."""
    return _BODY.pack(status, leaf_node_id & 0xFFFFFFFF)


def parse_resync_body(body: bytes) -> Tuple[int, int]:
    """Unpack a reply body into ``(status, leaf node id)``."""
    try:
        return _BODY.unpack_from(body, 0)
    except struct.error as exc:
        raise WireError(f"truncated resync body: {exc}") from None


def build_resync_reply(suite, signer, sequencer, *, group_id: int,
                       user_id: str, status: int, leaf_node_id: int,
                       records: Sequence[KeyRecord] = (),
                       root_ref: Tuple[int, int] = (0, 0),
                       individual_key: bytes = b"",
                       iv: bytes = b"") -> OutboundMessage:
    """Assemble and sign one resync reply unicast for ``user_id``."""
    items = []
    if status == RESYNC_OK and records:
        items.append(encrypt_records(suite, individual_key, iv, records,
                                     INDIVIDUAL_KEY, 0))
    message = Message(
        msg_type=MSG_RESYNC_REPLY,
        group_id=group_id,
        seq=sequencer.next(),
        timestamp_us=time.time_ns() // 1000,
        root_node_id=root_ref[0],
        root_version=root_ref[1],
        items=items,
        body=encode_resync_body(status, leaf_node_id),
    )
    signer.seal([message])
    return OutboundMessage(Destination.to_user(user_id), message,
                           (user_id,), message.encode())

"""Wire format for protocol and rekey messages.

The paper notes that real rekey messages carry "subgroup labels for new
keys, server digital signature, message integrity check, timestamp, etc."
This module defines that format as a compact binary encoding:

``RekeyMessage``
    header  : magic, version, type, strategy, flags, group id, sequence
              number, timestamp, current group-key (root) reference
    items   : each an :class:`EncryptedItem` — (encrypting-key reference,
              IV, ciphertext).  The plaintext is one or more
              :class:`KeyRecord` entries (node id, version, key bytes),
              zero-padded to the cipher block with an explicit length.
    auth    : optional message digest, optional signature block (either a
              per-message RSA signature or a Merkle certificate, §4).

Control messages (join/leave requests and acks, application data) share
the same header so one datagram parser handles everything.

Encrypting-key references name a key-tree node id + version.  The
sentinel :data:`INDIVIDUAL_KEY` means "the receiver's individual key"
and is used on unicast messages to a requesting user whose leaf id the
user may not know yet.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

MAGIC = 0x4B47  # "KG"
WIRE_VERSION = 1

# Message types.
MSG_JOIN_REQUEST = 1
MSG_JOIN_ACK = 2
MSG_JOIN_DENIED = 3
MSG_LEAVE_REQUEST = 4
MSG_LEAVE_ACK = 5
MSG_REKEY = 6
MSG_DATA = 7
MSG_LEAVE_DENIED = 8
# Telemetry scrape (out of band for the protocol: the request body is
# empty, the response body is a repro-metrics/1 JSON document).
MSG_STATS_REQUEST = 9
MSG_STATS_RESPONSE = 10
# Recovery protocol (relaxes the paper's §5 reliable-delivery
# assumption).  A desynchronized member asks for its current path keys
# (request body: UTF-8 user id); the server unicasts them in one item
# encrypted under the member's individual key (reply body: status byte
# + leaf node id).  Heartbeats carry the member's current group-key view
# in the header root reference so the server can detect staleness.
MSG_RESYNC_REQUEST = 11
MSG_RESYNC_REPLY = 12
MSG_HEARTBEAT = 13
# Admission control (async serving layer): the server is saturated and
# shed this request without processing it.  The client may retry after
# backing off; no group state changed.
MSG_BUSY = 14
# Subgroup multicast ("subcast", repro.subcast): one payload sealed to
# an arbitrary member subset via a key cover (paper §2.1).  The first
# item is the payload ciphertext under a fresh message key, referenced
# by the SUBCAST_MESSAGE_KEY sentinel; every further item seals one
# copy of that message key under one cover key, so exactly the covered
# members can open the payload.  The request body is the
# repro.subcast.wire encoding (sender, targets, payload).
MSG_SUBCAST = 15
MSG_SUBCAST_REQUEST = 16

# Rekeying strategies (wire codes).
STRATEGY_NONE = 0
STRATEGY_USER_ORIENTED = 1
STRATEGY_KEY_ORIENTED = 2
STRATEGY_GROUP_ORIENTED = 3
STRATEGY_STAR = 4
STRATEGY_HYBRID = 5

# Signature schemes in the auth block.
SIG_NONE = 0
SIG_PER_MESSAGE = 1
SIG_MERKLE = 2

# Sentinel encrypting-key reference: the receiver's individual key.
INDIVIDUAL_KEY = 0xFFFFFFFF
# Sentinel node id for a subcast's ephemeral message key; the version
# field carries the subcast sequence number, so a key record named
# (SUBCAST_MESSAGE_KEY, seq) pairs with the payload item referencing
# the same (id, seq).  Tree node ids are allocated monotonically from
# 0 (cluster root layers from 0xF0000000) and never reach either
# sentinel in practice.
SUBCAST_MESSAGE_KEY = 0xFFFFFFFE

_HEADER = struct.Struct(">HBBBBIQQII")  # 34 bytes
_ITEM_FIXED = struct.Struct(">IIH")
_RECORD_FIXED = struct.Struct(">II")


class WireError(ValueError):
    """Raised when decoding malformed bytes."""


@dataclass(frozen=True)
class KeyRecord:
    """A (node id, version, key bytes) triple carried inside a ciphertext."""

    node_id: int
    version: int
    key: bytes

    def encode(self) -> bytes:
        """Fixed-size binary encoding (id, version, key bytes)."""
        return _RECORD_FIXED.pack(self.node_id, self.version) + self.key


def decode_key_records(plaintext: bytes, key_size: int) -> List[KeyRecord]:
    """Parse the decrypted payload of an item into key records."""
    record_size = _RECORD_FIXED.size + key_size
    if len(plaintext) % record_size:
        raise WireError("payload is not a whole number of key records")
    records = []
    for offset in range(0, len(plaintext), record_size):
        node_id, version = _RECORD_FIXED.unpack_from(plaintext, offset)
        key = plaintext[offset + _RECORD_FIXED.size:offset + record_size]
        records.append(KeyRecord(node_id, version, key))
    return records


@dataclass(frozen=True)
class EncryptedItem:
    """One encrypted unit of a rekey message.

    ``enc_node_id``/``enc_version`` reference the key the payload is
    encrypted under; ``plaintext_len`` strips the zero padding after
    decryption.
    """

    enc_node_id: int
    enc_version: int
    iv: bytes
    ciphertext: bytes
    plaintext_len: int

    def encode(self) -> bytes:
        """Binary encoding: refs, lengths, IV, ciphertext."""
        return b"".join((
            _ITEM_FIXED.pack(self.enc_node_id, self.enc_version,
                             self.plaintext_len),
            struct.pack(">BH", len(self.iv), len(self.ciphertext)),
            self.iv,
            self.ciphertext,
        ))

    @classmethod
    def decode(cls, data: bytes, offset: int) -> Tuple["EncryptedItem", int]:
        """Parse one item at ``offset``; returns (item, next offset)."""
        try:
            enc_node_id, enc_version, plaintext_len = _ITEM_FIXED.unpack_from(
                data, offset)
            offset += _ITEM_FIXED.size
            iv_len, ct_len = struct.unpack_from(">BH", data, offset)
            offset += 3
            iv = data[offset:offset + iv_len]
            offset += iv_len
            ciphertext = data[offset:offset + ct_len]
            offset += ct_len
        except struct.error as exc:
            raise WireError(f"truncated item: {exc}") from None
        if len(iv) != iv_len or len(ciphertext) != ct_len:
            raise WireError("truncated item body")
        return cls(enc_node_id, enc_version, iv, ciphertext, plaintext_len), offset


def padded_records_plaintext(suite, records: Sequence[KeyRecord]):
    """Zero-padded item plaintext; returns ``(padded, plaintext_len)``.

    Zero padding with explicit length keeps single-key items to exactly
    two cipher blocks (matching the paper's compact rekey messages).
    Shared by the scalar path below and the batch encrypt stage
    (:meth:`repro.core.strategies.base.RekeyContext.materialize`).
    """
    plaintext = b"".join(record.encode() for record in records)
    block = suite.block_size
    padded_len = -(-len(plaintext) // block) * block
    return plaintext.ljust(padded_len, b"\x00"), len(plaintext)


def encrypt_records(suite, key: bytes, iv: bytes,
                    records: Sequence[KeyRecord],
                    enc_node_id: int, enc_version: int) -> EncryptedItem:
    """Encrypt key records under ``key`` into an :class:`EncryptedItem`."""
    padded, plaintext_len = padded_records_plaintext(suite, records)
    cipher = suite.new_cipher(key)
    from ..crypto import modes
    ciphertext = modes.cbc_encrypt_nopad(cipher, padded, iv)
    return EncryptedItem(enc_node_id, enc_version, iv, ciphertext,
                         plaintext_len)


def decrypt_records(suite, key: bytes, item: EncryptedItem) -> List[KeyRecord]:
    """Decrypt an item back into key records."""
    from ..crypto import modes
    cipher = suite.new_cipher(key)
    padded = modes.cbc_decrypt_nopad(cipher, item.ciphertext, item.iv)
    if item.plaintext_len > len(padded):
        raise WireError("plaintext length exceeds ciphertext capacity")
    return decode_key_records(padded[:item.plaintext_len], suite.key_size)


@dataclass
class AuthBlock:
    """Integrity/authenticity trailer of a message.

    ``digest`` covers the message bytes before the trailer.  The
    signature is either directly over the digest (``SIG_PER_MESSAGE``) or
    over the root of a Merkle tree of digests (``SIG_MERKLE``), in which
    case ``merkle_index``/``merkle_path`` authenticate this message's
    digest against the signed root (paper §4).
    """

    digest: bytes = b""
    scheme: int = SIG_NONE
    signature: bytes = b""
    merkle_index: int = 0
    merkle_path: List[bytes] = field(default_factory=list)

    def encode(self) -> bytes:
        """Binary trailer encoding (digest, scheme, signature, path)."""
        parts = [struct.pack(">B", len(self.digest)), self.digest,
                 struct.pack(">BH", self.scheme, len(self.signature)),
                 self.signature]
        if self.scheme == SIG_MERKLE:
            parts.append(struct.pack(">IB", self.merkle_index,
                                     len(self.merkle_path)))
            for sibling in self.merkle_path:
                parts.append(struct.pack(">B", len(sibling)))
                parts.append(sibling)
        return b"".join(parts)

    @classmethod
    def decode(cls, data: bytes, offset: int) -> Tuple["AuthBlock", int]:
        """Parse the trailer at ``offset``; returns (block, next offset)."""
        try:
            (digest_len,) = struct.unpack_from(">B", data, offset)
            offset += 1
            digest = data[offset:offset + digest_len]
            offset += digest_len
            scheme, sig_len = struct.unpack_from(">BH", data, offset)
            offset += 3
            signature = data[offset:offset + sig_len]
            offset += sig_len
            merkle_index = 0
            merkle_path: List[bytes] = []
            if scheme == SIG_MERKLE:
                merkle_index, path_len = struct.unpack_from(">IB", data, offset)
                offset += 5
                for _ in range(path_len):
                    (sibling_len,) = struct.unpack_from(">B", data, offset)
                    offset += 1
                    merkle_path.append(data[offset:offset + sibling_len])
                    offset += sibling_len
        except struct.error as exc:
            raise WireError(f"truncated auth block: {exc}") from None
        if len(digest) != digest_len or len(signature) != sig_len:
            raise WireError("truncated auth block body")
        return cls(digest, scheme, signature, merkle_index, merkle_path), offset


@dataclass
class Message:
    """A parsed protocol message.

    ``body`` is type-specific opaque bytes for control/data messages;
    rekey messages carry ``items`` instead.
    """

    msg_type: int
    group_id: int = 0
    strategy: int = STRATEGY_NONE
    flags: int = 0
    seq: int = 0
    timestamp_us: int = 0
    root_node_id: int = 0
    root_version: int = 0
    items: List[EncryptedItem] = field(default_factory=list)
    body: bytes = b""
    auth: Optional[AuthBlock] = None

    # -- encoding ---------------------------------------------------------

    def signed_region(self) -> bytes:
        """The bytes covered by the digest/signature (all but the trailer)."""
        parts = [_HEADER.pack(MAGIC, WIRE_VERSION, self.msg_type,
                              self.strategy, self.flags, self.group_id,
                              self.seq, self.timestamp_us,
                              self.root_node_id, self.root_version)]
        parts.append(struct.pack(">H", len(self.items)))
        for item in self.items:
            parts.append(item.encode())
        parts.append(struct.pack(">I", len(self.body)))
        parts.append(self.body)
        return b"".join(parts)

    def encode(self) -> bytes:
        """Full wire encoding: signed region plus auth trailer."""
        auth = self.auth if self.auth is not None else AuthBlock()
        return self.signed_region() + auth.encode()

    @classmethod
    def decode(cls, data: bytes) -> "Message":
        """Parse wire bytes; raises WireError on malformed input."""
        try:
            (magic, wire_version, msg_type, strategy, flags, group_id, seq,
             timestamp_us, root_node_id, root_version) = _HEADER.unpack_from(
                 data, 0)
        except struct.error as exc:
            raise WireError(f"truncated header: {exc}") from None
        if magic != MAGIC:
            raise WireError(f"bad magic 0x{magic:04x}")
        if wire_version != WIRE_VERSION:
            raise WireError(f"unsupported wire version {wire_version}")
        offset = _HEADER.size
        try:
            (n_items,) = struct.unpack_from(">H", data, offset)
        except struct.error as exc:
            raise WireError(f"truncated item count: {exc}") from None
        offset += 2
        items = []
        for _ in range(n_items):
            item, offset = EncryptedItem.decode(data, offset)
            items.append(item)
        try:
            (body_len,) = struct.unpack_from(">I", data, offset)
        except struct.error as exc:
            raise WireError(f"truncated body length: {exc}") from None
        offset += 4
        body = data[offset:offset + body_len]
        if len(body) != body_len:
            raise WireError("truncated body")
        offset += body_len
        auth, offset = AuthBlock.decode(data, offset)
        return cls(msg_type=msg_type, group_id=group_id, strategy=strategy,
                   flags=flags, seq=seq, timestamp_us=timestamp_us,
                   root_node_id=root_node_id, root_version=root_version,
                   items=items, body=body, auth=auth)


# -- destinations -------------------------------------------------------------

DEST_ALL = "all"          # multicast to the whole group
DEST_SUBGROUP = "subgroup"  # multicast to userset(node_id)
DEST_USER = "user"          # unicast
DEST_USERS = "users"        # explicit user list (multi-unicast)


@dataclass
class Destination:
    """Where an outbound message goes (resolved by the transport layer)."""

    kind: str
    node_id: Optional[int] = None
    user_id: Optional[str] = None
    user_ids: Tuple[str, ...] = ()

    @classmethod
    def to_all(cls) -> "Destination":
        """Multicast to the whole group."""
        return cls(DEST_ALL)

    @classmethod
    def to_subgroup(cls, node_id: int) -> "Destination":
        """Multicast to the users holding tree node ``node_id``."""
        return cls(DEST_SUBGROUP, node_id=node_id)

    @classmethod
    def to_user(cls, user_id: str) -> "Destination":
        """Unicast to one user."""
        return cls(DEST_USER, user_id=user_id)

    @classmethod
    def to_users(cls, user_ids: Sequence[str]) -> "Destination":
        """Multi-unicast to an explicit user list."""
        return cls(DEST_USERS, user_ids=tuple(user_ids))


@dataclass
class OutboundMessage:
    """A message plus its destination and resolved receiver list.

    ``receivers`` is filled in by the server (which knows usersets) so
    transports and the client simulator need no tree access.
    """

    destination: Destination
    message: Message
    receivers: Tuple[str, ...] = ()
    encoded: bytes = b""

    @property
    def size(self) -> int:
        """Encoded size in bytes."""
        return len(self.encoded)

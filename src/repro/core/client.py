"""Client layer: processes rekey messages and tracks held keys (paper §5).

A client knows its individual key and the keys on its path to the root
(at most ``h`` of them).  On each rekey message it verifies the digest /
signature, then decrypts every item whose encrypting-key reference
matches a key it holds, installing the key records found inside.  Items
may arrive in any order (group-oriented messages interleave levels), so
decryption iterates to a fixed point.

The per-message statistics the client layer gathers (bytes received,
decryptions performed, keys changed) are what Table 6 and Figure 12
report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from ..crypto.modes import PaddingError
from ..observability import Stopwatch
from .messages import (INDIVIDUAL_KEY, MSG_DATA, MSG_JOIN_ACK,
                       MSG_LEAVE_ACK, MSG_REKEY, MSG_RESYNC_REPLY,
                       MSG_SUBCAST, SUBCAST_MESSAGE_KEY, Message,
                       WireError, decrypt_records)
from .resync import RESYNC_NOT_MEMBER, RESYNC_OK, parse_resync_body
from .signing import SigningError, verify_message


class ClientError(ValueError):
    """Raised on protocol violations observed by the client."""


class StaleKeyError(ClientError):
    """Raised when traffic arrives under a group key we do not hold.

    The failed decrypt is the client's §5 desync signal: it marks the
    client desynchronized so the member layer can request a resync.
    """


class SubcastNotAddressed(ClientError):
    """Raised when no held key opens any of a subcast's cover items.

    Unlike :class:`StaleKeyError` this is *not* a desync signal: a
    member outside the target subset receives the multicast (transports
    dedup per reply path) and correctly cannot decrypt it — that is the
    security property, not a protocol fault.
    """


@dataclass
class ClientStats:
    """Counters a client accumulates while processing messages."""

    rekey_messages: int = 0
    rekey_bytes: int = 0
    decryptions: int = 0
    keys_changed: int = 0
    verify_failures: int = 0
    processing_seconds: float = 0.0
    desyncs_detected: int = 0
    resyncs: int = 0
    subcasts_opened: int = 0

    def snapshot(self) -> "ClientStats":
        """An independent copy of the counters."""
        return ClientStats(self.rekey_messages, self.rekey_bytes,
                           self.decryptions, self.keys_changed,
                           self.verify_failures, self.processing_seconds,
                           self.desyncs_detected, self.resyncs,
                           self.subcasts_opened)


class GroupClient:
    """A group member's key state machine."""

    def __init__(self, user_id: str, suite, server_public_key=None,
                 verify: bool = True):
        self.user_id = user_id
        self.suite = suite
        self.server_public_key = server_public_key
        self.verify = verify
        self.individual_key: Optional[bytes] = None
        # The id of this user's individual-key leaf node, learned from
        # the join ack.  Rekey items addressed to us after a leaf split
        # reference the individual key by this id.
        self.leaf_node_id: Optional[int] = None
        # node_id -> (version, key bytes)
        self.keys: Dict[int, Tuple[int, bytes]] = {}
        self.root_ref: Optional[Tuple[int, int]] = None
        # Set when gap detection notices we can no longer follow the
        # rekey stream (an item referencing a key version we never saw,
        # or a data message under an unheld group key).  Cleared by a
        # successful resync or by a message that restores the group key.
        self.desynced = False
        # Set by a RESYNC_NOT_MEMBER reply: the server evicted us.
        self.evicted = False
        self.stats = ClientStats()

    # -- key state ------------------------------------------------------------

    def set_individual_key(self, key: bytes) -> None:
        """Install the individual key (the paper's authentication result)."""
        if len(key) != self.suite.key_size:
            raise ClientError(
                f"individual key must be {self.suite.key_size} bytes")
        self.individual_key = key

    def holds(self, node_id: int, version: int) -> bool:
        """True iff this exact (node id, version) key is held."""
        held = self.keys.get(node_id)
        return held is not None and held[0] == version

    def group_key(self) -> Optional[bytes]:
        """The current group key, or None if not yet learned."""
        if self.root_ref is None:
            return None
        node_id, version = self.root_ref
        held = self.keys.get(node_id)
        if held is None or held[0] != version:
            return None
        return held[1]

    def key_count(self) -> int:
        """Number of distinct keys held (individual key included)."""
        return len(self.keys) + (1 if self.individual_key else 0)

    def forget_all(self) -> None:
        """Drop all group state (used after leaving)."""
        self.keys.clear()
        self.root_ref = None
        self.desynced = False

    # -- message processing ---------------------------------------------------

    def set_leaf(self, node_id: int) -> None:
        """Record the tree node id of our individual-key leaf."""
        self.leaf_node_id = node_id

    def process_control(self, data: Union[bytes, Message]) -> Message:
        """Handle a join/leave ack; returns the parsed message."""
        message = data if isinstance(data, Message) else Message.decode(data)
        if self.verify:
            verify_message(self.suite, message, self.server_public_key)
        if message.msg_type == MSG_JOIN_ACK and len(message.body) >= 4:
            self.set_leaf(int.from_bytes(message.body[:4], "big"))
        elif message.msg_type == MSG_LEAVE_ACK:
            self.forget_all()
        return message

    def _lookup_encrypting_key(self, item) -> Optional[bytes]:
        if item.enc_node_id == INDIVIDUAL_KEY or (
                self.leaf_node_id is not None
                and item.enc_node_id == self.leaf_node_id):
            return self.individual_key
        held = self.keys.get(item.enc_node_id)
        if held is not None and held[0] == item.enc_version:
            return held[1]
        return None

    def process_message(self, data: Union[bytes, Message]) -> int:
        """Handle one rekey message; returns the number of keys changed.

        Raises :class:`SigningError` when verification is enabled and the
        message fails its digest or signature check.
        """
        watch = Stopwatch()
        if isinstance(data, Message):
            message = data
            size = len(data.encode())
        else:
            message = Message.decode(data)
            size = len(data)
        if message.msg_type != MSG_REKEY:
            raise ClientError(f"not a rekey message (type {message.msg_type})")
        if self.verify:
            try:
                verify_message(self.suite, message, self.server_public_key)
            except SigningError:
                self.stats.verify_failures += 1
                raise
        self.stats.rekey_messages += 1
        self.stats.rekey_bytes += size

        changed, leftovers = self._install_items(message.items)
        self._adopt_root(message.root_node_id, message.root_version)
        self.stats.keys_changed += changed
        self.stats.processing_seconds += watch.elapsed()
        # Gap detection (the §5 reliable-delivery assumption, relaxed):
        # an undecryptable leftover referencing a *newer* version of a
        # key we hold means we missed the rekey that produced it.
        if any(self._references_missed_version(item) for item in leftovers):
            self._mark_desync()
        elif self.root_ref is not None and self.group_key() is None:
            self._mark_desync()
        elif self.desynced and self.group_key() is not None:
            self.desynced = False
        return changed

    def _adopt_root(self, node_id: int, version: int) -> None:
        """Adopt a message's group-key reference unless it is stale.

        Same root node: only move the version forward (a delayed or
        replayed message must not roll the group-key pointer back).  A
        different root node (tree restructured, or a cluster's root
        layer vs shard stream) is adopted as-is — cross-node staleness
        cannot be ordered locally and is repaired by resync instead.
        """
        if (self.root_ref is not None and node_id == self.root_ref[0]
                and version < self.root_ref[1]):
            return
        self.root_ref = (node_id, version)

    def _references_missed_version(self, item) -> bool:
        held = self.keys.get(item.enc_node_id)
        return held is not None and item.enc_version > held[0]

    def _mark_desync(self) -> None:
        if not self.desynced:
            self.desynced = True
            self.stats.desyncs_detected += 1

    def _install_items(self, items) -> Tuple[int, list]:
        """Decrypt what we can, iterating to a fixed point.

        Returns ``(keys changed, undecryptable leftovers)``.  Installs
        are version-gated: a record older than the held version is a
        stale duplicate and must not downgrade the key map.
        """
        pending = list(items)
        changed = 0
        progress = True
        while pending and progress:
            progress = False
            remaining = []
            for item in pending:
                key = self._lookup_encrypting_key(item)
                if key is None:
                    remaining.append(item)
                    continue
                try:
                    records = decrypt_records(self.suite, key, item)
                except (PaddingError, WireError, ValueError) as exc:
                    raise ClientError(f"undecryptable item: {exc}") from None
                self.stats.decryptions += 1
                for record in records:
                    current = self.keys.get(record.node_id)
                    if current is not None and record.version < current[0]:
                        continue  # stale duplicate: never downgrade
                    if current != (record.version, record.key):
                        self.keys[record.node_id] = (record.version, record.key)
                        changed += 1
                progress = True
            pending = remaining
        return changed, pending

    # -- resynchronization ----------------------------------------------------

    def process_resync(self, data: Union[bytes, Message]) -> int:
        """Handle a ``MSG_RESYNC_REPLY``; returns the resync status.

        An ``RESYNC_OK`` reply carries our full current key path in one
        item under our individual key; its header root reference is
        authoritative (it names the group key as of reply construction).
        ``RESYNC_NOT_MEMBER`` means the server no longer considers us a
        member (e.g. evicted after heartbeat silence): all group state
        is dropped and :attr:`evicted` is set so the member layer can
        decide whether to rejoin.
        """
        message = data if isinstance(data, Message) else Message.decode(data)
        if message.msg_type != MSG_RESYNC_REPLY:
            raise ClientError(
                f"not a resync reply (type {message.msg_type})")
        if self.verify:
            try:
                verify_message(self.suite, message, self.server_public_key)
            except SigningError:
                self.stats.verify_failures += 1
                raise
        status, leaf_node_id = parse_resync_body(message.body)
        if status == RESYNC_NOT_MEMBER:
            self.forget_all()
            self.evicted = True
            return status
        if status != RESYNC_OK:
            raise ClientError(f"unknown resync status {status}")
        if leaf_node_id != INDIVIDUAL_KEY:
            self.set_leaf(leaf_node_id)
        changed, leftovers = self._install_items(message.items)
        if leftovers:
            raise ClientError("resync reply item not decryptable under "
                              "the individual key")
        self._adopt_root(message.root_node_id, message.root_version)
        self.stats.keys_changed += changed
        self.stats.resyncs += 1
        if self.group_key() is not None:
            self.desynced = False
        return status

    # -- application data -------------------------------------------------------

    def open_data(self, data: Union[bytes, Message]) -> bytes:
        """Decrypt an application data message sent under the group key."""
        message = data if isinstance(data, Message) else Message.decode(data)
        if message.msg_type != MSG_DATA:
            raise ClientError("not a data message")
        if self.verify:
            verify_message(self.suite, message, self.server_public_key)
        if not self.holds(message.root_node_id, message.root_version):
            self._mark_desync()
            raise StaleKeyError(
                "data message under a group key we do not hold")
        if len(message.items) != 1:
            raise ClientError("data message must carry exactly one item")
        item = message.items[0]
        group_key = self.keys[message.root_node_id][1]
        from ..crypto import modes
        cipher = self.suite.new_cipher(group_key)
        padded = modes.cbc_decrypt_nopad(cipher, item.ciphertext, item.iv)
        if item.plaintext_len > len(padded):
            raise ClientError("corrupt data message length")
        return padded[:item.plaintext_len]

    # -- subgroup multicast ------------------------------------------------------

    def open_subcast(self, data: Union[bytes, Message]) -> bytes:
        """Decrypt a ``MSG_SUBCAST`` addressed to a subset we are in.

        The first item is the payload under the subcast's ephemeral
        message key; each further item seals that message key under one
        cover key.  We peel the one cover item a held (node id,
        version) key opens — covers are disjoint subtrees, so a target
        member holds exactly one — then open the payload.  Raises
        :class:`SubcastNotAddressed` when no held key matches: we are
        outside the target subset, or our key material is stale
        (evicted members never decrypt post-eviction subcasts — the
        cover references post-rekey key versions).
        """
        message = data if isinstance(data, Message) else Message.decode(data)
        if message.msg_type != MSG_SUBCAST:
            raise ClientError(
                f"not a subcast message (type {message.msg_type})")
        if self.verify:
            try:
                verify_message(self.suite, message, self.server_public_key)
            except SigningError:
                self.stats.verify_failures += 1
                raise
        if not message.items:
            raise ClientError("subcast carries no items")
        payload_item = message.items[0]
        if payload_item.enc_node_id != SUBCAST_MESSAGE_KEY:
            raise ClientError("subcast payload item missing")
        subcast_id = payload_item.enc_version
        message_key: Optional[bytes] = None
        for item in message.items[1:]:
            key = self._lookup_encrypting_key(item)
            if key is None:
                continue
            try:
                records = decrypt_records(self.suite, key, item)
            except (PaddingError, WireError, ValueError) as exc:
                raise ClientError(f"undecryptable cover item: {exc}") \
                    from None
            self.stats.decryptions += 1
            for record in records:
                if (record.node_id == SUBCAST_MESSAGE_KEY
                        and record.version == subcast_id):
                    message_key = record.key
            if message_key is not None:
                break
        if message_key is None:
            raise SubcastNotAddressed(
                "no held key opens any cover item of this subcast")
        from ..crypto import modes
        cipher = self.suite.new_cipher(message_key)
        padded = modes.cbc_decrypt_nopad(cipher, payload_item.ciphertext,
                                         payload_item.iv)
        if payload_item.plaintext_len > len(padded):
            raise ClientError("corrupt subcast payload length")
        self.stats.decryptions += 1
        self.stats.subcasts_opened += 1
        return padded[:payload_item.plaintext_len]

"""Server state snapshot / restore (paper §6, "Trust" and "Reliability").

The paper's architecture has a single trusted key server and notes that
"the key server may be replicated for reliability/performance
enhancement".  Replication needs the server's state to be serializable:
the key graph with all key material, the signing keypair, the sequence
counter, and pending registered individual keys.

``snapshot`` produces a self-contained JSON document; ``restore`` builds
a warm standby that continues exactly where the primary stopped (same
keys, same node ids, same sequence numbers), so clients never notice the
failover.  The snapshot contains every group secret — a real deployment
encrypts it at rest; :func:`snapshot_encrypted` does so under a
storage key using the suite's own cipher.
"""

from __future__ import annotations

import json
from typing import Optional

from ..crypto import modes
from ..crypto.rsa import RsaPrivateKey
from ..crypto.suite import CipherSuite
from ..keygraph.backend import make_tree
from ..keygraph.journal import ReplayKeySource, TreeJournal
from .server import GroupKeyServer, ServerConfig

FORMAT_VERSION = 1


class PersistenceError(ValueError):
    """Raised on malformed or incompatible snapshots."""


def _tree_to_dict(tree) -> dict:
    nodes = []
    for node in tree.nodes():
        nodes.append({
            "id": node.node_id,
            "version": node.version,
            "key": node.key.hex(),
            "user": node.user_id,
            "children": [child.node_id for child in node.children],
        })
    return {"degree": tree.degree, "next_id": tree._next_id,
            "root": tree.root.node_id if tree.root else None,
            "nodes": nodes}


def _tree_from_dict(data: dict, keygen, backend: str = "object"):
    """Rebuild a tree on the named backend from snapshot entries."""
    tree = make_tree(backend, data["degree"], keygen)
    tree.load_nodes(data["nodes"], data["root"], data["next_id"])
    return tree


def snapshot(server: GroupKeyServer, reseed: bytes = b"failover") -> bytes:
    """Serialize the full server state.

    ``reseed`` is mixed into the standby's DRBG so primary and standby
    diverge in *future* key material (running both from an identical
    stream would be a key-reuse hazard if they ever both serve).
    """
    config = server.config
    doc = {
        "format": FORMAT_VERSION,
        "config": {
            "group_id": config.group_id,
            "graph": config.graph,
            "degree": config.degree,
            "strategy": config.strategy,
            "cipher": config.suite.cipher_name,
            "digest": config.suite.digest_name,
            "signature_bits": config.suite.signature_bits,
            "signing": config.signing,
            "access_list": (sorted(config.access_list)
                            if config.access_list is not None else None),
            "backend": config.backend,
        },
        "seq": server._seq,
        "reseed": reseed.hex(),
        "registered_keys": {user: key.hex() for user, key
                            in server._registered_keys.items()},
    }
    if server.signing_keypair is not None:
        keypair = server.signing_keypair
        doc["signing_keypair"] = {"n": keypair.n, "e": keypair.e,
                                  "d": keypair.d, "p": keypair.p,
                                  "q": keypair.q}
    if server.tree is not None:
        doc["tree"] = _tree_to_dict(server.tree)
    else:
        doc["star"] = {
            "members": {user: key.hex()
                        for user, key in server.star._members.items()},
            "group_key": server.star.group_key.hex(),
            "version": server.star.group_key_version,
        }
    return json.dumps(doc).encode("utf-8")


def restore(blob: bytes, seed: Optional[bytes] = None) -> GroupKeyServer:
    """Build a standby server from a snapshot."""
    try:
        doc = json.loads(blob.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise PersistenceError(f"malformed snapshot: {exc}") from None
    if doc.get("format") != FORMAT_VERSION:
        raise PersistenceError(
            f"unsupported snapshot format {doc.get('format')!r}")
    cfg = doc["config"]
    suite = CipherSuite(cfg["cipher"], cfg["digest"], cfg["signature_bits"])
    config = ServerConfig(
        group_id=cfg["group_id"], graph=cfg["graph"], degree=cfg["degree"],
        strategy=cfg["strategy"], suite=suite, signing=cfg["signing"],
        seed=(seed if seed is not None
              else bytes.fromhex(doc["reseed"])),
        access_list=(set(cfg["access_list"])
                     if cfg["access_list"] is not None else None),
        # Snapshots from before the flat backend carry no backend key.
        backend=cfg.get("backend", "object"),
    )
    server = GroupKeyServer(config)
    server._seq = doc["seq"]
    server._registered_keys = {user: bytes.fromhex(key) for user, key
                               in doc["registered_keys"].items()}
    if "signing_keypair" in doc:
        kp = doc["signing_keypair"]
        server.signing_keypair = RsaPrivateKey(
            n=kp["n"], e=kp["e"], d=kp["d"], p=kp["p"], q=kp["q"])
        # Re-point the signer at the restored keypair.
        server._signer.private_key = server.signing_keypair
    if "tree" in doc:
        server.tree = _tree_from_dict(doc["tree"], server._new_key,
                                      backend=config.backend)
    else:
        star = doc["star"]
        server.star._members = {user: bytes.fromhex(key)
                                for user, key in star["members"].items()}
        server.star.group_key = bytes.fromhex(star["group_key"])
        server.star.group_key_version = star["version"]
    return server


def snapshot_encrypted(server: GroupKeyServer, storage_key: bytes,
                       iv: bytes) -> bytes:
    """Snapshot encrypted at rest under ``storage_key`` (suite cipher)."""
    cipher = server.suite.new_cipher(storage_key)
    return modes.cbc_encrypt(cipher, snapshot(server), iv)


def restore_encrypted(blob: bytes, storage_key: bytes, iv: bytes,
                      suite: CipherSuite,
                      seed: Optional[bytes] = None) -> GroupKeyServer:
    """Decrypt and restore an at-rest snapshot."""
    cipher = suite.new_cipher(storage_key)
    try:
        plaintext = modes.cbc_decrypt(cipher, blob, iv)
    except (modes.PaddingError, ValueError) as exc:
        raise PersistenceError(f"cannot decrypt snapshot: {exc}") from None
    return restore(plaintext, seed=seed)


# -- journaling (restart by replay) ----------------------------------------

def attach_journal(server: GroupKeyServer, path: str) -> TreeJournal:
    """Journal every state-changing op of ``server`` to ``path``.

    Writes an initial checkpoint snapshot, then the server appends one
    op record per join/leave/refresh/register (plus sequence-counter
    markers) until the journal is detached.  Restart with
    :func:`restore_from_journal`.
    """
    if server.tree is None:
        raise PersistenceError("journaling requires a tree-based server")
    journal = TreeJournal(path)
    server.attach_journal(journal)
    return journal


def restore_from_journal(path: str,
                         seed: Optional[bytes] = None,
                         strict: bool = False) -> GroupKeyServer:
    """Rebuild a server byte-identically by replaying its journal.

    Restores the last checkpoint, then re-applies each op record as a
    pure tree edit with the *recorded* key material — no DRBG draws, no
    strategy planning, no encryption — so a restart at n = 1M costs one
    snapshot load plus O(ops · log n) array edits instead of re-running
    the rekey pipeline over the whole history.

    ``strict`` distinguishes damage classes: a torn tail (crash
    mid-append) is always dropped and replay proceeds, but a
    CRC-corrupt complete record raises
    :class:`~repro.keygraph.journal.JournalError` instead of silently
    truncating history — the supervisor refuses to restart from a
    journal that failed its integrity check.
    """
    blob, ops = TreeJournal(path).load(strict=strict)
    if blob is None:
        raise PersistenceError(f"{path}: no checkpoint record to restore")
    server = restore(blob, seed=seed)
    tree = server.tree
    if tree is None:
        raise PersistenceError("journal replay requires a tree server")
    seq = server._seq
    original_keygen = tree._keygen
    try:
        for record in ops:
            op = record.get("op")
            if "seq" in record:
                seq = record["seq"]
            if op == "seq":
                continue
            if op == "register":
                server._registered_keys[record["user_id"]] = \
                    bytes.fromhex(record["individual_key"])
                continue
            source = ReplayKeySource(
                [bytes.fromhex(k) for k in record.get("keys", [])])
            tree._keygen = source
            if op == "join":
                # The original join may have consumed a registered key.
                server._registered_keys.pop(record["user_id"], None)
                tree.join(record["user_id"],
                          bytes.fromhex(record["individual_key"]))
            elif op == "leave":
                tree.leave(record["user_id"])
            elif op == "refresh":
                if tree.root is None:
                    raise PersistenceError(
                        "refresh record on an empty tree")
                tree.root.replace_key(source())
            else:
                raise PersistenceError(f"unknown journal op {op!r}")
            if not source.exhausted:
                raise PersistenceError(
                    f"op {op!r} drew fewer keys than recorded")
    finally:
        tree._keygen = original_keygen
    server._seq = seq
    return server

"""The staged rekey pipeline shared by every rekey path.

The paper's server (§3, §5) is *one* rekey engine measured three ways;
this module is that engine's single implementation.  A rekey operation
— an immediate join/leave/refresh (:class:`~repro.core.server.
GroupKeyServer`), an interval batch flush (:class:`~repro.batch.
rekeying.BatchRekeyServer`), or a covering-based key-graph edit
(:class:`~repro.keygraph.materialized.MaterializedKeyGraph`) — runs
through four explicit stages:

``plan``
    The path-specific planner edits the key graph and schedules
    encryptions, returning :class:`~repro.core.strategies.base.
    PlannedMessage` objects whose items are deferred
    :class:`~repro.core.strategies.base.PendingItem` entries.  IVs are
    drawn here so the DRBG stream matches immediate encryption.
``encrypt``
    Every scheduled encryption executes (the CPU-heavy CBC passes).
``sign``
    Plans become wire :class:`~repro.core.messages.Message` objects
    (sequence numbers, timestamps, the current root reference) and the
    signer seals them — one signature over the whole batch (Merkle),
    one per message, or none.
``dispatch``
    Messages are encoded and wrapped in :class:`~repro.core.messages.
    OutboundMessage`; receiver lists are resolved *after* the
    processing clock stops (a real server multicasts to group
    addresses without enumerating members).

Each stage has a hook point (:meth:`RekeyPipeline.add_hook`) so future
optimisations — key caches, parallel signing, async dispatch — plug
into one pipeline instead of three copies.  Per-stage timings flow into
the shared :mod:`repro.observability` core; ``PipelineRun.seconds`` is
the timed region the paper reports as server processing time.

The module also centralises what the three paths used to copy-paste:
:class:`KeyMaterialSource` (key/IV sourcing from one seeded DRBG),
:func:`make_signer` (signer selection + keypair construction) and
:func:`validate_signing` (the signing-mode validation previously
duplicated between ``ServerConfig.validate`` and ``BatchRekeyServer``).
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, Type

from ..crypto import drbg
from ..observability import NULL_INSTRUMENTATION, StageClock
from .messages import MSG_REKEY, Message, OutboundMessage, STRATEGY_NONE
from .signing import MerkleSigner, NullSigner, PerMessageSigner
from .strategies.base import PlannedMessage, RekeyContext, resolve_item

STAGE_PLAN = "plan"
STAGE_ENCRYPT = "encrypt"
STAGE_SIGN = "sign"
STAGE_DISPATCH = "dispatch"
STAGES = (STAGE_PLAN, STAGE_ENCRYPT, STAGE_SIGN, STAGE_DISPATCH)

SIGNING_MODES = ("none", "per-message", "merkle")


class PipelineError(ValueError):
    """Raised on invalid pipeline configuration."""


def validate_signing(signing: str, suite,
                     error: Type[Exception] = PipelineError) -> None:
    """Shared signing-mode validation for every rekey path.

    Raises ``error`` (so each server surfaces its own exception type)
    when the mode is unknown or needs signatures the suite lacks.
    """
    if signing not in SIGNING_MODES:
        raise error(f"unknown signing mode {signing!r}")
    if signing != "none" and not suite.signs:
        raise error(f"signing mode {signing!r} needs a suite with signatures")


class KeyMaterialSource:
    """Key and IV sourcing for one server, from one seeded DRBG.

    Replaces the ``_new_key``/``_new_iv`` pairs previously copy-pasted
    across the rekey paths.  ``personalization`` keeps the historic
    per-path DRBG domain separation (so seeded outputs are unchanged).
    Custom ``key_source``/``iv_source`` callables bypass the DRBG —
    used by :class:`~repro.keygraph.materialized.MaterializedKeyGraph`,
    whose caller supplies the generators.
    """

    __slots__ = ("suite", "_key_source", "_iv_source")

    def __init__(self, suite, seed: Optional[bytes] = None,
                 personalization: bytes = b"key-material",
                 key_source: Optional[Callable[[], bytes]] = None,
                 iv_source: Optional[Callable[[], bytes]] = None):
        self.suite = suite
        if key_source is None or iv_source is None:
            random = drbg.make_source(seed, personalization)
        self._key_source = key_source or (lambda: suite.safe_key(random))
        self._iv_source = iv_source or (
            lambda: random.generate(suite.block_size))

    def new_key(self) -> bytes:
        """Fresh key material sized for the suite."""
        return self._key_source()

    def new_iv(self) -> bytes:
        """Fresh IV of one cipher block."""
        return self._iv_source()

    def new_individual_key(self) -> bytes:
        """An individual key (stands in for the auth exchange)."""
        return self.new_key()


# Seeded keypair derivation is deterministic — same (suite, seed) always
# yields the same key — but costs two Miller-Rabin prime searches.  Test
# scenarios build many servers from the same seed, so memoize.  Unseeded
# (seed=None) derivation is random by contract and is never cached.
_KEYPAIR_MEMO: "OrderedDict[tuple, object]" = OrderedDict()
_KEYPAIR_MEMO_MAX = 128


def _derive_signing_keypair(suite, seed: Optional[bytes]):
    if seed is None:
        return suite.generate_signing_keypair(seed=None)
    memo_key = (suite.cipher_name, suite.digest_name, suite.signature_bits,
                bytes(seed))
    keypair = _KEYPAIR_MEMO.get(memo_key)
    if keypair is None:
        keypair = suite.generate_signing_keypair(seed=seed + b"/sign")
        _KEYPAIR_MEMO[memo_key] = keypair
        if len(_KEYPAIR_MEMO) > _KEYPAIR_MEMO_MAX:
            _KEYPAIR_MEMO.popitem(last=False)
    else:
        _KEYPAIR_MEMO.move_to_end(memo_key)
    return keypair


def make_signer(suite, signing: str, seed: Optional[bytes] = None,
                error: Type[Exception] = PipelineError):
    """Build (signer, signing_keypair) for a signing mode.

    The shared signer factory: validates the mode via
    :func:`validate_signing`, derives the keypair seed the same way
    every path historically did (``seed + b"/sign"``), and returns a
    ``(signer, keypair)`` pair — ``keypair`` is ``None`` for mode
    ``"none"``.

    Seeded keypairs are memoized per (suite parameters, seed): two
    servers configured with the same seed share one keypair *object*,
    and the second server skips prime generation entirely.
    """
    validate_signing(signing, suite, error)
    if signing == "none":
        return NullSigner(suite), None
    keypair = _derive_signing_keypair(suite, seed)
    if signing == "per-message":
        return PerMessageSigner(suite, keypair), keypair
    return MerkleSigner(suite, keypair), keypair


class Sequencer:
    """A shared message sequence counter (survives snapshot/restore).

    ``next`` is atomic: the async serving layer seals concurrent runs
    from executor threads, and two runs drawing the same sequence
    number would collide at the client's replay guard.  ``value``
    remains a plain attribute for snapshot/restore.
    """

    __slots__ = ("value", "_lock")

    def __init__(self, start: int = 0):
        self.value = start
        self._lock = threading.Lock()

    def next(self) -> int:
        """The next sequence number (first call returns start + 1)."""
        with self._lock:
            self.value += 1
            return self.value


class SealTurnstile:
    """Admits seal stages strictly in plan order.

    Overlapped staged runs finish their encrypt stage in whatever
    order the worker pool happens to schedule, but sequence numbers
    (for the rekey messages *and* the op's ack) must be drawn in plan
    order or the overlapped path diverges byte-wise from the
    synchronous one.  Each run takes a ``ticket`` at plan time (plans
    are serialized by the caller); ``wait`` blocks until every earlier
    ticket has been retired.  ``retire`` is how a run passes the turn
    on — including runs that abort before sealing, so a failed op
    never wedges the ops planned after it.

    No deadlock under a FIFO worker pool: tasks are submitted in plan
    order, so whenever a run is waiting its turn, every earlier run
    has already started on some worker and will retire its ticket.
    """

    __slots__ = ("_cond", "_next", "_serving", "_retired", "wait_observer")

    def __init__(self):
        self._cond = threading.Condition()
        self._next = 0
        self._serving = 0
        self._retired = set()
        #: Optional ``observer(seconds)`` called after a wait that
        #: actually blocked — the serving layer points it at a wait
        #: histogram.  Uncontended waits never invoke it.
        self.wait_observer: Optional[Callable[[float], None]] = None

    def ticket(self) -> int:
        """Reserve the next turn (call in plan order)."""
        with self._cond:
            ticket = self._next
            self._next += 1
            return ticket

    @property
    def idle(self) -> bool:
        """True when every issued ticket has been retired.

        While the caller serializes plans (and so ticket draws) behind
        a lock it holds, idleness cannot be invalidated — which lets a
        whole-op caller (e.g. a recovery eviction sweep) ensure its
        seal never has to wait for a staged run that may still be
        queued for a worker.
        """
        with self._cond:
            return self._serving == self._next

    def wait(self, ticket: int) -> float:
        """Block until every ticket before ``ticket`` is retired.

        Returns the seconds actually spent blocked — 0.0 on the
        uncontended fast path, which also skips the clock reads and
        the :attr:`wait_observer`.
        """
        with self._cond:
            if self._serving >= ticket:
                return 0.0
            started = time.perf_counter()
            while self._serving < ticket:
                self._cond.wait()
            waited = time.perf_counter() - started
        observer = self.wait_observer
        if observer is not None:
            observer(waited)
        return waited

    def retire(self, ticket: int) -> None:
        """Pass the turn on; out-of-order retires (aborts) are fine."""
        with self._cond:
            self._retired.add(ticket)
            while self._serving in self._retired:
                self._retired.discard(self._serving)
                self._serving += 1
            self._cond.notify_all()


@dataclass
class PipelineRun:
    """Everything one pipeline run produced, stage by stage."""

    op: str
    user_id: str
    strategy_code: int
    context: RekeyContext
    plans: List[PlannedMessage] = field(default_factory=list)
    wire_messages: List[Message] = field(default_factory=list)
    messages: List[OutboundMessage] = field(default_factory=list)
    signatures: int = 0
    seconds: float = 0.0
    stage_seconds: Dict[str, float] = field(default_factory=dict)
    # Span identity of this run (0/0 when the pipeline's tracer is the
    # null tracer); transports propagate it out-of-band.
    trace_id: int = 0
    span_id: int = 0

    @property
    def encryptions(self) -> int:
        """Keys encrypted during the run (the Table 2 cost measure)."""
        return self.context.encryptions

    @property
    def total_bytes(self) -> int:
        """Total encoded bytes over all produced messages."""
        return sum(message.size for message in self.messages)

    @property
    def max_message_bytes(self) -> int:
        """Largest single encoded message (0 when none)."""
        return max((message.size for message in self.messages), default=0)


PipelineHook = Callable[[PipelineRun], None]


class StagedRun:
    """One rekey operation with caller-driven stage execution.

    :meth:`RekeyPipeline.begin` already ran the plan stage (graph edit
    + scheduled encryptions) on the calling thread.  The caller then
    drives:

    :meth:`encrypt`
        Materializes this run's scheduled encryptions.  Touches only
        per-run state, so independent runs may encrypt concurrently on
        worker threads — this is the stage the async serving layer
        offloads via ``run_in_executor``.
    :meth:`seal`
        Assembles wire messages (drawing sequence numbers) and signs
        them.  Seals are admitted strictly in plan order by the
        pipeline's :class:`SealTurnstile` (and serialized under its
        seal lock), so sequence numbers and signer state evolve
        exactly as they would on the synchronous path; then encodes
        the outbound messages and stops the processing clock.  The
        run's turn stays held until :meth:`release_turn` (or
        :meth:`finish` / :meth:`abort`), letting a caller draw this
        op's ack sequence number before the next op seals.
    :meth:`finish`
        Resolves receiver lists (outside the timed region), fires the
        dispatch hook and records the run's metrics.  Returns the
        completed :class:`PipelineRun`.

    Any stage that raises records the partial timings as an errored
    run (mirroring the synchronous path) before propagating.  The
    synchronous :meth:`RekeyPipeline.run` is exactly
    ``begin -> encrypt -> seal -> finish`` on one thread, so both
    paths share one implementation and produce identical bytes.
    """

    __slots__ = ("pipeline", "run", "clock", "root_span", "_root_ref",
                 "_done", "_seal_ticket")

    def __init__(self, pipeline: "RekeyPipeline", run: PipelineRun,
                 clock: StageClock, root_span, root_ref):
        self.pipeline = pipeline
        self.run = run
        self.clock = clock
        self.root_span = root_span
        self._root_ref = root_ref
        self._done = False
        self._seal_ticket = None

    def encrypt(self) -> "StagedRun":
        """Run the encrypt stage (safe on a worker thread)."""
        tracer = self.pipeline.instrumentation.tracer
        try:
            with self.clock.stage(STAGE_ENCRYPT), \
                    tracer.span(STAGE_ENCRYPT, parent=self.root_span):
                self.run.context.materialize()
            self.pipeline._fire(STAGE_ENCRYPT, self.run)
        except BaseException:
            self.abort()
            raise
        return self

    def seal(self) -> "StagedRun":
        """Run the sign + dispatch-encode stages and stop the clock."""
        pipeline = self.pipeline
        tracer = pipeline.instrumentation.tracer
        run = self.run
        try:
            if self._seal_ticket is not None:
                # The wait span is finished only when the wait actually
                # blocked, so uncontended seals add no span traffic.
                wait_span = tracer.span("seal.wait", parent=self.root_span)
                if pipeline.seal_order.wait(self._seal_ticket) > 0.0:
                    wait_span.finish()
            with pipeline.seal_lock:
                with self.clock.stage(STAGE_SIGN), \
                        tracer.span(STAGE_SIGN, parent=self.root_span):
                    run.wire_messages = pipeline._assemble(run,
                                                           self._root_ref)
                    run.signatures = pipeline._seal(run.wire_messages)
                pipeline._fire(STAGE_SIGN, run)
            with self.clock.stage(STAGE_DISPATCH), \
                    tracer.span(STAGE_DISPATCH, parent=self.root_span):
                run.messages = [
                    OutboundMessage(plan.destination, message, (),
                                    message.encode())
                    for plan, message in zip(run.plans, run.wire_messages)]
            run.seconds = self.clock.stop()
            self.root_span.set("messages", len(run.messages))
            self.root_span.finish()
        except BaseException:
            self.abort()
            raise
        return self

    def release_turn(self) -> None:
        """Retire this run's seal turn (idempotent).

        Called automatically by :meth:`finish` and :meth:`abort`; call
        it earlier — after any post-seal sequence draws for this op —
        to let the next planned op start sealing sooner.
        """
        ticket, self._seal_ticket = self._seal_ticket, None
        if ticket is not None:
            self.pipeline.seal_order.retire(ticket)

    def finish(self) -> PipelineRun:
        """Resolve receivers, fire the dispatch hook, record the run."""
        self.release_turn()
        run = self.run
        for outbound, plan in zip(run.messages, run.plans):
            outbound.receivers = plan.resolve_receivers()
        self.pipeline._fire(STAGE_DISPATCH, run)
        run.stage_seconds = dict(self.clock.stages)
        self.pipeline.instrumentation.record_run(run.op, self.clock)
        self._done = True
        return run

    def abort(self) -> None:
        """Record the run as errored (idempotent; safe after any stage)."""
        self.release_turn()
        if self._done:
            return
        self._done = True
        self.clock.error = True
        self.run.seconds = self.clock.stop()
        self.root_span.finish(error=True)
        self.run.stage_seconds = dict(self.clock.stages)
        self.pipeline.instrumentation.record_run(self.run.op, self.clock)


class RekeyPipeline:
    """plan -> encrypt -> sign -> dispatch, with per-stage hook points.

    One instance per server; :meth:`run` executes one rekey operation.
    ``seal_individually`` selects the batch path's historic behaviour
    (each message sealed on its own) over the immediate server's (one
    seal over the whole batch — amortised for Merkle signing).
    ``signer=None`` skips sealing entirely (messages carry no auth
    block), which is what the materialized key-graph path ships.
    """

    def __init__(self, suite, material: KeyMaterialSource, *,
                 signer=None, sequencer: Optional[Sequencer] = None,
                 group_id: int = 1, msg_type: int = MSG_REKEY,
                 seal_individually: bool = False, instrumentation=None):
        self.suite = suite
        self.material = material
        self.signer = signer
        self.sequencer = sequencer if sequencer is not None else Sequencer()
        self.group_id = group_id
        self.msg_type = msg_type
        self.seal_individually = seal_individually
        self.instrumentation = (instrumentation if instrumentation is not None
                                else NULL_INSTRUMENTATION)
        self._hooks: Dict[str, List[PipelineHook]] = {
            stage: [] for stage in STAGES}
        # Serializes the sign stage across concurrently staged runs
        # (the signer — Merkle batching, signature counters — is
        # stateful); the turnstile additionally admits seals strictly
        # in plan order, so sequence numbers are drawn exactly as the
        # synchronous path would draw them no matter how the worker
        # pool interleaves the encrypt stages.
        self.seal_lock = threading.Lock()
        self.seal_order = SealTurnstile()

    # -- hooks -------------------------------------------------------------

    def add_hook(self, stage: str, hook: PipelineHook) -> None:
        """Register ``hook(run)`` to fire after ``stage`` completes."""
        if stage not in self._hooks:
            raise PipelineError(f"unknown stage {stage!r}; "
                                f"expected one of {STAGES}")
        self._hooks[stage].append(hook)

    def _fire(self, stage: str, run: PipelineRun) -> None:
        for hook in self._hooks[stage]:
            hook(run)

    # -- the staged run ----------------------------------------------------

    def new_context(self) -> RekeyContext:
        """A deferred-mode context wired to this pipeline's IV source."""
        return RekeyContext(self.suite, self.material.new_iv, defer=True)

    def run(self, op: str,
            planner: Callable[[RekeyContext], List[PlannedMessage]], *,
            strategy_code: int = STRATEGY_NONE,
            root_ref: Optional[Callable[[], Tuple[int, int]]] = None,
            user_id: str = "") -> PipelineRun:
        """Execute one rekey operation through the four stages.

        ``planner`` performs the path-specific graph edit and returns
        the planned messages (with deferred items).  ``root_ref`` is
        called once, after the edit, for the (root id, version) header
        fields — only when there is at least one plan, mirroring the
        legacy paths (an empty outcome never touches the root).

        The returned run's ``seconds`` covers plan through dispatch
        encoding; receiver resolution runs after the clock stops, as
        the paper's server excludes membership enumeration from its
        processing time.

        A planner (or stage) that raises still gets its elapsed time
        recorded, flagged as an error, before the exception propagates —
        failed rekeys are visible in the timing aggregates and
        histograms rather than silently dropped.
        """
        staged = self.begin(op, planner, strategy_code=strategy_code,
                            root_ref=root_ref, user_id=user_id)
        staged.encrypt()
        staged.seal()
        return staged.finish()

    def begin(self, op: str,
              planner: Callable[[RekeyContext], List[PlannedMessage]], *,
              strategy_code: int = STRATEGY_NONE,
              root_ref: Optional[Callable[[], Tuple[int, int]]] = None,
              user_id: str = "") -> StagedRun:
        """Run the plan stage now; hand back the remaining stages.

        The plan stage is the graph edit, so it must run serialized by
        the caller (the async layer keeps it on the event loop); the
        returned :class:`StagedRun`'s encrypt stage is then free to run
        on a worker thread.  The DRBG draws (new keys, IVs) all happen
        here, so staged runs consume key material in submission order —
        byte-identical to a sequence of synchronous runs.
        """
        clock = StageClock()
        ctx = self.new_context()
        run = PipelineRun(op=op, user_id=user_id,
                          strategy_code=strategy_code, context=ctx)
        tracer = self.instrumentation.tracer
        root = tracer.span(f"rekey.{op}", op=op, user=user_id)
        run.trace_id = root.trace_id
        run.span_id = root.span_id
        staged = StagedRun(self, run, clock, root, root_ref)
        # Keep the root span active on this thread during planning so
        # spans opened inside the planner parent to it, exactly as the
        # single-shot path did.  NullTracer has no stack to maintain.
        push = getattr(tracer, "_push", None)
        pop = getattr(tracer, "_pop", None)
        try:
            if push is not None:
                push(root)
            try:
                with clock.stage(STAGE_PLAN), tracer.span(STAGE_PLAN):
                    run.plans = list(planner(ctx))
            finally:
                if pop is not None:
                    pop(root)
            self._fire(STAGE_PLAN, run)
        except BaseException:
            staged.abort()
            raise
        staged._seal_ticket = self.seal_order.ticket()
        return staged

    # -- stage internals ---------------------------------------------------

    def _assemble(self, run: PipelineRun,
                  root_ref: Optional[Callable[[], Tuple[int, int]]]
                  ) -> List[Message]:
        """Wrap each plan's (materialized) items in a wire message."""
        if not run.plans:
            return []
        root_id, root_version = root_ref() if root_ref is not None else (0, 0)
        messages = []
        for plan in run.plans:
            messages.append(Message(
                msg_type=self.msg_type,
                group_id=self.group_id,
                strategy=run.strategy_code,
                seq=self.sequencer.next(),
                timestamp_us=time.time_ns() // 1000,
                root_node_id=root_id,
                root_version=root_version,
                items=[resolve_item(item) for item in plan.items],
            ))
        return messages

    def _seal(self, messages: List[Message]) -> int:
        """Sign the batch; returns the number of signatures performed."""
        if self.signer is None or not messages:
            return 0
        before = self.signer.signatures_performed
        if self.seal_individually:
            for message in messages:
                self.signer.seal([message])
        else:
            self.signer.seal(messages)
        return self.signer.signatures_performed - before

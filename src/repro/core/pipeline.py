"""The staged rekey pipeline shared by every rekey path.

The paper's server (§3, §5) is *one* rekey engine measured three ways;
this module is that engine's single implementation.  A rekey operation
— an immediate join/leave/refresh (:class:`~repro.core.server.
GroupKeyServer`), an interval batch flush (:class:`~repro.batch.
rekeying.BatchRekeyServer`), or a covering-based key-graph edit
(:class:`~repro.keygraph.materialized.MaterializedKeyGraph`) — runs
through four explicit stages:

``plan``
    The path-specific planner edits the key graph and schedules
    encryptions, returning :class:`~repro.core.strategies.base.
    PlannedMessage` objects whose items are deferred
    :class:`~repro.core.strategies.base.PendingItem` entries.  IVs are
    drawn here so the DRBG stream matches immediate encryption.
``encrypt``
    Every scheduled encryption executes (the CPU-heavy CBC passes).
``sign``
    Plans become wire :class:`~repro.core.messages.Message` objects
    (sequence numbers, timestamps, the current root reference) and the
    signer seals them — one signature over the whole batch (Merkle),
    one per message, or none.
``dispatch``
    Messages are encoded and wrapped in :class:`~repro.core.messages.
    OutboundMessage`; receiver lists are resolved *after* the
    processing clock stops (a real server multicasts to group
    addresses without enumerating members).

Each stage has a hook point (:meth:`RekeyPipeline.add_hook`) so future
optimisations — key caches, parallel signing, async dispatch — plug
into one pipeline instead of three copies.  Per-stage timings flow into
the shared :mod:`repro.observability` core; ``PipelineRun.seconds`` is
the timed region the paper reports as server processing time.

The module also centralises what the three paths used to copy-paste:
:class:`KeyMaterialSource` (key/IV sourcing from one seeded DRBG),
:func:`make_signer` (signer selection + keypair construction) and
:func:`validate_signing` (the signing-mode validation previously
duplicated between ``ServerConfig.validate`` and ``BatchRekeyServer``).
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, Type

from ..crypto import drbg
from ..observability import NULL_INSTRUMENTATION, StageClock
from .messages import MSG_REKEY, Message, OutboundMessage, STRATEGY_NONE
from .signing import MerkleSigner, NullSigner, PerMessageSigner
from .strategies.base import PlannedMessage, RekeyContext, resolve_item

STAGE_PLAN = "plan"
STAGE_ENCRYPT = "encrypt"
STAGE_SIGN = "sign"
STAGE_DISPATCH = "dispatch"
STAGES = (STAGE_PLAN, STAGE_ENCRYPT, STAGE_SIGN, STAGE_DISPATCH)

SIGNING_MODES = ("none", "per-message", "merkle")


class PipelineError(ValueError):
    """Raised on invalid pipeline configuration."""


def validate_signing(signing: str, suite,
                     error: Type[Exception] = PipelineError) -> None:
    """Shared signing-mode validation for every rekey path.

    Raises ``error`` (so each server surfaces its own exception type)
    when the mode is unknown or needs signatures the suite lacks.
    """
    if signing not in SIGNING_MODES:
        raise error(f"unknown signing mode {signing!r}")
    if signing != "none" and not suite.signs:
        raise error(f"signing mode {signing!r} needs a suite with signatures")


class KeyMaterialSource:
    """Key and IV sourcing for one server, from one seeded DRBG.

    Replaces the ``_new_key``/``_new_iv`` pairs previously copy-pasted
    across the rekey paths.  ``personalization`` keeps the historic
    per-path DRBG domain separation (so seeded outputs are unchanged).
    Custom ``key_source``/``iv_source`` callables bypass the DRBG —
    used by :class:`~repro.keygraph.materialized.MaterializedKeyGraph`,
    whose caller supplies the generators.
    """

    __slots__ = ("suite", "_key_source", "_iv_source")

    def __init__(self, suite, seed: Optional[bytes] = None,
                 personalization: bytes = b"key-material",
                 key_source: Optional[Callable[[], bytes]] = None,
                 iv_source: Optional[Callable[[], bytes]] = None):
        self.suite = suite
        if key_source is None or iv_source is None:
            random = drbg.make_source(seed, personalization)
        self._key_source = key_source or (lambda: suite.safe_key(random))
        self._iv_source = iv_source or (
            lambda: random.generate(suite.block_size))

    def new_key(self) -> bytes:
        """Fresh key material sized for the suite."""
        return self._key_source()

    def new_iv(self) -> bytes:
        """Fresh IV of one cipher block."""
        return self._iv_source()

    def new_individual_key(self) -> bytes:
        """An individual key (stands in for the auth exchange)."""
        return self.new_key()


# Seeded keypair derivation is deterministic — same (suite, seed) always
# yields the same key — but costs two Miller-Rabin prime searches.  Test
# scenarios build many servers from the same seed, so memoize.  Unseeded
# (seed=None) derivation is random by contract and is never cached.
_KEYPAIR_MEMO: "OrderedDict[tuple, object]" = OrderedDict()
_KEYPAIR_MEMO_MAX = 128


def _derive_signing_keypair(suite, seed: Optional[bytes]):
    if seed is None:
        return suite.generate_signing_keypair(seed=None)
    memo_key = (suite.cipher_name, suite.digest_name, suite.signature_bits,
                bytes(seed))
    keypair = _KEYPAIR_MEMO.get(memo_key)
    if keypair is None:
        keypair = suite.generate_signing_keypair(seed=seed + b"/sign")
        _KEYPAIR_MEMO[memo_key] = keypair
        if len(_KEYPAIR_MEMO) > _KEYPAIR_MEMO_MAX:
            _KEYPAIR_MEMO.popitem(last=False)
    else:
        _KEYPAIR_MEMO.move_to_end(memo_key)
    return keypair


def make_signer(suite, signing: str, seed: Optional[bytes] = None,
                error: Type[Exception] = PipelineError):
    """Build (signer, signing_keypair) for a signing mode.

    The shared signer factory: validates the mode via
    :func:`validate_signing`, derives the keypair seed the same way
    every path historically did (``seed + b"/sign"``), and returns a
    ``(signer, keypair)`` pair — ``keypair`` is ``None`` for mode
    ``"none"``.

    Seeded keypairs are memoized per (suite parameters, seed): two
    servers configured with the same seed share one keypair *object*,
    and the second server skips prime generation entirely.
    """
    validate_signing(signing, suite, error)
    if signing == "none":
        return NullSigner(suite), None
    keypair = _derive_signing_keypair(suite, seed)
    if signing == "per-message":
        return PerMessageSigner(suite, keypair), keypair
    return MerkleSigner(suite, keypair), keypair


class Sequencer:
    """A shared message sequence counter (survives snapshot/restore)."""

    __slots__ = ("value",)

    def __init__(self, start: int = 0):
        self.value = start

    def next(self) -> int:
        """The next sequence number (first call returns start + 1)."""
        self.value += 1
        return self.value


@dataclass
class PipelineRun:
    """Everything one pipeline run produced, stage by stage."""

    op: str
    user_id: str
    strategy_code: int
    context: RekeyContext
    plans: List[PlannedMessage] = field(default_factory=list)
    wire_messages: List[Message] = field(default_factory=list)
    messages: List[OutboundMessage] = field(default_factory=list)
    signatures: int = 0
    seconds: float = 0.0
    stage_seconds: Dict[str, float] = field(default_factory=dict)
    # Span identity of this run (0/0 when the pipeline's tracer is the
    # null tracer); transports propagate it out-of-band.
    trace_id: int = 0
    span_id: int = 0

    @property
    def encryptions(self) -> int:
        """Keys encrypted during the run (the Table 2 cost measure)."""
        return self.context.encryptions

    @property
    def total_bytes(self) -> int:
        """Total encoded bytes over all produced messages."""
        return sum(message.size for message in self.messages)

    @property
    def max_message_bytes(self) -> int:
        """Largest single encoded message (0 when none)."""
        return max((message.size for message in self.messages), default=0)


PipelineHook = Callable[[PipelineRun], None]


class RekeyPipeline:
    """plan -> encrypt -> sign -> dispatch, with per-stage hook points.

    One instance per server; :meth:`run` executes one rekey operation.
    ``seal_individually`` selects the batch path's historic behaviour
    (each message sealed on its own) over the immediate server's (one
    seal over the whole batch — amortised for Merkle signing).
    ``signer=None`` skips sealing entirely (messages carry no auth
    block), which is what the materialized key-graph path ships.
    """

    def __init__(self, suite, material: KeyMaterialSource, *,
                 signer=None, sequencer: Optional[Sequencer] = None,
                 group_id: int = 1, msg_type: int = MSG_REKEY,
                 seal_individually: bool = False, instrumentation=None):
        self.suite = suite
        self.material = material
        self.signer = signer
        self.sequencer = sequencer if sequencer is not None else Sequencer()
        self.group_id = group_id
        self.msg_type = msg_type
        self.seal_individually = seal_individually
        self.instrumentation = (instrumentation if instrumentation is not None
                                else NULL_INSTRUMENTATION)
        self._hooks: Dict[str, List[PipelineHook]] = {
            stage: [] for stage in STAGES}

    # -- hooks -------------------------------------------------------------

    def add_hook(self, stage: str, hook: PipelineHook) -> None:
        """Register ``hook(run)`` to fire after ``stage`` completes."""
        if stage not in self._hooks:
            raise PipelineError(f"unknown stage {stage!r}; "
                                f"expected one of {STAGES}")
        self._hooks[stage].append(hook)

    def _fire(self, stage: str, run: PipelineRun) -> None:
        for hook in self._hooks[stage]:
            hook(run)

    # -- the staged run ----------------------------------------------------

    def new_context(self) -> RekeyContext:
        """A deferred-mode context wired to this pipeline's IV source."""
        return RekeyContext(self.suite, self.material.new_iv, defer=True)

    def run(self, op: str,
            planner: Callable[[RekeyContext], List[PlannedMessage]], *,
            strategy_code: int = STRATEGY_NONE,
            root_ref: Optional[Callable[[], Tuple[int, int]]] = None,
            user_id: str = "") -> PipelineRun:
        """Execute one rekey operation through the four stages.

        ``planner`` performs the path-specific graph edit and returns
        the planned messages (with deferred items).  ``root_ref`` is
        called once, after the edit, for the (root id, version) header
        fields — only when there is at least one plan, mirroring the
        legacy paths (an empty outcome never touches the root).

        The returned run's ``seconds`` covers plan through dispatch
        encoding; receiver resolution runs after the clock stops, as
        the paper's server excludes membership enumeration from its
        processing time.

        A planner (or stage) that raises still gets its elapsed time
        recorded, flagged as an error, before the exception propagates —
        failed rekeys are visible in the timing aggregates and
        histograms rather than silently dropped.
        """
        clock = StageClock()
        ctx = self.new_context()
        run = PipelineRun(op=op, user_id=user_id,
                          strategy_code=strategy_code, context=ctx)
        tracer = self.instrumentation.tracer
        try:
            with tracer.span(f"rekey.{op}", op=op, user=user_id) as root:
                run.trace_id = root.trace_id
                run.span_id = root.span_id

                with clock.stage(STAGE_PLAN), tracer.span(STAGE_PLAN):
                    run.plans = list(planner(ctx))
                self._fire(STAGE_PLAN, run)

                with clock.stage(STAGE_ENCRYPT), tracer.span(STAGE_ENCRYPT):
                    ctx.materialize()
                self._fire(STAGE_ENCRYPT, run)

                with clock.stage(STAGE_SIGN), tracer.span(STAGE_SIGN):
                    run.wire_messages = self._assemble(run, root_ref)
                    run.signatures = self._seal(run.wire_messages)
                self._fire(STAGE_SIGN, run)

                with clock.stage(STAGE_DISPATCH), tracer.span(STAGE_DISPATCH):
                    run.messages = [
                        OutboundMessage(plan.destination, message, (),
                                        message.encode())
                        for plan, message in zip(run.plans,
                                                 run.wire_messages)]
                run.seconds = clock.stop()
                root.set("messages", len(run.messages))
        except BaseException:
            # A hook can raise between stages: flag the run regardless
            # of whether a stage span already did.
            clock.error = True
            run.seconds = clock.stop()
            run.stage_seconds = dict(clock.stages)
            self.instrumentation.record_run(op, clock)
            raise

        # Simulation accounting, outside the timed region: enumerate
        # each message's receivers via the plan's lazy resolver.
        for outbound, plan in zip(run.messages, run.plans):
            outbound.receivers = plan.resolve_receivers()
        self._fire(STAGE_DISPATCH, run)

        run.stage_seconds = dict(clock.stages)
        self.instrumentation.record_run(op, clock)
        return run

    # -- stage internals ---------------------------------------------------

    def _assemble(self, run: PipelineRun,
                  root_ref: Optional[Callable[[], Tuple[int, int]]]
                  ) -> List[Message]:
        """Wrap each plan's (materialized) items in a wire message."""
        if not run.plans:
            return []
        root_id, root_version = root_ref() if root_ref is not None else (0, 0)
        messages = []
        for plan in run.plans:
            messages.append(Message(
                msg_type=self.msg_type,
                group_id=self.group_id,
                strategy=run.strategy_code,
                seq=self.sequencer.next(),
                timestamp_us=time.time_ns() // 1000,
                root_node_id=root_id,
                root_version=root_version,
                items=[resolve_item(item) for item in plan.items],
            ))
        return messages

    def _seal(self, messages: List[Message]) -> int:
        """Sign the batch; returns the number of signatures performed."""
        if self.signer is None or not messages:
            return 0
        before = self.signer.signatures_performed
        if self.seal_individually:
            for message in messages:
                self.signer.seal([message])
        else:
            self.signer.seal(messages)
        return self.signer.signatures_performed - before

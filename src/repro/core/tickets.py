"""Ticket-based group authorization (paper §3, footnote 7).

"The authorization function may be offloaded to an authorization
server.  In this case, the authorization server provides an authorized
user with a ticket to join the secure group.  The user submits the
ticket together with its join request to server s."

:class:`TicketAuthority` is that authorization server: it signs tickets
binding (user, group id, expiry).  A :class:`~repro.core.server.
GroupKeyServer` configured with the authority's public key
(``ServerConfig.ticket_authority``) admits exactly the users presenting
a valid, unexpired ticket for its group — instead of (or in addition
to) a local access control list.

Ticket wire format: ``user_len(1) user group_id(4) expires_us(8)``
followed by an RSA PKCS#1 v1.5 signature over those bytes.
"""

from __future__ import annotations

import struct
import time
from dataclasses import dataclass
from typing import Optional

from ..crypto import rsa

_BODY = struct.Struct(">IQ")


class TicketError(ValueError):
    """Raised for malformed, forged or expired tickets."""


@dataclass(frozen=True)
class Ticket:
    """A signed admission grant for one user into one group."""

    user_id: str
    group_id: int
    expires_us: int          # absolute microseconds since the epoch
    signature: bytes

    def body(self) -> bytes:
        """The signed byte region."""
        user = self.user_id.encode("utf-8")
        return (bytes([len(user)]) + user
                + _BODY.pack(self.group_id, self.expires_us))

    def encode(self) -> bytes:
        return self.body() + struct.pack(">H", len(self.signature)) \
            + self.signature

    @classmethod
    def decode(cls, data: bytes) -> "Ticket":
        try:
            user_len = data[0]
            user = data[1:1 + user_len].decode("utf-8")
            group_id, expires_us = _BODY.unpack_from(data, 1 + user_len)
            offset = 1 + user_len + _BODY.size
            (sig_len,) = struct.unpack_from(">H", data, offset)
            signature = data[offset + 2:offset + 2 + sig_len]
            if len(signature) != sig_len:
                raise TicketError("truncated ticket signature")
        except (IndexError, struct.error, UnicodeDecodeError) as exc:
            raise TicketError(f"malformed ticket: {exc}") from None
        return cls(user, group_id, expires_us, signature)


class TicketAuthority:
    """The authorization server: issues and verifies admission tickets."""

    DIGEST = "sha1"

    def __init__(self, keypair: Optional[rsa.RsaPrivateKey] = None,
                 seed: Optional[bytes] = None):
        if keypair is None:
            keypair = rsa.generate_keypair(
                512, seed=(seed + b"/tickets") if seed else None)
        self._keypair = keypair

    @property
    def public_key(self) -> rsa.RsaPublicKey:
        """Give this to every group key server that should honour us."""
        return self._keypair.public_key

    def issue(self, user_id: str, group_id: int,
              lifetime_seconds: float = 300.0,
              now_us: Optional[int] = None) -> Ticket:
        """Grant ``user_id`` admission to ``group_id`` for a limited time."""
        if not user_id or len(user_id.encode("utf-8")) > 255:
            raise TicketError("user id must be 1..255 UTF-8 bytes")
        if now_us is None:
            now_us = time.time_ns() // 1000
        expires_us = now_us + int(lifetime_seconds * 1_000_000)
        unsigned = Ticket(user_id, group_id, expires_us, b"")
        digest = self._digest(unsigned.body())
        signature = rsa.sign_digest(self._keypair, digest, self.DIGEST)
        return Ticket(user_id, group_id, expires_us, signature)

    @staticmethod
    def _digest(data: bytes) -> bytes:
        from ..crypto.sha1 import sha1
        return sha1(data).digest()

    @classmethod
    def verify(cls, public_key: rsa.RsaPublicKey, ticket: Ticket,
               user_id: str, group_id: int,
               now_us: Optional[int] = None) -> None:
        """Check signature, binding and expiry; raise TicketError if bad."""
        if ticket.user_id != user_id:
            raise TicketError(
                f"ticket names {ticket.user_id!r}, not {user_id!r}")
        if ticket.group_id != group_id:
            raise TicketError(
                f"ticket is for group {ticket.group_id}, not {group_id}")
        if now_us is None:
            now_us = time.time_ns() // 1000
        if now_us >= ticket.expires_us:
            raise TicketError("ticket has expired")
        digest = cls._digest(ticket.body())
        try:
            rsa.verify_digest(public_key, digest, ticket.signature,
                              cls.DIGEST)
        except rsa.SignatureError:
            raise TicketError("ticket signature does not verify") from None

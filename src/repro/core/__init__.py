"""Core group key management: protocols, strategies, server, client.

This is the paper's primary contribution: join/leave protocols over key
trees under user-, key- and group-oriented rekeying (§3), the Merkle
batch-signing technique (§4), and the analytic cost model (Tables 1-3).
"""

from . import costs
from .channel import (ChannelError, ReplayWindow, SecureGroupChannel,
                      derive_keys)
from .client import ClientError, ClientStats, GroupClient
from .persistence import (PersistenceError, restore, restore_encrypted,
                          snapshot, snapshot_encrypted)
from .messages import (DEST_ALL, DEST_SUBGROUP, DEST_USER, DEST_USERS,
                       INDIVIDUAL_KEY, MSG_DATA, MSG_JOIN_ACK,
                       MSG_JOIN_DENIED, MSG_JOIN_REQUEST, MSG_LEAVE_ACK,
                       MSG_LEAVE_DENIED, MSG_LEAVE_REQUEST, MSG_REKEY,
                       STRATEGY_GROUP_ORIENTED, STRATEGY_HYBRID,
                       STRATEGY_KEY_ORIENTED, STRATEGY_STAR,
                       STRATEGY_USER_ORIENTED, AuthBlock, Destination,
                       EncryptedItem, KeyRecord, Message, OutboundMessage,
                       WireError, decode_key_records, decrypt_records,
                       encrypt_records)
from .server import (AccessDenied, GroupKeyServer, RekeyOutcome,
                     RequestRecord, ServerConfig, ServerError,
                     STAR_GROUP_NODE)
from .signing import (MerkleSigner, MerkleTree, NullSigner, PerMessageSigner,
                      SigningError, verify_message)
from .tickets import Ticket, TicketAuthority, TicketError
from .strategies import (STRATEGIES, GroupOrientedStrategy, HybridStrategy,
                         KeyOrientedStrategy, PlannedMessage, RekeyContext,
                         UserOrientedStrategy)

__all__ = [
    "costs",
    "SecureGroupChannel", "ChannelError", "ReplayWindow", "derive_keys",
    "snapshot", "restore", "snapshot_encrypted", "restore_encrypted",
    "PersistenceError",
    "GroupClient", "ClientError", "ClientStats",
    "GroupKeyServer", "ServerConfig", "ServerError", "AccessDenied",
    "RekeyOutcome", "RequestRecord", "STAR_GROUP_NODE",
    "Message", "OutboundMessage", "Destination", "EncryptedItem",
    "KeyRecord", "AuthBlock", "WireError",
    "decode_key_records", "decrypt_records", "encrypt_records",
    "INDIVIDUAL_KEY",
    "MSG_JOIN_REQUEST", "MSG_JOIN_ACK", "MSG_JOIN_DENIED",
    "MSG_LEAVE_REQUEST", "MSG_LEAVE_ACK", "MSG_LEAVE_DENIED",
    "MSG_REKEY", "MSG_DATA",
    "DEST_ALL", "DEST_SUBGROUP", "DEST_USER", "DEST_USERS",
    "STRATEGY_USER_ORIENTED", "STRATEGY_KEY_ORIENTED",
    "STRATEGY_GROUP_ORIENTED", "STRATEGY_STAR", "STRATEGY_HYBRID",
    "MerkleTree", "MerkleSigner", "PerMessageSigner", "NullSigner",
    "SigningError", "verify_message",
    "Ticket", "TicketAuthority", "TicketError",
    "STRATEGIES", "PlannedMessage", "RekeyContext",
    "UserOrientedStrategy", "KeyOrientedStrategy", "GroupOrientedStrategy",
    "HybridStrategy",
]

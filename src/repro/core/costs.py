"""Analytic cost model (paper Tables 1, 2 and 3, §2.2 and §3.5).

All formulas are stated for a full and balanced d-ary key tree with
``n = d**(h-1)`` users (paper height h counts edges on the u-node to
root path), a star graph with n users, or a complete key graph with n
users.  The experiments cross-check the measured encryption counts
against these closed forms.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction


def tree_height(n_users: int, degree: int) -> int:
    """Paper height h for a full balanced d-ary tree over n users.

    ``h = ceil(log_d n) + 1`` (one edge from u-node to its leaf k-node,
    plus the k-node levels).
    """
    if n_users < 1:
        raise ValueError("need at least one user")
    if degree < 2:
        raise ValueError("degree must be >= 2")
    if n_users == 1:
        return 2  # individual key + group key
    return math.ceil(math.log(n_users, degree)) + 1


# -- Table 1: number of keys --------------------------------------------------

def star_total_keys(n_users: int) -> int:
    """Star: n individual keys + 1 group key."""
    return n_users + 1


def star_keys_per_user() -> int:
    """Star: every user holds exactly 2 keys (Table 1)."""
    return 2


def tree_total_keys(n_users: int, degree: int) -> Fraction:
    """Tree: ~ d/(d-1) * n for a full balanced tree (Table 1)."""
    return Fraction(degree, degree - 1) * n_users


def tree_total_keys_exact(n_users: int, degree: int) -> int:
    """Exact node count of the full balanced tree: (d^h' - 1)/(d - 1)
    with ``h' = h - 1`` key levels... computed by summing levels."""
    height = tree_height(n_users, degree)
    levels = height  # k-node levels: leaf level .. root (h of them)? no:
    # A user's path has h k-nodes; level sizes shrink by d from n leaves.
    total = 0
    size = n_users
    for _ in range(levels):
        total += size
        if size == 1:
            break
        size = math.ceil(size / degree)
    return total


def tree_keys_per_user(n_users: int, degree: int) -> int:
    """Tree: each user holds h keys."""
    return tree_height(n_users, degree)


def complete_total_keys(n_users: int) -> int:
    """Complete: one key per nonempty subset."""
    return 2 ** n_users - 1


def complete_keys_per_user(n_users: int) -> int:
    """Complete: one key per subset containing the user."""
    return 2 ** (n_users - 1)


# -- Table 2: per-operation encryption/decryption counts ---------------------------

@dataclass(frozen=True)
class OperationCosts:
    """Costs of one operation for the three parties of Table 2."""

    requesting_user: Fraction
    nonrequesting_user: Fraction
    server: Fraction


def star_costs(op: str, n_users: int) -> OperationCosts:
    """Table 2 star column for one operation."""
    if op == "join":
        return OperationCosts(Fraction(1), Fraction(1), Fraction(2))
    if op == "leave":
        return OperationCosts(Fraction(0), Fraction(1), Fraction(n_users - 1))
    raise ValueError(f"unknown op {op!r}")


def tree_costs(op: str, degree: int, height: int) -> OperationCosts:
    """Key-oriented / group-oriented tree costs (Table 2)."""
    nonreq = Fraction(degree, degree - 1)
    if op == "join":
        return OperationCosts(Fraction(height - 1), nonreq,
                              Fraction(2 * (height - 1)))
    if op == "leave":
        return OperationCosts(Fraction(0), nonreq,
                              Fraction(degree * (height - 1)))
    raise ValueError(f"unknown op {op!r}")


def complete_costs(op: str, n_users: int) -> OperationCosts:
    """Table 2 complete column for one operation."""
    if op == "join":
        return OperationCosts(Fraction(2 ** n_users),
                              Fraction(2 ** (n_users - 1)),
                              Fraction(2 ** (n_users + 1)))
    if op == "leave":
        return OperationCosts(Fraction(0), Fraction(0), Fraction(0))
    raise ValueError(f"unknown op {op!r}")


# -- strategy-specific server encryption counts (§3.3, §3.4) -----------------------

def user_oriented_join_cost(height: int) -> int:
    """``1 + 2 + ... + (h-1) + (h-1) = h(h+1)/2 - 1``."""
    return height * (height + 1) // 2 - 1


def user_oriented_leave_cost(degree: int, height: int) -> int:
    """``(d-1) * h(h-1)/2``."""
    return (degree - 1) * height * (height - 1) // 2


def key_oriented_join_cost(height: int) -> int:
    """``2(h-1)``."""
    return 2 * (height - 1)


def key_oriented_leave_cost(degree: int, height: int) -> int:
    """``d(h-1)`` (approximation used by the paper)."""
    return degree * (height - 1)


group_oriented_join_cost = key_oriented_join_cost
group_oriented_leave_cost = key_oriented_leave_cost


def rekey_messages_per_join(height: int) -> int:
    """User/key-oriented joins need h messages (combined); group needs 2."""
    return height


def rekey_messages_per_leave(degree: int, height: int) -> int:
    """User/key-oriented leaves need (d-1)(h-1) messages; group needs 1."""
    return (degree - 1) * (height - 1)


# -- Table 3: average cost per operation (1:1 join/leave mix) -------------------------

def star_average_server_cost(n_users: int) -> Fraction:
    """(2 + (n-1)) / 2 ~ n/2."""
    return Fraction(n_users, 2)


def tree_average_server_cost(degree: int, height: int) -> Fraction:
    """(d+2)(h-1)/2 — minimised at d = 4 (paper §3.5)."""
    return Fraction((degree + 2) * (height - 1), 2)


def tree_average_server_cost_for_group(degree: int, n_users: int) -> float:
    """(d+2) log_d(n) / 2 with a real-valued logarithm (for the d sweep)."""
    return (degree + 2) * math.log(n_users, degree) / 2


def complete_average_server_cost(n_users: int) -> Fraction:
    """Table 3: complete graphs average 2**n per operation."""
    return Fraction(2 ** n_users)


def star_average_user_cost() -> Fraction:
    """Table 3: one decryption per operation for a star user."""
    return Fraction(1)


def tree_average_user_cost(degree: int) -> Fraction:
    """d/(d-1) decryptions per non-requesting user (Figure 12's bound)."""
    return Fraction(degree, degree - 1)


def complete_average_user_cost(n_users: int) -> Fraction:
    """Table 3: exponential per-user cost for complete graphs."""
    return Fraction(2 ** n_users)


def optimal_tree_degree(n_users: int, candidates=range(2, 33)) -> int:
    """The degree minimising the average server cost — 4 in the paper."""
    return min(candidates,
               key=lambda d: tree_average_server_cost_for_group(d, n_users))

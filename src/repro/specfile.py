"""Server specification files (paper §5).

"The server is initialized from a specification file which determines
the initial group size, the rekeying strategy, the key tree degree, the
encryption algorithm, the message digest algorithm, the digital
signature algorithm, etc."

The format is ``key = value`` lines with ``#`` comments:

.. code-block:: ini

    # keyserver.spec — the paper's experimental configuration
    group-id          = 1
    graph             = tree
    initial-size      = 8192
    degree            = 4
    strategy          = group        # user | key | group | hybrid
    cipher            = des          # des | des3 | aes128 | aes256
    digest            = md5          # md5 | sha1 | sha256 | none
    signature         = rsa-512      # rsa-<bits> | none
    signing           = merkle       # none | per-message | merkle
    seed              = sigcomm98    # deterministic runs; omit for random
    access-list       = alice, bob   # omit for an open group
    backend           = object       # object | flat (tree storage engine)
    workers           = 0            # serve-layer worker pool (0 = auto)

Keys starting with ``slo-`` declare service-level objectives and are
parsed by :mod:`repro.observability.slo` rather than here:

.. code-block:: ini

    slo-join-p99      = latency rekey_seconds op=join threshold=50ms target=99%
    slo-availability  = availability target=99.5%
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from .core.server import ServerConfig, ServerError
from .crypto.suite import suite_from_spec


class SpecError(ValueError):
    """Raised on malformed specification files."""

_KNOWN_KEYS = {
    "group-id", "graph", "initial-size", "degree", "strategy", "cipher",
    "digest", "signature", "signing", "seed", "access-list", "backend",
    "workers",
}

_DEFAULTS = {
    "group-id": "1",
    "graph": "tree",
    "initial-size": "0",
    "degree": "4",
    "strategy": "group",
    "cipher": "des",
    "digest": "md5",
    "signature": "rsa-512",
    "signing": "merkle",
    "backend": "object",
    "workers": "0",
}


def parse_spec(text: str) -> Dict[str, str]:
    """Parse spec text into a key-value dict (validated keys)."""
    values: Dict[str, str] = {}
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        if "=" not in line:
            raise SpecError(f"line {line_number}: expected 'key = value'")
        key, _, value = line.partition("=")
        key = key.strip().lower()
        value = value.strip()
        if key not in _KNOWN_KEYS and not key.startswith("slo-"):
            raise SpecError(f"line {line_number}: unknown key {key!r}")
        if key in values:
            raise SpecError(f"line {line_number}: duplicate key {key!r}")
        if not value:
            raise SpecError(f"line {line_number}: empty value for {key!r}")
        values[key] = value
    return values


def _parse_int(values: Dict[str, str], key: str, minimum: int) -> int:
    try:
        result = int(values[key])
    except ValueError:
        raise SpecError(f"{key} must be an integer") from None
    if result < minimum:
        raise SpecError(f"{key} must be >= {minimum}")
    return result


def config_from_spec(text: str) -> Tuple[ServerConfig, int]:
    """Build a :class:`ServerConfig` plus the initial group size."""
    values = dict(_DEFAULTS)
    values.update(parse_spec(text))

    digest = values["digest"]
    signature = values["signature"]
    try:
        suite = suite_from_spec(values["cipher"],
                                None if digest == "none" else digest,
                                None if signature == "none" else signature)
    except ValueError as exc:
        raise SpecError(str(exc)) from None

    access_list: Optional[Set[str]] = None
    if "access-list" in values:
        access_list = {name.strip()
                       for name in values["access-list"].split(",")
                       if name.strip()}
        if not access_list:
            raise SpecError("access-list present but empty")

    seed = values.get("seed")
    config = ServerConfig(
        group_id=_parse_int(values, "group-id", 0),
        graph=values["graph"],
        degree=_parse_int(values, "degree", 2),
        strategy=values["strategy"],
        suite=suite,
        signing=values["signing"],
        seed=seed.encode("utf-8") if seed is not None else None,
        access_list=access_list,
        backend=values["backend"],
        workers=_parse_int(values, "workers", 0),
    )
    try:
        config.validate()
    except ServerError as exc:
        raise SpecError(str(exc)) from None
    return config, _parse_int(values, "initial-size", 0)


def load_spec(path: str) -> Tuple[ServerConfig, int]:
    """Read and parse a specification file from disk."""
    with open(path, "r", encoding="utf-8") as handle:
        return config_from_spec(handle.read())

"""Experiment runner: the paper's measurement loop (§5).

One :func:`run_experiment` call reproduces one experimental
configuration: bootstrap a group of ``initial_size`` members, then
process ``n_requests`` random join/leave requests, recording server-side
and client-side statistics.

``client_mode`` selects the fidelity/speed trade-off:

* ``"full"``      — every member is a real GroupClient that decrypts and
  verifies every message addressed to it (used by integration tests and
  small-scale runs; the simulator's synchrony is asserted at the end);
* ``"accounting"`` — rekey messages are generated and sized exactly as in
  full mode but client decryption is skipped; client-side metrics come
  from per-message receiver counts (how the big Table 5/6 sweeps run);
* ``"none"``      — server-side metrics only (fastest, Figure 10/11).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..core.client import ClientStats
from ..core.server import GroupKeyServer, RequestRecord, ServerConfig
from ..crypto.keycache import SHARED_CACHE
from ..crypto.suite import PAPER_SUITE, CipherSuite
from ..observability import Instrumentation, Stopwatch
from ..observability.export import build_snapshot
from .clients import ClientSimulator
from .metrics import ClientMetrics, ServerMetrics
from .workload import JOIN, Request, generate_workload, initial_members

CLIENT_MODES = ("full", "accounting", "none")


@dataclass
class ExperimentConfig:
    """One experimental configuration (one curve point in the figures)."""

    initial_size: int = 32
    n_requests: int = 100
    degree: int = 4
    strategy: str = "group"          # user | key | group | hybrid
    graph: str = "tree"              # tree | star
    suite: CipherSuite = PAPER_SUITE
    signing: str = "merkle"          # none | per-message | merkle
    join_fraction: float = 0.5
    seed: bytes = b"sigcomm98"
    client_mode: str = "accounting"
    verify_clients: bool = True

    def server_config(self) -> ServerConfig:
        """The ServerConfig this experiment runs with."""
        return ServerConfig(graph=self.graph, degree=self.degree,
                            strategy=self.strategy, suite=self.suite,
                            signing=self.signing, seed=self.seed)


@dataclass
class ExperimentResult:
    """Everything measured in one run."""

    config: ExperimentConfig
    records: List[RequestRecord]
    server_metrics: ServerMetrics
    client_metrics: ClientMetrics
    wall_seconds: float
    final_size: int
    final_height: int
    # Aggregated real-client counters; None outside "full" client mode.
    client_totals: Optional["ClientStats"] = None
    # The server's observability core: per-stage timer aggregates and
    # operation counters accumulated across the whole run.
    instrumentation: Optional[Instrumentation] = None
    # ``repro-metrics/1`` document: the server's registry merged with
    # the shared key-schedule cache's, labeled with the configuration.
    # Self-contained — ``python -m repro.observability report`` (or
    # ``render_report``) regenerates the paper-shaped tables from it.
    metrics_snapshot: Optional[dict] = None

    @property
    def mean_processing_ms(self) -> float:
        """Mean server processing time per request."""
        return self.server_metrics.overall_processing_ms


def run_experiment(config: ExperimentConfig,
                   requests: Optional[Sequence[Request]] = None) -> ExperimentResult:
    """Run one configuration; deterministic for a given config/seed."""
    if config.client_mode not in CLIENT_MODES:
        raise ValueError(f"unknown client mode {config.client_mode!r}")
    # Each configuration is measured from a cold key-schedule cache so
    # timings are comparable across runs (experiments with a shared seed
    # would otherwise warm each other's keys); within the run, the cache
    # works exactly as in production.
    SHARED_CACHE.clear()
    watch = Stopwatch()

    server = GroupKeyServer(config.server_config())
    members = initial_members(config.initial_size)
    member_keys = [(user_id, server.new_individual_key())
                   for user_id in members]
    server.bootstrap(member_keys)

    simulator: Optional[ClientSimulator] = None
    if config.client_mode == "full":
        simulator = ClientSimulator(config.suite, server.public_key,
                                    verify=config.verify_clients)
        for user_id, key in member_keys:
            simulator.add_member(user_id, key)
        simulator.prime_from_server(server)

    if requests is None:
        requests = generate_workload(members, config.n_requests,
                                     config.join_fraction,
                                     seed=config.seed + b"/requests")

    client_metrics = ClientMetrics()
    m_copies = server.instrumentation.registry.counter(
        "client_copies_total",
        "Rekey message copies delivered to clients (Table 6 measure).",
        labels=("op",))
    records: List[RequestRecord] = []
    for request in requests:
        if request.op == JOIN:
            key = server.new_individual_key()
            if simulator is not None:
                client = simulator.add_member(request.user_id, key)
            outcome = server.join(request.user_id, key)
            if simulator is not None:
                for control in outcome.control_messages:
                    client.process_control(control.encoded)
        else:
            outcome = server.leave(request.user_id)
        if simulator is not None:
            simulator.deliver_all(outcome.rekey_messages)
            if request.op != JOIN:
                simulator.remove_member(request.user_id)
        for message in outcome.rekey_messages:
            client_metrics.record_message(request.op, message.size,
                                          len(message.receivers))
            m_copies.inc(len(message.receivers), op=request.op)
        client_metrics.record_request(outcome.record)
        records.append(outcome.record)

    client_totals = None
    if simulator is not None:
        simulator.assert_synchronized(server)
        client_totals = simulator.total_stats()

    final_height = server.tree.height() if server.tree is not None else 2
    tracer = server.instrumentation.tracer
    snapshot = build_snapshot(
        server.instrumentation.registry,
        label=(f"{config.graph}/{config.strategy}"
               f"/n{config.initial_size}/{config.signing}"),
        spans=tracer.export() if tracer.enabled else None,
        extra=(SHARED_CACHE.registry,))
    return ExperimentResult(
        config=config,
        records=records,
        server_metrics=ServerMetrics.from_records(records),
        client_metrics=client_metrics,
        wall_seconds=watch.elapsed(),
        final_size=server.n_users,
        final_height=final_height,
        client_totals=client_totals,
        instrumentation=server.instrumentation,
        metrics_snapshot=snapshot,
    )


def run_sequences(config: ExperimentConfig, n_sequences: int = 3) -> List[ExperimentResult]:
    """The paper's protocol: repeat with ``n_sequences`` request sequences.

    The same sequences (same seeds) recur for every configuration that
    shares ``config.seed``, ``initial_size``, ``n_requests`` — the
    paper's fair-comparison discipline.
    """
    results = []
    for index in range(n_sequences):
        sequence_config = ExperimentConfig(**{**config.__dict__})
        sequence_config.seed = config.seed + b"/seq%d" % index
        results.append(run_experiment(sequence_config))
    return results


def merged_records(results: Sequence[ExperimentResult]) -> List[RequestRecord]:
    """Concatenate the records of several runs."""
    merged: List[RequestRecord] = []
    for result in results:
        merged.extend(result.records)
    return merged

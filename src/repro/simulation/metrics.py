"""Aggregation of experiment measurements into the paper's table rows.

The paper reports, per configuration: average/min/max rekey message
size, number of rekey messages, server processing time (msec) per
join/leave, and average key changes per client.  These dataclasses
compute exactly those aggregates from per-request records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from ..core.server import RequestRecord


@dataclass(frozen=True)
class Summary:
    """count / mean / min / max of a series."""

    count: int
    mean: float
    minimum: float
    maximum: float

    @classmethod
    def of(cls, values: Sequence[float]) -> "Summary":
        """Summarize a series (count/mean/min/max)."""
        values = list(values)
        if not values:
            return cls(0, 0.0, 0.0, 0.0)
        return cls(len(values), sum(values) / len(values),
                   min(values), max(values))


@dataclass
class OpMetrics:
    """Server-side aggregates for one operation type (join or leave)."""

    processing_ms: Summary
    n_messages: Summary
    message_bytes: Summary        # per-message size over all messages sent
    total_bytes: Summary          # per-request total bytes
    encryptions: Summary
    signatures: Summary

    @classmethod
    def from_records(cls, records: Sequence[RequestRecord]) -> "OpMetrics":
        """Aggregate per-request records of one op type."""
        per_message_sizes: List[float] = []
        for record in records:
            if record.n_rekey_messages:
                # The per-request mean message size, weighted below by
                # message count so the aggregate is a true per-message mean.
                per_message_sizes.extend(
                    [record.rekey_bytes / record.n_rekey_messages]
                    * record.n_rekey_messages)
        return cls(
            processing_ms=Summary.of([r.seconds * 1000 for r in records]),
            n_messages=Summary.of([r.n_rekey_messages for r in records]),
            message_bytes=Summary.of(per_message_sizes),
            total_bytes=Summary.of([r.rekey_bytes for r in records]),
            encryptions=Summary.of([r.encryptions for r in records]),
            signatures=Summary.of([r.signatures for r in records]),
        )


@dataclass
class ServerMetrics:
    """Join/leave/overall aggregates of one experiment run."""

    join: OpMetrics
    leave: OpMetrics
    overall_processing_ms: float

    @classmethod
    def from_records(cls, records: Sequence[RequestRecord]) -> "ServerMetrics":
        """Split records by op and aggregate."""
        joins = [r for r in records if r.op == "join"]
        leaves = [r for r in records if r.op == "leave"]
        times = [r.seconds * 1000 for r in records]
        return cls(
            join=OpMetrics.from_records(joins),
            leave=OpMetrics.from_records(leaves),
            overall_processing_ms=sum(times) / len(times) if times else 0.0,
        )


@dataclass
class MessageSizeSample:
    """One rekey message as experienced by its receivers."""

    op: str
    size: int
    n_receivers: int


@dataclass
class ClientMetrics:
    """Client-side aggregates (Table 6, Figure 12).

    Built from per-message receiver counts, so it is exact whether the
    clients were fully simulated or only accounted for.
    """

    samples: List[MessageSizeSample] = field(default_factory=list)
    # Per-request sums of key changes over non-requesting clients and the
    # non-requesting population size, for the Figure 12 average.
    key_change_totals: List[int] = field(default_factory=list)
    populations: List[int] = field(default_factory=list)

    def record_message(self, op: str, size: int, n_receivers: int) -> None:
        """Account one sent rekey message and its audience size."""
        self.samples.append(MessageSizeSample(op, size, n_receivers))

    def record_request(self, record: RequestRecord) -> None:
        """Account one request's key-change totals."""
        population = record.n_users_after - (1 if record.op == "join" else 0)
        if population > 0:
            self.key_change_totals.append(record.key_changes_total)
            self.populations.append(population)

    def received_size(self, op: Optional[str] = None) -> Summary:
        """Rekey message size as received (receiver-weighted mean)."""
        relevant = [s for s in self.samples
                    if (op is None or s.op == op) and s.n_receivers > 0]
        if not relevant:
            return Summary(0, 0.0, 0.0, 0.0)
        total_bytes = sum(s.size * s.n_receivers for s in relevant)
        total_copies = sum(s.n_receivers for s in relevant)
        return Summary(total_copies, total_bytes / total_copies,
                       min(s.size for s in relevant),
                       max(s.size for s in relevant))

    def messages_per_client_per_request(self, n_requests: int) -> float:
        """Average rekey messages a client receives per request."""
        if not self.populations or not n_requests:
            return 0.0
        total_copies = sum(s.n_receivers for s in self.samples)
        # Average population over the run approximates each client's view.
        mean_population = sum(self.populations) / len(self.populations)
        if mean_population == 0:
            return 0.0
        return total_copies / (n_requests * mean_population)

    def key_changes_per_client(self) -> float:
        """Figure 12's measure: mean over requests of (sum of key changes
        over non-requesting clients) / (number of non-requesting clients)."""
        if not self.key_change_totals:
            return 0.0
        ratios = [total / population for total, population
                  in zip(self.key_change_totals, self.populations)]
        return sum(ratios) / len(ratios)

"""Client simulator: hosts many GroupClient state machines (paper §5).

The paper ran up to 8192 simulated clients in one process on the second
SGI machine; this class is that process.  Each member is a real
:class:`~repro.core.client.GroupClient` that decrypts and verifies every
message addressed to it, so client-side statistics (Table 6, Figure 12)
come from actual protocol processing, not estimates.

Members of the initial (bootstrapped) group are primed with their key
path directly — the equivalent of having processed the initial n joins —
via :meth:`prime_member`.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional

from ..core.client import ClientStats, GroupClient
from ..core.messages import KeyRecord, OutboundMessage
from ..core.server import GroupKeyServer


class SimulatorError(RuntimeError):
    """Raised when the simulated client population diverges."""


class ClientSimulator:
    """A population of group clients with delivery plumbing."""

    def __init__(self, suite, server_public_key=None, verify: bool = True):
        self.suite = suite
        self.server_public_key = server_public_key
        self.verify = verify
        self.clients: Dict[str, GroupClient] = {}
        # Stats of clients that already left (so totals stay complete).
        self._departed_stats: List[ClientStats] = []

    def __len__(self) -> int:
        return len(self.clients)

    # -- membership ---------------------------------------------------------

    def add_member(self, user_id: str, individual_key: bytes) -> GroupClient:
        """Create and register a client with its individual key."""
        if user_id in self.clients:
            raise SimulatorError(f"duplicate client {user_id!r}")
        client = GroupClient(user_id, self.suite, self.server_public_key,
                             verify=self.verify)
        client.set_individual_key(individual_key)
        self.clients[user_id] = client
        return client

    def prime_member(self, user_id: str, leaf_node_id: int,
                     path_records: Iterable[KeyRecord],
                     root_ref) -> None:
        """Install a bootstrapped member's key path directly."""
        client = self.clients[user_id]
        client.set_leaf(leaf_node_id)
        for record in path_records:
            client.keys[record.node_id] = (record.version, record.key)
        client.root_ref = root_ref

    def prime_from_server(self, server: GroupKeyServer) -> None:
        """Prime every current client from the server's key tree."""
        if server.tree is None:
            ref = server.group_key_ref()
            for user_id, client in self.clients.items():
                client.keys[ref[0]] = (ref[1], server.star.group_key)
                client.root_ref = ref
            return
        root_ref = server.group_key_ref()
        for user_id, client in self.clients.items():
            path = server.tree.user_key_path(user_id)
            leaf = path[0]
            records = [KeyRecord(node.node_id, node.version, node.key)
                       for node in path[1:]]  # leaf key == individual key
            self.prime_member(user_id, leaf.node_id, records, root_ref)

    def remove_member(self, user_id: str) -> GroupClient:
        """Drop a departed client (its stats are retained)."""
        try:
            client = self.clients.pop(user_id)
        except KeyError:
            raise SimulatorError(f"unknown client {user_id!r}") from None
        self._departed_stats.append(client.stats)
        return client

    # -- delivery --------------------------------------------------------------

    def handler_for(self, user_id: str) -> Callable[[bytes], None]:
        """A transport receiver callback for ``user_id``."""
        def handle(payload: bytes) -> None:
            client = self.clients.get(user_id)
            if client is not None:
                client.process_message(payload)
        return handle

    def deliver(self, outbound: OutboundMessage) -> None:
        """Direct (transport-less) delivery to each receiver."""
        payload = outbound.encoded or outbound.message.encode()
        for user_id in outbound.receivers:
            client = self.clients.get(user_id)
            if client is None:
                raise SimulatorError(
                    f"message addressed to unknown client {user_id!r}")
            client.process_message(payload)

    def deliver_all(self, messages: Iterable[OutboundMessage]) -> None:
        """Deliver a batch of outbound messages."""
        for outbound in messages:
            self.deliver(outbound)

    # -- verification ---------------------------------------------------------------

    def assert_synchronized(self, server: GroupKeyServer) -> None:
        """Every current client must hold exactly the server's group key."""
        expected = server.group_key()
        members = set(server.members())
        if members != set(self.clients):
            raise SimulatorError(
                "membership divergence: "
                f"server-only={sorted(members - set(self.clients))[:5]} "
                f"sim-only={sorted(set(self.clients) - members)[:5]}")
        for user_id, client in self.clients.items():
            if client.group_key() != expected:
                raise SimulatorError(
                    f"client {user_id!r} is missing the current group key")

    # -- statistics ----------------------------------------------------------------

    def total_stats(self) -> ClientStats:
        """Sum of counters over current and departed clients."""
        total = ClientStats()
        for stats in list(self._departed_stats) + [
                client.stats for client in self.clients.values()]:
            total.rekey_messages += stats.rekey_messages
            total.rekey_bytes += stats.rekey_bytes
            total.decryptions += stats.decryptions
            total.keys_changed += stats.keys_changed
            total.verify_failures += stats.verify_failures
            total.processing_seconds += stats.processing_seconds
            total.desyncs_detected += stats.desyncs_detected
            total.resyncs += stats.resyncs
        return total

"""Experiment trace export (CSV / JSON lines).

The paper's figures were produced from measurement logs; this module
writes the equivalent machine-readable traces so results can be
post-processed or plotted outside this library:

* :func:`records_to_csv` — one row per request (the Figure 10/11 raw data);
* :func:`result_to_json_lines` — full experiment result, one JSON object
  per request plus a summary object;
* :func:`sweep_to_csv` — one row per (configuration, aggregate) for
  sweep experiments.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Iterable, List, Sequence

from ..core.server import RequestRecord
from .runner import ExperimentResult

RECORD_FIELDS = ("op", "user_id", "ms", "n_rekey_messages", "rekey_bytes",
                 "max_message_bytes", "encryptions", "signatures",
                 "key_changes_total", "n_users_after")


def records_to_csv(records: Sequence[RequestRecord]) -> str:
    """Per-request rows: the raw samples behind Figures 10 and 11."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(RECORD_FIELDS)
    for record in records:
        writer.writerow([
            record.op, record.user_id, f"{record.seconds * 1000:.4f}",
            record.n_rekey_messages, record.rekey_bytes,
            record.max_message_bytes, record.encryptions,
            record.signatures, record.key_changes_total,
            record.n_users_after,
        ])
    return buffer.getvalue()


def result_to_json_lines(result: ExperimentResult) -> str:
    """One JSON object per request, then a summary object."""
    lines: List[str] = []
    config = result.config
    for record in result.records:
        lines.append(json.dumps({
            "type": "request",
            "op": record.op,
            "ms": round(record.seconds * 1000, 4),
            "messages": record.n_rekey_messages,
            "bytes": record.rekey_bytes,
            "encryptions": record.encryptions,
            "signatures": record.signatures,
            "n_users": record.n_users_after,
        }))
    lines.append(json.dumps({
        "type": "summary",
        "initial_size": config.initial_size,
        "degree": config.degree,
        "strategy": config.strategy,
        "graph": config.graph,
        "signing": config.signing,
        "cipher": config.suite.cipher_name,
        "n_requests": len(result.records),
        "mean_ms": round(result.mean_processing_ms, 4),
        "final_size": result.final_size,
        "final_height": result.final_height,
        "key_changes_per_client": round(
            result.client_metrics.key_changes_per_client(), 4),
        "wall_seconds": round(result.wall_seconds, 3),
    }))
    return "\n".join(lines) + "\n"


def sweep_to_csv(results: Iterable[ExperimentResult]) -> str:
    """Aggregate rows for a sweep (one per configuration)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["initial_size", "degree", "strategy", "signing",
                     "cipher", "mean_ms", "join_ms", "leave_ms",
                     "join_enc", "leave_enc", "final_height"])
    for result in results:
        config = result.config
        metrics = result.server_metrics
        writer.writerow([
            config.initial_size, config.degree, config.strategy,
            config.signing, config.suite.cipher_name,
            f"{result.mean_processing_ms:.4f}",
            f"{metrics.join.processing_ms.mean:.4f}",
            f"{metrics.leave.processing_ms.mean:.4f}",
            f"{metrics.join.encryptions.mean:.2f}",
            f"{metrics.leave.encryptions.mean:.2f}",
            result.final_height,
        ])
    return buffer.getvalue()


def write_trace(path: str, content: str) -> None:
    """Write a trace file (tiny helper so examples stay one-liners)."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(content)

"""Join/leave workload generation (paper §5).

The paper's client-simulator sends an initial burst of ``n`` joins, then
1000 join/leave requests "generated randomly according to a given ratio"
(1:1 in all presented experiments), with three different sequences per
configuration and the same three sequences reused across configurations
for fair comparison.

:func:`generate_workload` reproduces that: a seeded DRBG drives the
choice, joins bring in fresh users, leaves pick a uniformly random
current member, and a given (seed, parameters) pair always yields the
same sequence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..crypto import drbg

JOIN = "join"
LEAVE = "leave"


@dataclass(frozen=True)
class Request:
    """One workload step."""

    op: str       # JOIN or LEAVE
    user_id: str


def initial_members(n: int, prefix: str = "m") -> List[str]:
    """User ids for the initial group ("m0000" ... )."""
    width = max(4, len(str(max(n - 1, 0))))
    return [f"{prefix}{i:0{width}d}" for i in range(n)]


def generate_workload(initial: Sequence[str], n_requests: int,
                      join_fraction: float = 0.5,
                      seed: bytes = b"workload",
                      joiner_prefix: str = "j") -> List[Request]:
    """Random join/leave sequence over an evolving membership.

    ``join_fraction`` is the probability of each request being a join
    (0.5 = the paper's 1:1 ratio).  A leave drawn while the group is
    empty becomes a join; a join is always possible (fresh user ids).
    """
    if not 0.0 <= join_fraction <= 1.0:
        raise ValueError("join_fraction must be in [0, 1]")
    source = drbg.make_source(seed, b"workload")
    members = list(initial)
    requests: List[Request] = []
    next_joiner = 0
    threshold = int(join_fraction * (1 << 20))
    for _ in range(n_requests):
        wants_join = source.randint_below(1 << 20) < threshold
        if wants_join or not members:
            user_id = f"{joiner_prefix}{next_joiner:06d}"
            next_joiner += 1
            members.append(user_id)
            requests.append(Request(JOIN, user_id))
        else:
            index = source.randint_below(len(members))
            user_id = members.pop(index)
            requests.append(Request(LEAVE, user_id))
    return requests


def paper_sequences(initial: Sequence[str], n_requests: int = 1000,
                    join_fraction: float = 0.5,
                    base_seed: bytes = b"sigcomm98") -> List[List[Request]]:
    """The paper's three independent sequences for one group size.

    Reusing ``base_seed`` reproduces the same three sequences across
    strategies/degrees, matching the paper's fair-comparison setup.
    """
    return [generate_workload(initial, n_requests, join_fraction,
                              seed=base_seed + b"/%d" % i)
            for i in range(3)]

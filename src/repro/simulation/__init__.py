"""Experiment harness: workload generation, client simulation, metrics."""

from .clients import ClientSimulator, SimulatorError
from .metrics import (ClientMetrics, MessageSizeSample, OpMetrics,
                      ServerMetrics, Summary)
from .runner import (CLIENT_MODES, ExperimentConfig, ExperimentResult,
                     merged_records, run_experiment, run_sequences)
from .trace import (records_to_csv, result_to_json_lines, sweep_to_csv,
                    write_trace)
from .workload import (JOIN, LEAVE, Request, generate_workload,
                       initial_members, paper_sequences)

__all__ = [
    "ClientSimulator", "SimulatorError",
    "ClientMetrics", "MessageSizeSample", "OpMetrics", "ServerMetrics",
    "Summary",
    "ExperimentConfig", "ExperimentResult", "CLIENT_MODES",
    "run_experiment", "run_sequences", "merged_records",
    "JOIN", "LEAVE", "Request", "generate_workload", "initial_members",
    "paper_sequences",
    "records_to_csv", "result_to_json_lines", "sweep_to_csv", "write_trace",
]

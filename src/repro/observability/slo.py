"""Declarative service-level objectives over metric snapshots.

Objectives are declared in the server spec file as ``slo-<name>`` keys
(the spec parser passes any ``slo-`` key through untouched):

.. code-block:: ini

    slo-join-p99     = latency rekey_seconds op=join threshold=50ms target=99%
    slo-availability = availability target=99.5%

A **latency** objective names a histogram family; an event is *good*
when it lands in a bucket whose upper bound is within the threshold, so
compliance is exact with respect to the recorded buckets (the threshold
is rounded up to the next bucket edge).  An **availability** objective
counts served requests as good and sheds/errors as bad, from the
serving-core counter families.

:func:`evaluate` grades objectives against one
:func:`~repro.observability.metrics.MetricRegistry.snapshot`-shaped
dict; :func:`burn_rate` compares two snapshots and reports how fast the
error budget is burning (1.0 = exactly consuming the budget; >1 means
the objective will be violated if the rate holds).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple


class SLOError(ValueError):
    """Raised on malformed objective declarations."""


#: Counter families an availability objective reads (good = requests
#: minus sheds and errors).
_REQUESTS_FAMILY = "serve_requests_total"
_BAD_FAMILIES = ("serve_shed_total", "serve_errors_total")


@dataclass(frozen=True)
class SLO:
    """One declared objective."""

    name: str
    kind: str                               # "latency" | "availability"
    target: float                           # good fraction, 0 < target < 1
    metric: str = ""                        # histogram family (latency)
    labels: Tuple[Tuple[str, str], ...] = ()  # label filter, sorted
    threshold_s: float = 0.0                # latency bound in seconds

    def describe(self) -> str:
        """One-line human rendering of the declaration."""
        if self.kind == "latency":
            labels = ",".join(f"{k}={v}" for k, v in self.labels)
            selector = f"{self.metric}{{{labels}}}" if labels else self.metric
            return (f"{self.name}: {selector} <= "
                    f"{self.threshold_s * 1e3:g}ms for "
                    f"{self.target * 100:g}% of ops")
        return f"{self.name}: availability >= {self.target * 100:g}%"


@dataclass
class SLOStatus:
    """The grade of one objective against one snapshot."""

    slo: SLO
    total: float
    good: float
    compliance: float        # good/total, 1.0 when total == 0
    compliant: bool
    budget_remaining: float  # fraction of error budget left, may be < 0

    @property
    def bad(self) -> float:
        """Events that missed the objective."""
        return self.total - self.good


def _parse_duration_s(text: str) -> float:
    """``50ms`` / ``2s`` / ``150us`` / bare seconds -> seconds."""
    text = text.strip().lower()
    for suffix, scale in (("us", 1e-6), ("ms", 1e-3), ("s", 1.0)):
        if text.endswith(suffix):
            text = text[:-len(suffix)]
            break
    else:
        scale = 1.0
    try:
        value = float(text)
    except ValueError:
        raise SLOError(f"bad duration {text!r}") from None
    if value <= 0:
        raise SLOError("duration must be > 0")
    return value * scale


def _parse_target(text: str) -> float:
    """``99.9%`` or ``0.999`` -> fraction in (0, 1)."""
    text = text.strip()
    if text.endswith("%"):
        try:
            value = float(text[:-1]) / 100.0
        except ValueError:
            raise SLOError(f"bad target {text!r}") from None
    else:
        try:
            value = float(text)
        except ValueError:
            raise SLOError(f"bad target {text!r}") from None
    if not 0.0 < value < 1.0:
        raise SLOError(f"target must be within (0, 1), got {text!r}")
    return value


def parse_slo(name: str, declaration: str) -> SLO:
    """Parse one ``slo-<name> = <declaration>`` value.

    Tokens are whitespace-separated: the first is the kind, a bare token
    names the metric family, ``key=value`` tokens set ``threshold``,
    ``target``, or act as label filters.
    """
    tokens = declaration.split()
    if not tokens:
        raise SLOError(f"slo {name!r}: empty declaration")
    kind = tokens[0].lower()
    if kind not in ("latency", "availability"):
        raise SLOError(f"slo {name!r}: unknown kind {kind!r}")
    metric = ""
    threshold: Optional[float] = None
    target: Optional[float] = None
    labels: Dict[str, str] = {}
    for token in tokens[1:]:
        if "=" not in token:
            if metric:
                raise SLOError(f"slo {name!r}: two metric names "
                               f"({metric!r}, {token!r})")
            metric = token
            continue
        key, _, value = token.partition("=")
        key = key.strip().lower()
        if key == "threshold":
            threshold = _parse_duration_s(value)
        elif key == "target":
            target = _parse_target(value)
        elif key:
            labels[key] = value
        else:
            raise SLOError(f"slo {name!r}: bad token {token!r}")
    if target is None:
        raise SLOError(f"slo {name!r}: missing target=")
    if kind == "latency":
        if not metric:
            raise SLOError(f"slo {name!r}: latency objective needs a "
                           f"metric family name")
        if threshold is None:
            raise SLOError(f"slo {name!r}: latency objective needs "
                           f"threshold=")
    else:
        if metric or threshold is not None or labels:
            raise SLOError(f"slo {name!r}: availability takes only "
                           f"target=")
    return SLO(name=name, kind=kind, target=target, metric=metric,
               labels=tuple(sorted(labels.items())),
               threshold_s=threshold or 0.0)


def slos_from_spec(values: Mapping[str, str]) -> List[SLO]:
    """Extract objectives from parsed spec key-values (``slo-*`` keys)."""
    slos = []
    for key in sorted(values):
        if key.startswith("slo-"):
            slos.append(parse_slo(key[len("slo-"):], values[key]))
    return slos


def slos_from_spec_text(text: str) -> List[SLO]:
    """Extract objectives straight from spec file text."""
    from ..specfile import parse_spec
    return slos_from_spec(parse_spec(text))


# -- evaluation -------------------------------------------------------------


def _series_matches(series_labels: Mapping[str, str],
                    wanted: Sequence[Tuple[str, str]]) -> bool:
    return all(series_labels.get(key) == value for key, value in wanted)


def _latency_tally(slo: SLO, snapshot: dict) -> Tuple[float, float]:
    entry = snapshot.get("histograms", {}).get(slo.metric)
    if entry is None:
        return 0.0, 0.0
    bounds = entry.get("bounds", [])
    # Good = observations in buckets whose upper bound is within the
    # threshold (tiny tolerance so threshold == bound counts the bucket).
    good_buckets = sum(1 for bound in bounds
                      if bound <= slo.threshold_s * (1 + 1e-9))
    total = good = 0.0
    for series in entry.get("series", []):
        if not _series_matches(series.get("labels", {}), slo.labels):
            continue
        total += series.get("count", 0)
        good += sum(series.get("counts", [])[:good_buckets])
    return total, good


def _counter_total(snapshot: dict, family: str) -> float:
    entry = snapshot.get("counters", {}).get(family)
    if entry is None:
        return 0.0
    return sum(series.get("value", 0.0)
               for series in entry.get("series", []))


def _availability_tally(snapshot: dict) -> Tuple[float, float]:
    requests = _counter_total(snapshot, _REQUESTS_FAMILY)
    bad = sum(_counter_total(snapshot, family) for family in _BAD_FAMILIES)
    # Sheds/errors are counted within serve_requests_total, so total is
    # the request count and good is what remains after the bad ones.
    total = max(requests, bad)
    return total, total - bad


def _tally(slo: SLO, snapshot: dict) -> Tuple[float, float]:
    # Accept either a bare registry snapshot or the exported document
    # envelope ({"schema": ..., "metrics": {...}}) that scrapes return.
    if "metrics" in snapshot and isinstance(snapshot["metrics"], dict):
        snapshot = snapshot["metrics"]
    if slo.kind == "latency":
        return _latency_tally(slo, snapshot)
    return _availability_tally(snapshot)


def evaluate_one(slo: SLO, snapshot: dict) -> SLOStatus:
    """Grade one objective against one metric snapshot."""
    total, good = _tally(slo, snapshot)
    compliance = good / total if total else 1.0
    budget = 1.0 - slo.target
    bad_fraction = 1.0 - compliance
    budget_remaining = 1.0 - bad_fraction / budget if budget else 0.0
    return SLOStatus(slo=slo, total=total, good=good,
                     compliance=compliance,
                     compliant=compliance >= slo.target or not total,
                     budget_remaining=budget_remaining)


def evaluate(slos: Sequence[SLO], snapshot: dict) -> List[SLOStatus]:
    """Grade every objective against one metric snapshot."""
    return [evaluate_one(slo, snapshot) for slo in slos]


def burn_rate(slo: SLO, older: dict, newer: dict) -> float:
    """Error-budget burn rate between two snapshots of one registry.

    ``(bad_delta / total_delta) / (1 - target)`` — 0.0 with no traffic
    in the window, 1.0 when errors arrive at exactly the budgeted rate.
    """
    old_total, old_good = _tally(slo, older)
    new_total, new_good = _tally(slo, newer)
    total_delta = new_total - old_total
    if total_delta <= 0:
        return 0.0
    bad_delta = (new_total - new_good) - (old_total - old_good)
    budget = 1.0 - slo.target
    if budget <= 0:
        return 0.0
    return max(0.0, bad_delta / total_delta) / budget


def render_slo_report(statuses: Sequence[SLOStatus],
                      burn_rates: Optional[Mapping[str, float]] = None
                      ) -> str:
    """Multi-line text report, one row per objective."""
    if not statuses:
        return "no objectives declared\n"
    rows = []
    for status in statuses:
        row = {
            "slo": status.slo.name,
            "kind": status.slo.kind,
            "target": f"{status.slo.target * 100:.3g}%",
            "total": f"{status.total:g}",
            "good": f"{status.good:g}",
            "compliance": f"{status.compliance * 100:.4g}%",
            "budget": f"{status.budget_remaining * 100:+.3g}%",
            "status": "OK" if status.compliant else "BREACH",
        }
        if burn_rates is not None:
            row["burn"] = f"{burn_rates.get(status.slo.name, 0.0):.2f}x"
        rows.append(row)
    headers = list(rows[0])
    widths = {h: max(len(h), *(len(r[h]) for r in rows)) for h in headers}
    lines = ["  ".join(h.ljust(widths[h]) for h in headers)]
    lines.append("  ".join("-" * widths[h] for h in headers))
    for row in rows:
        lines.append("  ".join(row[h].ljust(widths[h]) for h in headers))
    for status in statuses:
        lines.append("")
        lines.append(status.slo.describe())
    return "\n".join(lines) + "\n"

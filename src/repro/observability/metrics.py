"""Labeled metrics: a thread-safe registry of counters, gauges, histograms.

The paper's §5 measurements — server processing time per join/leave,
rekey message counts and sizes, client key changes (Tables 4-6,
Figures 10-12) — all reduce to three metric shapes:

* :class:`Counter` — monotonic totals (messages sent, bytes, encryptions);
* :class:`Gauge` — point-in-time levels (group size, cache occupancy);
* :class:`Histogram` — latency/size distributions over fixed log-scale
  buckets, so join/leave/rekey percentiles are queryable after the run.

A :class:`MetricRegistry` owns metric *families*; a family plus a tuple
of label values names one *series* (``rekey_seconds{op="join"}``).
Families are created once (idempotently) and label children are cached,
so the hot path is one dict hit plus one locked add.

``snapshot()`` freezes every series into a plain, deterministic,
JSON-friendly dict (series sorted by label values, independent of
``PYTHONHASHSEED``); ``merge()``/:func:`merge_snapshots` fold snapshots
from parallel workers into one: counters and histograms add, gauges
adopt the incoming value.

:data:`NULL_REGISTRY` is the zero-overhead stand-in — every family it
returns discards updates — so instrumented components can create their
series unconditionally and pay nothing when telemetry is disabled.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple

#: Log-scale (powers of two) latency bucket upper bounds in seconds,
#: 1 microsecond .. ~16.8 seconds.  Fixed so snapshots from different
#: runs/workers are always mergeable and percentiles comparable.
LATENCY_BUCKETS_S: Tuple[float, ...] = tuple(
    1e-6 * (1 << k) for k in range(25))

#: Log-scale size bucket upper bounds in bytes, 64 B .. 2 MiB.
SIZE_BUCKETS_BYTES: Tuple[float, ...] = tuple(
    float(1 << k) for k in range(6, 22))

#: Log-scale count bucket upper bounds (1 .. 65536), for per-request
#: cardinalities such as encryptions or rekey messages.
COUNT_BUCKETS: Tuple[float, ...] = tuple(float(1 << k) for k in range(17))


class MetricError(ValueError):
    """Raised on inconsistent metric declarations or malformed merges."""


class Counter:
    """One monotonic series."""

    __slots__ = ("_lock", "_value")

    def __init__(self, lock: threading.Lock):
        self._lock = lock
        self._value = 0.0

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` (must be >= 0) to the series."""
        if amount < 0:
            raise MetricError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """Current total."""
        return self._value


class Gauge:
    """One point-in-time series."""

    __slots__ = ("_lock", "_value")

    def __init__(self, lock: threading.Lock):
        self._lock = lock
        self._value = 0.0

    def set(self, value: float) -> None:
        """Replace the current value."""
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1) -> None:
        """Adjust the current value by ``amount``."""
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1) -> None:
        """Adjust the current value by ``-amount``."""
        self.inc(-amount)

    @property
    def value(self) -> float:
        """Current level."""
        return self._value


class Histogram:
    """One distribution series over fixed bucket upper bounds.

    ``counts[i]`` counts observations ``<= bounds[i]``; the final slot
    is the overflow (``+Inf``) bucket.  ``sum``/``count``/``min``/``max``
    ride along so means and ranges survive the bucketing.
    """

    __slots__ = ("bounds", "counts", "sum", "count", "min", "max", "_lock")

    def __init__(self, bounds: Sequence[float], lock: threading.Lock):
        self.bounds = tuple(float(b) for b in bounds)
        if not self.bounds or list(self.bounds) != sorted(set(self.bounds)):
            raise MetricError("bucket bounds must be sorted and distinct")
        self.counts = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0
        self.min = float("inf")
        self.max = float("-inf")
        self._lock = lock

    def observe(self, value: float) -> None:
        """Fold one observation into the distribution."""
        value = float(value)
        index = bisect_left(self.bounds, value)
        with self._lock:
            self.counts[index] += 1
            self.sum += value
            self.count += 1
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value

    @property
    def mean(self) -> float:
        """Mean observation (0.0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (0 <= q <= 1) from the buckets.

        Linear interpolation inside the bucket containing the target
        rank; observations in the overflow bucket report the observed
        maximum (there is no finite upper edge to interpolate toward).
        """
        if not 0.0 <= q <= 1.0:
            raise MetricError("quantile must be within [0, 1]")
        if not self.count:
            return 0.0
        target = q * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            if not bucket_count:
                continue
            if cumulative + bucket_count >= target:
                if index >= len(self.bounds):
                    return self.max
                upper = self.bounds[index]
                lower = self.bounds[index - 1] if index else 0.0
                fraction = (target - cumulative) / bucket_count
                estimate = lower + (upper - lower) * fraction
                # Never report outside the observed range.
                return min(max(estimate, self.min), self.max)
            cumulative += bucket_count
        return self.max


class _Family:
    """A named metric family: one child series per label-value tuple."""

    __slots__ = ("name", "help", "labelnames", "_children", "_lock",
                 "_registry")

    kind = ""

    def __init__(self, registry: "MetricRegistry", name: str, help_text: str,
                 labelnames: Tuple[str, ...]):
        self.name = name
        self.help = help_text
        self.labelnames = labelnames
        self._children: Dict[Tuple[str, ...], object] = {}
        self._lock = registry._lock
        self._registry = registry

    def _make_child(self):
        raise NotImplementedError

    def labels(self, **labelvalues: str):
        """The child series for these label values (created on demand)."""
        if set(labelvalues) != set(self.labelnames):
            raise MetricError(
                f"{self.name}: expected labels {self.labelnames}, "
                f"got {tuple(sorted(labelvalues))}")
        key = tuple(str(labelvalues[name]) for name in self.labelnames)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.get(key)
                if child is None:
                    child = self._children[key] = self._make_child()
        return child

    def series(self) -> List[Tuple[Tuple[str, ...], object]]:
        """(label values, child) pairs, sorted by label values."""
        return sorted(self._children.items())


class CounterFamily(_Family):
    """Family of :class:`Counter` series."""

    __slots__ = ()
    kind = "counter"

    def _make_child(self) -> Counter:
        return Counter(self._lock)

    def inc(self, amount: float = 1, **labelvalues: str) -> None:
        """Shortcut: increment the series for ``labelvalues``."""
        self.labels(**labelvalues).inc(amount)


class GaugeFamily(_Family):
    """Family of :class:`Gauge` series."""

    __slots__ = ()
    kind = "gauge"

    def _make_child(self) -> Gauge:
        return Gauge(self._lock)

    def set(self, value: float, **labelvalues: str) -> None:
        """Shortcut: set the series for ``labelvalues``."""
        self.labels(**labelvalues).set(value)

    def inc(self, amount: float = 1, **labelvalues: str) -> None:
        """Shortcut: increment the series for ``labelvalues``."""
        self.labels(**labelvalues).inc(amount)

    def dec(self, amount: float = 1, **labelvalues: str) -> None:
        """Shortcut: decrement the series for ``labelvalues``."""
        self.labels(**labelvalues).dec(amount)


class HistogramFamily(_Family):
    """Family of :class:`Histogram` series sharing one bucket layout."""

    __slots__ = ("bounds",)
    kind = "histogram"

    def __init__(self, registry, name, help_text, labelnames,
                 bounds: Sequence[float]):
        super().__init__(registry, name, help_text, labelnames)
        self.bounds = tuple(float(b) for b in bounds)

    def _make_child(self) -> Histogram:
        return Histogram(self.bounds, self._lock)

    def observe(self, value: float, **labelvalues: str) -> None:
        """Shortcut: observe into the series for ``labelvalues``."""
        self.labels(**labelvalues).observe(value)


class MetricRegistry:
    """Thread-safe collection of metric families.

    Family creation is idempotent: asking for an existing name returns
    the existing family, provided the declaration (kind, labels, bucket
    bounds) matches — a mismatch raises :class:`MetricError` rather than
    silently forking the series.
    """

    def __init__(self, name: str = ""):
        self.name = name
        self._lock = threading.Lock()
        # Serialises collector callbacks across concurrent snapshots.
        # Deliberately separate from ``_lock``: collectors update series,
        # and series operations take ``_lock`` themselves.
        self._collector_lock = threading.Lock()
        self._families: Dict[str, _Family] = {}
        self._collectors: List = []

    # -- declaration -------------------------------------------------------

    def _declare(self, cls, name: str, help_text: str,
                 labels: Sequence[str], **kwargs) -> _Family:
        labelnames = tuple(labels)
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise MetricError(
                        f"{name!r} already declared as {existing.kind}")
                if existing.labelnames != labelnames:
                    raise MetricError(
                        f"{name!r} already declared with labels "
                        f"{existing.labelnames}")
                bounds = kwargs.get("bounds")
                if bounds is not None and existing.bounds != tuple(bounds):
                    raise MetricError(
                        f"{name!r} already declared with other buckets")
                return existing
            family = cls(self, name, help_text, labelnames, **kwargs)
            self._families[name] = family
            return family

    def counter(self, name: str, help_text: str = "",
                labels: Sequence[str] = ()) -> CounterFamily:
        """Declare (or fetch) a counter family."""
        return self._declare(CounterFamily, name, help_text, labels)

    def gauge(self, name: str, help_text: str = "",
              labels: Sequence[str] = ()) -> GaugeFamily:
        """Declare (or fetch) a gauge family."""
        return self._declare(GaugeFamily, name, help_text, labels)

    def histogram(self, name: str, help_text: str = "",
                  labels: Sequence[str] = (),
                  bounds: Sequence[float] = LATENCY_BUCKETS_S
                  ) -> HistogramFamily:
        """Declare (or fetch) a histogram family with fixed buckets."""
        return self._declare(HistogramFamily, name, help_text, labels,
                             bounds=tuple(bounds))

    def add_collector(self, collector) -> None:
        """Register ``collector(registry)`` to run before each snapshot.

        Collectors publish state that lives outside the registry (cache
        occupancy, queue depths) as up-to-date series at snapshot time
        instead of on every hot-path update.
        """
        self._collectors.append(collector)

    # -- introspection -----------------------------------------------------

    def families(self) -> List[_Family]:
        """All families, sorted by name."""
        return [self._families[name] for name in sorted(self._families)]

    def get(self, name: str) -> Optional[_Family]:
        """The named family, or None."""
        return self._families.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._families

    def __len__(self) -> int:
        return len(self._families)

    # -- snapshot / merge --------------------------------------------------

    def snapshot(self) -> dict:
        """Freeze every series into a deterministic plain dict.

        Shape (all maps key-sorted, series sorted by label values):

        .. code-block:: python

            {"counters":   {name: {"help", "labels", "series": [
                               {"labels": {...}, "value": v}]}},
             "gauges":     {... same ...},
             "histograms": {name: {"help", "labels", "bounds",
                                   "series": [{"labels": {...},
                                               "counts": [...],
                                               "count", "sum",
                                               "min", "max"}]}}}
        """
        # Collectors typically publish *deltas* of external state (e.g.
        # transport stats), a read-modify-write on their own baseline.
        # Two unserialised concurrent snapshots would both read the same
        # baseline and double-count the delta, so collectors run under a
        # dedicated lock (not ``_lock`` — they update series, which take
        # ``_lock`` internally).
        with self._collector_lock:
            for collector in list(self._collectors):
                collector(self)
        counters: Dict[str, dict] = {}
        gauges: Dict[str, dict] = {}
        histograms: Dict[str, dict] = {}
        with self._lock:
            for name in sorted(self._families):
                family = self._families[name]
                series = []
                for labelvalues, child in family.series():
                    labels = dict(zip(family.labelnames, labelvalues))
                    if family.kind == "histogram":
                        series.append({
                            "labels": labels,
                            "counts": list(child.counts),
                            "count": child.count,
                            "sum": child.sum,
                            "min": child.min if child.count else 0.0,
                            "max": child.max if child.count else 0.0,
                        })
                    else:
                        series.append({"labels": labels,
                                       "value": child.value})
                entry = {"help": family.help,
                         "labels": list(family.labelnames),
                         "series": series}
                if family.kind == "counter":
                    counters[name] = entry
                elif family.kind == "gauge":
                    gauges[name] = entry
                else:
                    entry["bounds"] = list(family.bounds)
                    histograms[name] = entry
        return {"counters": counters, "gauges": gauges,
                "histograms": histograms}

    def merge(self, snapshot: dict) -> None:
        """Fold a :meth:`snapshot`-shaped dict into the live registry.

        Counters and histograms add; gauges adopt the incoming value.
        Histogram layouts must match (same bounds) or the merge raises.
        """
        for name, entry in snapshot.get("counters", {}).items():
            family = self.counter(name, entry.get("help", ""),
                                  entry.get("labels", ()))
            for series in entry["series"]:
                family.labels(**series["labels"]).inc(series["value"])
        for name, entry in snapshot.get("gauges", {}).items():
            family = self.gauge(name, entry.get("help", ""),
                                entry.get("labels", ()))
            for series in entry["series"]:
                family.labels(**series["labels"]).set(series["value"])
        for name, entry in snapshot.get("histograms", {}).items():
            family = self.histogram(name, entry.get("help", ""),
                                    entry.get("labels", ()),
                                    bounds=entry["bounds"])
            for series in entry["series"]:
                child = family.labels(**series["labels"])
                if len(series["counts"]) != len(child.counts):
                    raise MetricError(
                        f"{name!r}: bucket layout mismatch in merge")
                incoming_count = series["count"]
                with self._lock:
                    for index, add in enumerate(series["counts"]):
                        child.counts[index] += add
                    child.sum += series["sum"]
                    child.count += incoming_count
                    if incoming_count:
                        child.min = min(child.min, series["min"])
                        child.max = max(child.max, series["max"])

    def reset_values(self) -> None:
        """Zero every series in place.

        Family and child *objects* survive (components cache references
        to their label children), so a live server keeps reporting into
        the same series after a reset.
        """
        with self._lock:
            for family in self._families.values():
                for _labels, child in family._children.items():
                    if isinstance(child, Histogram):
                        child.counts = [0] * len(child.counts)
                        child.sum = 0.0
                        child.count = 0
                        child.min = float("inf")
                        child.max = float("-inf")
                    else:
                        child._value = 0.0

    def clear(self) -> None:
        """Drop every family and collector."""
        with self._lock:
            self._families.clear()
            self._collectors.clear()


def merge_snapshots(*snapshots: dict) -> dict:
    """Merge snapshot dicts (left to right) into one new snapshot."""
    registry = MetricRegistry()
    for snapshot in snapshots:
        registry.merge(snapshot)
    return registry.snapshot()


# -- the null fast path --------------------------------------------------------


class _NullChild:
    """Discards updates; reports zero."""

    __slots__ = ()

    value = 0.0
    bounds: Tuple[float, ...] = ()
    counts: List[int] = []
    count = 0
    sum = 0.0
    min = 0.0
    max = 0.0
    mean = 0.0

    def inc(self, amount: float = 1, **_labels: str) -> None:
        """Discard."""

    def dec(self, amount: float = 1, **_labels: str) -> None:
        """Discard."""

    def set(self, value: float, **_labels: str) -> None:
        """Discard."""

    def observe(self, value: float, **_labels: str) -> None:
        """Discard."""

    def quantile(self, q: float) -> float:
        """Always zero."""
        return 0.0


_NULL_CHILD = _NullChild()


class _NullFamily:
    """Every child is the shared null child."""

    __slots__ = ()

    name = ""
    help = ""
    labelnames: Tuple[str, ...] = ()
    bounds: Tuple[float, ...] = ()

    def labels(self, **labelvalues: str) -> _NullChild:
        """The shared no-op child."""
        return _NULL_CHILD

    def series(self) -> list:
        """Always empty."""
        return []

    inc = _NULL_CHILD.inc
    dec = _NULL_CHILD.dec
    set = _NULL_CHILD.set
    observe = _NULL_CHILD.observe


_NULL_FAMILY = _NullFamily()


class NullMetricRegistry:
    """Zero-overhead registry: declarations return no-op families."""

    __slots__ = ()

    name = ""

    def counter(self, name, help_text="", labels=()) -> _NullFamily:
        """The shared no-op family."""
        return _NULL_FAMILY

    def gauge(self, name, help_text="", labels=()) -> _NullFamily:
        """The shared no-op family."""
        return _NULL_FAMILY

    def histogram(self, name, help_text="", labels=(),
                  bounds=LATENCY_BUCKETS_S) -> _NullFamily:
        """The shared no-op family."""
        return _NULL_FAMILY

    def add_collector(self, collector) -> None:
        """Discard."""

    def families(self) -> list:
        """Always empty."""
        return []

    def get(self, name: str) -> None:
        """Always None."""
        return None

    def __contains__(self, name: str) -> bool:
        return False

    def __len__(self) -> int:
        return 0

    def snapshot(self) -> dict:
        """Always empty."""
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def merge(self, snapshot: dict) -> None:
        """Discard."""

    def reset_values(self) -> None:
        """Nothing to reset."""

    def clear(self) -> None:
        """Nothing to clear."""


NULL_REGISTRY = NullMetricRegistry()

"""CLI for metrics snapshots: validate, render reports, export Prometheus.

Usage::

    python -m repro.observability report <snapshot.json>
    python -m repro.observability report --scrape 127.0.0.1:PORT
    python -m repro.observability validate <snapshot.json>
    python -m repro.observability prom <snapshot.json>

``report`` renders the paper-shaped measurement tables (processing-time
percentiles per op, rekey cost per request, client-side cost) from one
``repro-metrics/1`` snapshot; ``--scrape`` pulls a live snapshot from a
running :class:`~repro.transport.udp.UdpKeyServer` instead of a file.
``validate`` checks a snapshot against the schema (used by CI);
``prom`` prints the Prometheus text exposition.
"""

from __future__ import annotations

import argparse
import json
import sys

from .export import (load_snapshot, render_report, to_prometheus,
                     validate_snapshot)


def _obtain(args) -> dict:
    if getattr(args, "scrape", None):
        from ..transport.udp import scrape_stats
        host, _, port = args.scrape.rpartition(":")
        document = scrape_stats((host or "127.0.0.1", int(port)))
        validate_snapshot(document)
        return document
    if not args.snapshot:
        raise SystemExit("error: provide a snapshot path or --scrape")
    return load_snapshot(args.snapshot)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.observability",
        description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="command", required=True)

    report = sub.add_parser("report",
                            help="render the paper-shaped report tables")
    report.add_argument("snapshot", nargs="?",
                        help="path to a repro-metrics/1 JSON snapshot")
    report.add_argument("--scrape", metavar="HOST:PORT",
                        help="scrape a live UdpKeyServer instead of a file")

    validate = sub.add_parser("validate",
                              help="check a snapshot against the schema")
    validate.add_argument("snapshot")

    prom = sub.add_parser("prom",
                          help="print Prometheus text exposition")
    prom.add_argument("snapshot", nargs="?")
    prom.add_argument("--scrape", metavar="HOST:PORT")

    args = parser.parse_args(argv)
    try:
        if args.command == "validate":
            load_snapshot(args.snapshot)
            print(f"OK: {args.snapshot} conforms to repro-metrics/1")
            return 0
        document = _obtain(args)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"INVALID: {exc}", file=sys.stderr)
        return 1
    if args.command == "report":
        sys.stdout.write(render_report(document))
    else:
        sys.stdout.write(to_prometheus(document))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

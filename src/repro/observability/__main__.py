"""CLI for metrics snapshots: validate, report, Prometheus, SLOs, traces.

Usage::

    python -m repro.observability report <snapshot.json>
    python -m repro.observability report --scrape 127.0.0.1:PORT
    python -m repro.observability validate <snapshot.json>
    python -m repro.observability prom <snapshot.json>
    python -m repro.observability slo <snapshot.json> --spec keyserver.spec
    python -m repro.observability timeline <trace-or-snapshot.json>

``report`` renders the paper-shaped measurement tables (processing-time
percentiles per op, rekey cost per request, client-side cost) from one
``repro-metrics/1`` snapshot; ``--scrape`` pulls a live snapshot from a
running :class:`~repro.transport.udp.UdpKeyServer` instead of a file.
``validate`` checks a snapshot against the schema (used by CI);
``prom`` prints the Prometheus text exposition.  ``slo`` grades the
spec file's ``slo-*`` objectives against a snapshot (``--old`` adds
burn rates over the window between two snapshots).  ``timeline``
renders one trace as a text waterfall from exported spans — a
snapshot's ``spans`` sidecar, a loadgen ``--trace-out`` document, or a
bare span list.
"""

from __future__ import annotations

import argparse
import json
import sys

from .export import (load_snapshot, render_report, to_prometheus,
                     validate_snapshot)
from .slo import burn_rate, evaluate, render_slo_report, slos_from_spec_text
from .timeline import render_timeline, render_trace_index


def _obtain(args) -> dict:
    if getattr(args, "scrape", None):
        from ..transport.udp import scrape_stats
        host, _, port = args.scrape.rpartition(":")
        document = scrape_stats((host or "127.0.0.1", int(port)))
        validate_snapshot(document)
        return document
    if not args.snapshot:
        raise SystemExit("error: provide a snapshot path or --scrape")
    return load_snapshot(args.snapshot)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.observability",
        description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="command", required=True)

    report = sub.add_parser("report",
                            help="render the paper-shaped report tables")
    report.add_argument("snapshot", nargs="?",
                        help="path to a repro-metrics/1 JSON snapshot")
    report.add_argument("--scrape", metavar="HOST:PORT",
                        help="scrape a live UdpKeyServer instead of a file")

    validate = sub.add_parser("validate",
                              help="check a snapshot against the schema")
    validate.add_argument("snapshot")

    prom = sub.add_parser("prom",
                          help="print Prometheus text exposition")
    prom.add_argument("snapshot", nargs="?")
    prom.add_argument("--scrape", metavar="HOST:PORT")

    slo = sub.add_parser("slo",
                         help="grade spec-file objectives on a snapshot")
    slo.add_argument("snapshot", nargs="?")
    slo.add_argument("--scrape", metavar="HOST:PORT")
    slo.add_argument("--spec", required=True,
                     help="spec file declaring slo-* objectives")
    slo.add_argument("--old", metavar="SNAPSHOT",
                     help="earlier snapshot; adds burn rates over the "
                          "window between the two")
    slo.add_argument("--check", action="store_true",
                     help="exit 1 when any objective is breached")

    timeline = sub.add_parser(
        "timeline", help="render one trace as a text waterfall")
    timeline.add_argument("spans",
                          help="JSON with exported spans (snapshot "
                               "sidecar, trace document, or bare list)")
    timeline.add_argument("--trace-id", type=int, default=None,
                          help="trace to render (default: most spans)")
    timeline.add_argument("--list", action="store_true",
                          help="list traces instead of rendering one")

    args = parser.parse_args(argv)
    try:
        if args.command == "validate":
            load_snapshot(args.snapshot)
            print(f"OK: {args.snapshot} conforms to repro-metrics/1")
            return 0
        if args.command == "timeline":
            return _timeline(args)
        document = _obtain(args)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"INVALID: {exc}", file=sys.stderr)
        return 1
    if args.command == "report":
        sys.stdout.write(render_report(document))
    elif args.command == "slo":
        return _slo(args, document)
    else:
        sys.stdout.write(to_prometheus(document))
    return 0


def _read_spans(path: str) -> list:
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if isinstance(document, list):
        return document
    spans = document.get("spans")
    if not isinstance(spans, list):
        raise ValueError(f"{path}: no spans found")
    return spans


def _timeline(args) -> int:
    try:
        spans = _read_spans(args.spans)
        if args.list:
            sys.stdout.write(render_trace_index(spans))
        else:
            sys.stdout.write(render_timeline(spans,
                                             trace_id=args.trace_id))
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"INVALID: {exc}", file=sys.stderr)
        return 1
    return 0


def _slo(args, document: dict) -> int:
    with open(args.spec, "r", encoding="utf-8") as handle:
        slos = slos_from_spec_text(handle.read())
    if not slos:
        print(f"no slo-* objectives declared in {args.spec}",
              file=sys.stderr)
        return 1
    statuses = evaluate(slos, document)
    burn_rates = None
    if args.old:
        older = load_snapshot(args.old)
        burn_rates = {slo.name: burn_rate(slo, older, document)
                      for slo in slos}
    sys.stdout.write(render_slo_report(statuses, burn_rates))
    if args.check and any(not status.compliant for status in statuses):
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

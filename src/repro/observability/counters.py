"""Structured named counters.

One :class:`Counters` instance replaces the hand-rolled integer fields
(`encryptions`, `signatures_performed`, ...) that used to be scattered
over the rekey paths: a flat namespace of monotonically increasing
integers, cheap to update on the hot path (one dict operation) and
snapshottable for reports.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple


class Counters:
    """A flat namespace of named monotonic counters."""

    __slots__ = ("_values",)

    def __init__(self) -> None:
        self._values: Dict[str, int] = {}

    def add(self, name: str, amount: int = 1) -> int:
        """Increment ``name`` by ``amount``; returns the new value."""
        value = self._values.get(name, 0) + amount
        self._values[name] = value
        return value

    def get(self, name: str) -> int:
        """Current value of ``name`` (0 if never incremented)."""
        return self._values.get(name, 0)

    def __getitem__(self, name: str) -> int:
        return self._values.get(name, 0)

    def __contains__(self, name: str) -> bool:
        return name in self._values

    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self) -> Iterator[Tuple[str, int]]:
        return iter(sorted(self._values.items()))

    def snapshot(self) -> Dict[str, int]:
        """An independent copy of all counter values."""
        return dict(self._values)

    def merge(self, other: "Counters") -> None:
        """Fold another instance's values into this one."""
        for name, value in other._values.items():
            self.add(name, value)

    def clear(self) -> None:
        """Reset every counter."""
        self._values.clear()

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in self)
        return f"Counters({inner})"

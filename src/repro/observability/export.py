"""Exporters: Prometheus text exposition and ``repro-metrics/1`` snapshots.

Two interchange formats for one :class:`~repro.observability.metrics.
MetricRegistry`:

* :func:`to_prometheus` — the Prometheus text exposition format
  (``# HELP`` / ``# TYPE`` / ``name{label="v"} value``, histograms as
  cumulative ``_bucket{le=...}`` series), for live scraping;
* :func:`build_snapshot` / :func:`validate_snapshot` — a versioned JSON
  document (``"schema": "repro-metrics/1"``) that freezes every series,
  merges across workers (:func:`~repro.observability.metrics.
  merge_snapshots`) and is sufficient on its own to regenerate the
  paper-shaped reports.

:func:`render_report` turns one snapshot back into the paper's
measurement tables — processing time per join/leave with percentiles
(Table 4 / Figure 10 shape), rekey message counts/sizes per request
(Table 5 shape), key changes per request (Table 6 / Figure 12 shape) —
plus a per-stage latency histogram table for the pipeline stages.
``python -m repro.observability report <snapshot.json>`` is the CLI
front end.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence, Union

from .metrics import MetricRegistry, NullMetricRegistry, merge_snapshots

SNAPSHOT_SCHEMA = "repro-metrics/1"

_SECTIONS = ("counters", "gauges", "histograms")


# -- snapshot document ---------------------------------------------------------


def build_snapshot(registry: Union[MetricRegistry, NullMetricRegistry],
                   label: str = "", spans: Optional[List[dict]] = None,
                   extra: Sequence[Union[MetricRegistry,
                                         NullMetricRegistry]] = ()
                   ) -> dict:
    """Wrap a registry snapshot in the versioned document envelope.

    ``extra`` registries (a worker pool's, the shared key-schedule
    cache's) are merged into the same document.
    """
    metrics = registry.snapshot()
    if extra:
        metrics = merge_snapshots(metrics,
                                  *(other.snapshot() for other in extra))
    document = {
        "schema": SNAPSHOT_SCHEMA,
        "label": label,
        "metrics": metrics,
    }
    if spans is not None:
        document["spans"] = spans
    return document


def validate_snapshot(document: dict) -> None:
    """Raise ``ValueError`` unless ``document`` is a valid snapshot."""
    if not isinstance(document, dict):
        raise ValueError("snapshot must be a JSON object")
    if document.get("schema") != SNAPSHOT_SCHEMA:
        raise ValueError(f"unknown schema {document.get('schema')!r}; "
                         f"expected {SNAPSHOT_SCHEMA!r}")
    if "label" not in document or not isinstance(document["label"], str):
        raise ValueError("snapshot missing string field 'label'")
    metrics = document.get("metrics")
    if not isinstance(metrics, dict):
        raise ValueError("snapshot missing object field 'metrics'")
    for section in _SECTIONS:
        families = metrics.get(section)
        if not isinstance(families, dict):
            raise ValueError(f"metrics missing section {section!r}")
        for name, entry in families.items():
            _validate_family(section, name, entry)
    if "spans" in document and not isinstance(document["spans"], list):
        raise ValueError("'spans' must be a list when present")


def _validate_family(section: str, name: str, entry: dict) -> None:
    if not isinstance(entry, dict):
        raise ValueError(f"{section}.{name} must be an object")
    for required in ("labels", "series"):
        if required not in entry:
            raise ValueError(f"{section}.{name} missing {required!r}")
    labelnames = entry["labels"]
    if not isinstance(entry["series"], list):
        raise ValueError(f"{section}.{name} series must be a list")
    if section == "histograms" and not isinstance(entry.get("bounds"), list):
        raise ValueError(f"{section}.{name} missing bucket bounds")
    for series in entry["series"]:
        if not isinstance(series, dict):
            raise ValueError(f"{section}.{name} has a non-object series")
        labels = series.get("labels")
        if (not isinstance(labels, dict)
                or sorted(labels) != sorted(labelnames)):
            raise ValueError(
                f"{section}.{name} series labels do not match {labelnames}")
        if section == "histograms":
            counts = series.get("counts")
            if (not isinstance(counts, list)
                    or len(counts) != len(entry["bounds"]) + 1):
                raise ValueError(
                    f"{section}.{name} series counts/bounds mismatch")
            for required in ("count", "sum", "min", "max"):
                if required not in series:
                    raise ValueError(
                        f"{section}.{name} series missing {required!r}")
        elif not isinstance(series.get("value"), (int, float)):
            raise ValueError(f"{section}.{name} series value must be numeric")


def write_snapshot(path: str, document: dict) -> None:
    """Validate then write a snapshot as stable, diff-friendly JSON."""
    validate_snapshot(document)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_snapshot(path: str) -> dict:
    """Read and validate a snapshot file."""
    with open(path, encoding="utf-8") as handle:
        document = json.load(handle)
    validate_snapshot(document)
    return document


# -- Prometheus text exposition ------------------------------------------------


def _escape_label_value(value: str) -> str:
    return (value.replace("\\", r"\\").replace("\n", r"\n")
            .replace('"', r'\"'))


def _escape_help(value: str) -> str:
    return value.replace("\\", r"\\").replace("\n", r"\n")


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _label_string(labels: Dict[str, str], extra: str = "") -> str:
    parts = [f'{name}="{_escape_label_value(str(value))}"'
             for name, value in sorted(labels.items())]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def to_prometheus(source: Union[MetricRegistry, NullMetricRegistry, dict]
                  ) -> str:
    """Render a registry or snapshot in Prometheus text exposition format.

    Accepts a live registry, a registry snapshot, or a full
    ``repro-metrics/1`` document.  Output is deterministic: families
    sorted by name, series by label values.
    """
    if not isinstance(source, dict):
        metrics = source.snapshot()
    elif "schema" in source:
        metrics = source["metrics"]
    else:
        metrics = source
    lines: List[str] = []
    for section, prom_type in (("counters", "counter"), ("gauges", "gauge"),
                               ("histograms", "histogram")):
        for name in sorted(metrics.get(section, {})):
            entry = metrics[section][name]
            if entry.get("help"):
                lines.append(f"# HELP {name} {_escape_help(entry['help'])}")
            lines.append(f"# TYPE {name} {prom_type}")
            for series in entry["series"]:
                labels = series["labels"]
                if section == "histograms":
                    cumulative = 0
                    for bound, count in zip(entry["bounds"],
                                            series["counts"]):
                        cumulative += count
                        le = _label_string(
                            labels, f'le="{_format_value(bound)}"')
                        lines.append(f"{name}_bucket{le} {cumulative}")
                    cumulative += series["counts"][-1]
                    le = _label_string(labels, 'le="+Inf"')
                    lines.append(f"{name}_bucket{le} {cumulative}")
                    label_str = _label_string(labels)
                    lines.append(f"{name}_sum{label_str} "
                                 f"{_format_value(series['sum'])}")
                    lines.append(f"{name}_count{label_str} "
                                 f"{series['count']}")
                else:
                    label_str = _label_string(labels)
                    lines.append(f"{name}{label_str} "
                                 f"{_format_value(series['value'])}")
    return "\n".join(lines) + "\n" if lines else ""


# -- report rendering ----------------------------------------------------------


class _HistView:
    """Quantile math over one snapshot histogram series."""

    def __init__(self, bounds: Sequence[float], series: dict):
        self.bounds = list(bounds)
        self.counts = list(series["counts"])
        self.count = series["count"]
        self.sum = series["sum"]
        self.min = series["min"]
        self.max = series["max"]

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        if not self.count:
            return 0.0
        target = q * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            if not bucket_count:
                continue
            if cumulative + bucket_count >= target:
                if index >= len(self.bounds):
                    return self.max
                upper = self.bounds[index]
                lower = self.bounds[index - 1] if index else 0.0
                estimate = lower + (upper - lower) * (
                    (target - cumulative) / bucket_count)
                return min(max(estimate, self.min), self.max)
            cumulative += bucket_count
        return self.max


def _histogram_views(metrics: dict, name: str) -> Dict[tuple, _HistView]:
    entry = metrics.get("histograms", {}).get(name)
    if entry is None:
        return {}
    views = {}
    for series in entry["series"]:
        key = tuple(sorted(series["labels"].items()))
        views[key] = _HistView(entry["bounds"], series)
    return views


def _counter_values(metrics: dict, name: str) -> Dict[tuple, float]:
    entry = metrics.get("counters", {}).get(name)
    if entry is None:
        return {}
    return {tuple(sorted(series["labels"].items())): series["value"]
            for series in entry["series"]}


def _by_label(values: Dict[tuple, float], label: str) -> Dict[str, float]:
    folded: Dict[str, float] = {}
    for key, value in values.items():
        labels = dict(key)
        if label in labels:
            folded[labels[label]] = folded.get(labels[label], 0.0) + value
    return folded


def _table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    def fmt(cells):
        return "  ".join(cell.ljust(width)
                         for cell, width in zip(cells, widths)).rstrip()
    lines = [fmt(headers), fmt(["-" * width for width in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def _ms(seconds: float) -> str:
    return f"{seconds * 1000:.3f}"


def render_report(document: dict) -> str:
    """Render one snapshot into the paper-shaped measurement report."""
    validate_snapshot(document)
    metrics = document["metrics"]
    sections: List[str] = []
    label = document.get("label") or "(unlabeled)"
    sections.append(f"repro-metrics report — {label}")

    # Table 4 / Figure 10 shape: server processing time per operation.
    run_views = _histogram_views(metrics, "rekey_seconds")
    ok_rows = []
    for key, view in sorted(run_views.items()):
        labels = dict(key)
        if labels.get("status") != "ok" or not view.count:
            continue
        ok_rows.append([labels.get("op", "?"), str(view.count),
                        _ms(view.mean), _ms(view.quantile(0.5)),
                        _ms(view.quantile(0.9)), _ms(view.quantile(0.99)),
                        _ms(view.min), _ms(view.max)])
    if ok_rows:
        sections.append(
            "Server processing time per request (ms) — Table 4 shape\n"
            + _table(["op", "count", "mean", "p50", "p90", "p99", "min",
                      "max"], ok_rows))
    error_rows = []
    for key, view in sorted(run_views.items()):
        labels = dict(key)
        if labels.get("status") == "error" and view.count:
            error_rows.append([labels.get("op", "?"), str(view.count),
                               _ms(view.mean)])
    if error_rows:
        sections.append("Failed runs (recorded, not dropped)\n"
                        + _table(["op", "count", "mean ms"], error_rows))

    # Per-stage latency histogram table.
    stage_views = _histogram_views(metrics, "rekey_stage_seconds")
    stage_rows = []
    for key, view in sorted(stage_views.items()):
        labels = dict(key)
        if not view.count:
            continue
        stage_rows.append([labels.get("op", "?"), labels.get("stage", "?"),
                           str(view.count), _ms(view.mean),
                           _ms(view.quantile(0.5)), _ms(view.quantile(0.99)),
                           _ms(view.max)])
    if stage_rows:
        sections.append("Pipeline stage latency (ms)\n"
                        + _table(["op", "stage", "count", "mean", "p50",
                                  "p99", "max"], stage_rows))

    # Table 5 shape: rekey messages and bytes per request, server side.
    requests = _by_label(_counter_values(metrics, "server_requests_total"),
                         "op")
    messages = _by_label(_counter_values(metrics, "rekey_messages_total"),
                         "op")
    rekey_bytes = _by_label(_counter_values(metrics, "rekey_bytes_total"),
                            "op")
    encryptions = _by_label(_counter_values(metrics, "encryptions_total"),
                            "op")
    signatures = _by_label(_counter_values(metrics, "signatures_total"), "op")
    size_views = _histogram_views(metrics, "rekey_message_bytes")
    table5_rows = []
    for op in sorted(set(requests) | set(messages)):
        n_requests = requests.get(op, 0.0)
        if not n_requests:
            continue
        size_view = None
        for key, view in size_views.items():
            if dict(key).get("op") == op:
                size_view = view
        size_cell = (f"{size_view.min:.0f}/{size_view.mean:.1f}/"
                     f"{size_view.max:.0f}" if size_view and size_view.count
                     else "-")
        table5_rows.append([
            op, str(int(n_requests)),
            f"{messages.get(op, 0.0) / n_requests:.2f}",
            size_cell,
            f"{rekey_bytes.get(op, 0.0) / n_requests:.1f}",
            f"{encryptions.get(op, 0.0) / n_requests:.2f}",
            f"{signatures.get(op, 0.0) / n_requests:.2f}",
        ])
    if table5_rows:
        sections.append(
            "Rekey cost per request — Table 5 shape\n"
            + _table(["op", "requests", "msgs/req",
                      "msg bytes min/mean/max", "bytes/req", "encr/req",
                      "sigs/req"], table5_rows))

    # Table 6 / Figure 12 shape: the client side.
    key_changes = _by_label(_counter_values(metrics, "key_changes_total"),
                            "op")
    copies = _by_label(_counter_values(metrics, "client_copies_total"), "op")
    table6_rows = []
    for op in sorted(set(key_changes) | set(copies)):
        n_requests = requests.get(op, 0.0)
        if not n_requests:
            continue
        table6_rows.append([
            op,
            f"{key_changes.get(op, 0.0) / n_requests:.2f}",
            f"{copies.get(op, 0.0) / n_requests:.2f}",
        ])
    if table6_rows:
        sections.append(
            "Client-side cost per request — Table 6 shape\n"
            + _table(["op", "key changes/req", "message copies/req"],
                     table6_rows))

    # Everything else: compact counter/gauge dump.
    leftovers = []
    shown = {"server_requests_total", "rekey_messages_total",
             "rekey_bytes_total", "encryptions_total", "signatures_total",
             "key_changes_total", "client_copies_total"}
    for section in ("counters", "gauges"):
        for name in sorted(metrics.get(section, {})):
            if name in shown:
                continue
            for series in metrics[section][name]["series"]:
                labels = _label_string(series["labels"])
                leftovers.append([f"{name}{labels}",
                                  _format_value(series["value"])])
    if leftovers:
        sections.append("Other series\n" + _table(["series", "value"],
                                                  leftovers))

    return "\n\n".join(sections) + "\n"

"""Always-on per-operation flight recorder.

A bounded ring of structured events — stage enters/exits, lock and
turnstile waits, sheds, errors, injected faults — cheap enough to leave
enabled on the hot path (one tuple append under a lock per event) yet
rich enough to reconstruct the last moments before an incident.

The recorder never writes anything on its own: :meth:`FlightRecorder.dump`
freezes the ring into a JSON-friendly document, and :meth:`maybe_dump`
rate-limits automatic dumps (on error, SLO breach, or operator signal)
so a crash loop cannot flood the disk.  Documents carry a schema tag and
are checked by :func:`validate_flight`, which CI runs against live
dumps.

The default is :data:`NULL_FLIGHT`, a no-op recorder, so nothing pays
for flight recording unless a serving core enables it.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

#: Schema tag stamped into every dumped document.
FLIGHT_SCHEMA = "repro-flight/1"

#: Minimum seconds between automatic dumps (see :meth:`maybe_dump`).
DUMP_MIN_INTERVAL_S = 1.0


class FlightError(Exception):
    """A flight-recorder document failed validation."""


class FlightRecorder:
    """Bounded ring of ``(seq, t_ns, kind, trace_id, fields)`` events.

    ``kind`` is a short dotted string (``"req"``, ``"done"``,
    ``"shed"``, ``"error"``, ``"fault.drop"`` ...); ``trace_id`` ties
    the event to a distributed trace (0 when untraced); ``fields`` is a
    small dict of extra context.  The ring is preallocated, so steady
    state does no list growth — ``record`` is one lock acquire, one
    tuple build, two index writes.
    """

    __slots__ = ("capacity", "_clock", "_lock", "_ring", "_head", "_seq",
                 "_dropped", "_last_dump_ns", "_dump_count")

    enabled = True

    def __init__(self, capacity: int = 2048,
                 clock: Callable[[], int] = time.monotonic_ns):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._clock = clock
        self._lock = threading.Lock()
        self._ring: List[Optional[Tuple]] = [None] * capacity
        self._head = 0          # next write slot
        self._seq = 0           # events ever recorded
        self._dropped = 0       # events overwritten by the ring
        self._last_dump_ns = 0
        self._dump_count = 0

    # -- recording ----------------------------------------------------------

    def record(self, kind: str, trace_id: int = 0, **fields: Any) -> None:
        """Append one event; overwrites the oldest once the ring is full."""
        t_ns = self._clock()
        with self._lock:
            seq = self._seq
            self._seq = seq + 1
            slot = self._head
            if self._ring[slot] is not None:
                self._dropped += 1
            self._ring[slot] = (seq, t_ns, kind, trace_id, fields)
            self._head = (slot + 1) % self.capacity

    # -- queries ------------------------------------------------------------

    def events(self) -> List[Tuple]:
        """Retained events, oldest first."""
        with self._lock:
            tail = self._ring[self._head:] + self._ring[:self._head]
            return [event for event in tail if event is not None]

    def __len__(self) -> int:
        with self._lock:
            return min(self._seq, self.capacity)

    @property
    def recorded(self) -> int:
        """Events ever recorded (including overwritten ones)."""
        with self._lock:
            return self._seq

    @property
    def dropped(self) -> int:
        """Events overwritten by the ring."""
        with self._lock:
            return self._dropped

    def clear(self) -> None:
        """Forget every retained event (sequence numbers keep going)."""
        with self._lock:
            self._ring = [None] * self.capacity
            self._head = 0
            self._dropped = 0

    # -- dumping ------------------------------------------------------------

    def dump(self, reason: str, path: Optional[str] = None) -> dict:
        """Freeze the ring into a schema-tagged document.

        With ``path`` the document is also written as JSON.  ``reason``
        records what triggered the dump (``"error"``, ``"slo-breach"``,
        ``"signal"``, ``"chaos"`` ...).
        """
        now_ns = self._clock()
        events = [{
            "seq": seq,
            "t_ns": t_ns,
            "kind": kind,
            "trace_id": trace_id,
            "fields": dict(fields),
        } for seq, t_ns, kind, trace_id, fields in self.events()]
        with self._lock:
            self._dump_count += 1
            document = {
                "schema": FLIGHT_SCHEMA,
                "reason": reason,
                "dumped_at_ns": now_ns,
                "capacity": self.capacity,
                "recorded": self._seq,
                "dropped": self._dropped,
                "events": events,
            }
        if path is not None:
            with open(path, "w", encoding="utf-8") as handle:
                json.dump(document, handle, indent=2, sort_keys=True,
                          default=str)
                handle.write("\n")
        return document

    def maybe_dump(self, reason: str,
                   path: Optional[str] = None) -> Optional[dict]:
        """Dump unless one happened within :data:`DUMP_MIN_INTERVAL_S`.

        The rate limit keeps automatic triggers (per-request errors, SLO
        evaluation ticks) from turning an incident into a disk flood;
        returns the document, or None when suppressed.
        """
        now_ns = self._clock()
        with self._lock:
            if (self._last_dump_ns
                    and now_ns - self._last_dump_ns
                    < DUMP_MIN_INTERVAL_S * 1e9):
                return None
            self._last_dump_ns = now_ns
        return self.dump(reason, path)

    @property
    def dump_count(self) -> int:
        """Documents produced by :meth:`dump` so far."""
        with self._lock:
            return self._dump_count


class _NullFlightRecorder:
    """No-op recorder: recording costs one attribute lookup + call."""

    __slots__ = ()

    enabled = False
    capacity = 0
    recorded = 0
    dropped = 0
    dump_count = 0

    def record(self, kind: str, trace_id: int = 0, **fields: Any) -> None:
        """Discard."""

    def events(self) -> List[Tuple]:
        """Always empty."""
        return []

    def __len__(self) -> int:
        return 0

    def clear(self) -> None:
        """Nothing to clear."""

    def dump(self, reason: str, path: Optional[str] = None) -> dict:
        """An empty but schema-valid document."""
        return {"schema": FLIGHT_SCHEMA, "reason": reason,
                "dumped_at_ns": 0, "capacity": 0, "recorded": 0,
                "dropped": 0, "events": []}

    def maybe_dump(self, reason: str,
                   path: Optional[str] = None) -> Optional[dict]:
        """Never dumps."""
        return None


NULL_FLIGHT = _NullFlightRecorder()


def validate_flight(document: dict) -> dict:
    """Check a flight-recorder document's shape; returns it unchanged.

    Raises :class:`FlightError` naming the first problem found.
    """
    if not isinstance(document, dict):
        raise FlightError("flight document must be a dict")
    if document.get("schema") != FLIGHT_SCHEMA:
        raise FlightError(
            f"unknown flight schema {document.get('schema')!r} "
            f"(expected {FLIGHT_SCHEMA!r})")
    for key in ("reason", "dumped_at_ns", "capacity", "recorded",
                "dropped", "events"):
        if key not in document:
            raise FlightError(f"flight document missing {key!r}")
    if not isinstance(document["reason"], str):
        raise FlightError("reason must be a string")
    events = document["events"]
    if not isinstance(events, list):
        raise FlightError("events must be a list")
    last_seq = -1
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            raise FlightError(f"events[{index}] must be a dict")
        for key in ("seq", "t_ns", "kind", "trace_id", "fields"):
            if key not in event:
                raise FlightError(f"events[{index}] missing {key!r}")
        if not isinstance(event["kind"], str) or not event["kind"]:
            raise FlightError(f"events[{index}] kind must be a non-empty "
                              f"string")
        if not isinstance(event["fields"], dict):
            raise FlightError(f"events[{index}] fields must be a dict")
        seq = event["seq"]
        if not isinstance(seq, int) or seq <= last_seq:
            raise FlightError(
                f"events[{index}] seq {seq!r} not strictly increasing")
        last_seq = seq
    return document

"""Stage timers: the single timing source for all paper-facing numbers.

Two granularities:

* :class:`StageClock` — per-operation: one rekey pipeline run opens a
  clock, times each stage (plan/encrypt/sign/dispatch) and the total
  timed region.  ``RequestRecord.seconds`` / ``BatchResult.seconds``
  are read off a StageClock, replacing the ad-hoc ``time.perf_counter``
  pairs the server/batch/materialized paths used to carry.
* :class:`StageTimers` — aggregate: count/total/min/max per stage name
  across many runs, readable after the fact
  (``server.instrumentation.timers.stat("join.plan")``).

:class:`Stopwatch` is the trivial elapsed-wall-time helper for
non-staged regions (experiment runs, CLI timing).
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Tuple


class Stopwatch:
    """Elapsed wall time since construction (or the last restart)."""

    __slots__ = ("_clock", "_started")

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        self._clock = clock
        self._started = clock()

    def restart(self) -> None:
        """Reset the start mark to now."""
        self._started = self._clock()

    def elapsed(self) -> float:
        """Seconds since the start mark."""
        return self._clock() - self._started


class _StageSpan:
    """Context manager timing one stage of a :class:`StageClock`."""

    __slots__ = ("_clock", "_name", "_started")

    def __init__(self, clock: "StageClock", name: str):
        self._clock = clock
        self._name = name
        self._started = 0.0

    def __enter__(self) -> "_StageSpan":
        self._started = self._clock._now()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # Elapsed time is recorded even when the body raises, and the
        # failure is flagged on the clock, so failed runs show up in the
        # timing aggregates/histograms instead of silently vanishing.
        self._clock._record(self._name, self._clock._now() - self._started)
        if exc_type is not None:
            self._clock.error = True
            if self._clock.failed_stage is None:
                self._clock.failed_stage = self._name


class StageClock:
    """Per-run staged timing: ordered stage durations plus a total.

    The total spans construction to :meth:`stop` — i.e. the whole timed
    region including any work between stages — matching the semantics of
    the ``start = perf_counter()`` / ``elapsed = perf_counter() - start``
    regions it replaces.

    ``error``/``failed_stage`` are set by a stage whose body raised: the
    stage's elapsed time is still recorded, and consumers
    (:meth:`~repro.observability.instrumentation.Instrumentation.
    record_run`) label the run as failed.
    """

    __slots__ = ("_now", "_started", "_stopped", "stages", "error",
                 "failed_stage")

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        self._now = clock
        self._started = clock()
        self._stopped: Optional[float] = None
        self.stages: Dict[str, float] = {}
        self.error = False
        self.failed_stage: Optional[str] = None

    def stage(self, name: str) -> _StageSpan:
        """A context manager accumulating elapsed time under ``name``."""
        return _StageSpan(self, name)

    def _record(self, name: str, seconds: float) -> None:
        self.stages[name] = self.stages.get(name, 0.0) + seconds

    def stop(self) -> float:
        """End the timed region; returns (and fixes) the total seconds."""
        if self._stopped is None:
            self._stopped = self._now()
        return self._stopped - self._started

    @property
    def total(self) -> float:
        """Total seconds of the timed region (stops the clock if running)."""
        return self.stop()


class TimerStat:
    """count / total / min / max of one named stage across runs."""

    __slots__ = ("count", "total", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = 0.0

    def add(self, seconds: float) -> None:
        """Fold one sample in."""
        self.count += 1
        self.total += seconds
        if seconds < self.minimum:
            self.minimum = seconds
        if seconds > self.maximum:
            self.maximum = seconds

    @property
    def mean(self) -> float:
        """Mean seconds per sample (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def __repr__(self) -> str:
        return (f"TimerStat(count={self.count}, total={self.total:.6f}, "
                f"mean={self.mean:.6f})")


class StageTimers:
    """Aggregate timings keyed by stage name."""

    __slots__ = ("_stats",)

    def __init__(self) -> None:
        self._stats: Dict[str, TimerStat] = {}

    def add(self, name: str, seconds: float) -> None:
        """Fold one sample into the stat for ``name``."""
        stat = self._stats.get(name)
        if stat is None:
            stat = self._stats[name] = TimerStat()
        stat.add(seconds)

    def stat(self, name: str) -> TimerStat:
        """The (possibly empty) stat for ``name``."""
        return self._stats.get(name, TimerStat())

    def names(self) -> List[str]:
        """All recorded stage names, sorted."""
        return sorted(self._stats)

    def time(self, name: str) -> "_TimerSpan":
        """Context manager adding its elapsed time to ``name``."""
        return _TimerSpan(self, name)

    def snapshot(self) -> Dict[str, Tuple[int, float, float, float]]:
        """{name: (count, total, min, max)} copy of all stats."""
        return {name: (s.count, s.total, s.minimum, s.maximum)
                for name, s in self._stats.items()}

    def clear(self) -> None:
        """Drop every stat."""
        self._stats.clear()

    def __len__(self) -> int:
        return len(self._stats)


class _TimerSpan:
    """Context manager feeding one elapsed region into a StageTimers."""

    __slots__ = ("_timers", "_name", "_started")

    def __init__(self, timers: StageTimers, name: str):
        self._timers = timers
        self._name = name
        self._started = 0.0

    def __enter__(self) -> "_TimerSpan":
        self._started = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._timers.add(self._name, time.perf_counter() - self._started)

"""The instrumentation facade bundling counters, timers, metrics, tracing.

Every instrumented component (the rekey pipeline, the servers, the
transports, the experiment runner) takes an :class:`Instrumentation` and
reports through it; the component never touches ``time.perf_counter`` or
ad-hoc integer fields directly.  The facade now carries four organs:

* ``counters``/``timers`` — the flat PR-1 aggregates (kept as the
  cheap, always-on API: ``server.instrumentation.timers.stat(...)``);
* ``registry`` — the labeled :class:`~repro.observability.metrics.
  MetricRegistry` behind snapshots, Prometheus exposition and the
  ``repro-metrics/1`` reports;
* ``tracer`` — span tracing (default :data:`~repro.observability.spans.
  NULL_TRACER`: zero overhead unless a caller opts in);
* ``trace`` — the PR-1 trace-event ring buffer (unchanged).

:data:`NULL_INSTRUMENTATION` swallows everything at near-zero cost for
hot paths that want no accounting at all; its ``registry``/``tracer``
are the null implementations, so wiring code can declare metric
families and open spans unconditionally.
"""

from __future__ import annotations

from typing import Optional, Union

from .counters import Counters
from .metrics import (LATENCY_BUCKETS_S, MetricRegistry, NULL_REGISTRY,
                      NullMetricRegistry)
from .spans import NULL_TRACER, NullTracer, Tracer
from .timers import StageClock, StageTimers, _TimerSpan
from .tracing import NULL_TRACE, NullTraceBuffer, TraceBuffer


class Instrumentation:
    """Counters + timers + labeled metrics + spans + optional tracing."""

    __slots__ = ("name", "counters", "timers", "trace", "registry", "tracer",
                 "_run_seconds", "_stage_seconds")

    def __init__(self, name: str = "",
                 trace: Optional[Union[TraceBuffer, NullTraceBuffer]] = None,
                 registry: Optional[Union[MetricRegistry,
                                          NullMetricRegistry]] = None,
                 tracer: Optional[Union[Tracer, NullTracer]] = None):
        self.name = name
        self.counters = Counters()
        self.timers = StageTimers()
        self.trace = trace if trace is not None else NULL_TRACE
        self.registry = registry if registry is not None else MetricRegistry(
            name)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._run_seconds = self.registry.histogram(
            "rekey_seconds",
            "End-to-end rekey pipeline run time (server processing time).",
            labels=("op", "status"), bounds=LATENCY_BUCKETS_S)
        self._stage_seconds = self.registry.histogram(
            "rekey_stage_seconds",
            "Per-stage rekey pipeline time (plan/encrypt/sign/dispatch).",
            labels=("op", "stage"), bounds=LATENCY_BUCKETS_S)

    def count(self, counter: str, amount: int = 1) -> None:
        """Increment a named counter."""
        self.counters.add(counter, amount)

    def stage(self, stage_name: str) -> _TimerSpan:
        """Time a region into the aggregate timers."""
        return self.timers.time(stage_name)

    def record_run(self, op: str, clock: StageClock) -> None:
        """Fold one pipeline run's :class:`StageClock` into the aggregates.

        Timings are keyed ``<op>.<stage>`` plus ``<op>.total``; the run
        count lands in the ``<op>.runs`` counter — or ``<op>.errors``
        when the clock carries an error flag (a stage body raised), so
        failed rekeys stay visible.  The same samples feed the labeled
        ``rekey_seconds``/``rekey_stage_seconds`` histograms, with
        ``status="error"`` on failed runs.
        """
        for stage_name, seconds in clock.stages.items():
            self.timers.add(f"{op}.{stage_name}", seconds)
            self._stage_seconds.labels(op=op, stage=stage_name).observe(
                seconds)
        total = clock.total
        self.timers.add(f"{op}.total", total)
        status = "error" if clock.error else "ok"
        self._run_seconds.labels(op=op, status=status).observe(total)
        self.counters.add(f"{op}.errors" if clock.error else f"{op}.runs")
        if self.trace.enabled:
            self.trace.emit(f"{op}.run", total=total,
                            stages=dict(clock.stages), error=clock.error,
                            failed_stage=clock.failed_stage)

    def snapshot(self) -> dict:
        """Copyable view of counters, timers and the metric registry."""
        return {"name": self.name,
                "counters": self.counters.snapshot(),
                "timers": self.timers.snapshot(),
                "metrics": self.registry.snapshot()}

    def clear(self) -> None:
        """Reset counters, timers, metrics, spans and the trace buffer.

        Metric series are zeroed *in place* (family/child objects
        survive), so components holding cached label children keep
        reporting into the same series afterwards.
        """
        self.counters.clear()
        self.timers.clear()
        self.trace.clear()
        self.tracer.clear()
        self.registry.reset_values()


class _NullSpan:
    """Reusable no-op context manager."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullInstrumentation:
    """Drops everything: for hot paths that want zero accounting."""

    __slots__ = ()

    name = ""
    trace = NULL_TRACE
    registry = NULL_REGISTRY
    tracer = NULL_TRACER

    def count(self, counter: str, amount: int = 1) -> None:
        """Discard."""

    def stage(self, stage_name: str) -> _NullSpan:
        """A shared no-op context manager."""
        return _NULL_SPAN

    def record_run(self, op: str, clock: StageClock) -> None:
        """Discard."""

    def snapshot(self) -> dict:
        """Always empty."""
        return {"name": "", "counters": {}, "timers": {},
                "metrics": NULL_REGISTRY.snapshot()}

    def clear(self) -> None:
        """Nothing to clear."""


NULL_INSTRUMENTATION = NullInstrumentation()

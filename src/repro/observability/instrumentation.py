"""The instrumentation facade bundling counters, timers and tracing.

Every instrumented component (the rekey pipeline, the experiment
runner) takes an :class:`Instrumentation` and reports through it; the
component never touches ``time.perf_counter`` or ad-hoc integer fields
directly.  :data:`NULL_INSTRUMENTATION` swallows everything at
near-zero cost for callers that want raw speed.
"""

from __future__ import annotations

from typing import Optional, Union

from .counters import Counters
from .timers import StageClock, StageTimers, _TimerSpan
from .tracing import NULL_TRACE, NullTraceBuffer, TraceBuffer


class Instrumentation:
    """Counters + aggregate stage timers + an optional trace buffer."""

    __slots__ = ("name", "counters", "timers", "trace")

    def __init__(self, name: str = "",
                 trace: Optional[Union[TraceBuffer, NullTraceBuffer]] = None):
        self.name = name
        self.counters = Counters()
        self.timers = StageTimers()
        self.trace = trace if trace is not None else NULL_TRACE

    def count(self, counter: str, amount: int = 1) -> None:
        """Increment a named counter."""
        self.counters.add(counter, amount)

    def stage(self, stage_name: str) -> _TimerSpan:
        """Time a region into the aggregate timers."""
        return self.timers.time(stage_name)

    def record_run(self, op: str, clock: StageClock) -> None:
        """Fold one pipeline run's :class:`StageClock` into the aggregates.

        Timings are keyed ``<op>.<stage>`` plus ``<op>.total``; the run
        count lands in the ``<op>.runs`` counter.
        """
        for stage_name, seconds in clock.stages.items():
            self.timers.add(f"{op}.{stage_name}", seconds)
        self.timers.add(f"{op}.total", clock.total)
        self.counters.add(f"{op}.runs")
        if self.trace.enabled:
            self.trace.emit(f"{op}.run", total=clock.total,
                            stages=dict(clock.stages))

    def snapshot(self) -> dict:
        """Copyable view of counters and timers."""
        return {"name": self.name,
                "counters": self.counters.snapshot(),
                "timers": self.timers.snapshot()}

    def clear(self) -> None:
        """Reset counters, timers and the trace buffer."""
        self.counters.clear()
        self.timers.clear()
        self.trace.clear()


class _NullSpan:
    """Reusable no-op context manager."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullInstrumentation:
    """Drops everything: for hot paths that want zero accounting."""

    __slots__ = ()

    name = ""
    trace = NULL_TRACE

    def count(self, counter: str, amount: int = 1) -> None:
        """Discard."""

    def stage(self, stage_name: str) -> _NullSpan:
        """A shared no-op context manager."""
        return _NULL_SPAN

    def record_run(self, op: str, clock: StageClock) -> None:
        """Discard."""

    def snapshot(self) -> dict:
        """Always empty."""
        return {"name": "", "counters": {}, "timers": {}}

    def clear(self) -> None:
        """Nothing to clear."""


NULL_INSTRUMENTATION = NullInstrumentation()

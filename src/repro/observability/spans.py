"""Hierarchical spans with stable trace/span identifiers.

One *trace* follows a single protocol operation end to end — a join
request arriving over UDP, the rekey pipeline run it triggers, the
dispatch of the resulting messages — as a tree of *spans*, each a named
timed region with attributes and an error flag.

Identifiers are small integers drawn from per-tracer counters, so a
seeded run produces the same IDs every time (no clock or RNG
involvement; ``PYTHONHASHSEED`` cannot perturb them).  In-process
propagation is implicit: ``tracer.span(...)`` parents itself to the
innermost active span on the current thread.  Cross-process propagation
uses :func:`attach_trace_trailer` / :func:`split_trace_trailer`: a
20-byte trailer (magic + trace id + span id) appended *after* the
encoded protocol message, so the message's own wire bytes are untouched
and receivers without telemetry parse the datagram unchanged (the
decoder ignores trailing bytes).

The default everywhere is :data:`NULL_TRACER`, whose ``span`` returns a
shared no-op span — tracing costs nothing unless a caller opts in.
"""

from __future__ import annotations

import struct
import threading
import time
from typing import Any, Dict, List, NamedTuple, Optional, Tuple, Union

#: Schema tag for exported trace documents ({"schema": ..., "spans": []}).
TRACE_SCHEMA = "repro-trace/1"

#: Out-of-band telemetry trailer: magic + trace id + span id.
TRAILER_MAGIC = b"KGT1"
_TRAILER = struct.Struct(">QQ")
TRAILER_SIZE = len(TRAILER_MAGIC) + _TRAILER.size


class SpanContext(NamedTuple):
    """The propagatable identity of a span."""

    trace_id: int
    span_id: int


NULL_CONTEXT = SpanContext(0, 0)


def attach_trace_trailer(payload: bytes, context: SpanContext) -> bytes:
    """Append the out-of-band telemetry trailer to a datagram payload."""
    return payload + TRAILER_MAGIC + _TRAILER.pack(context.trace_id,
                                                   context.span_id)


def split_trace_trailer(datagram: bytes
                        ) -> Tuple[bytes, Optional[SpanContext]]:
    """Strip a telemetry trailer if present; returns (payload, context).

    Datagrams without the trailer come back unchanged with a ``None``
    context, so receivers handle traced and untraced peers uniformly.
    """
    if (len(datagram) >= TRAILER_SIZE
            and datagram[-TRAILER_SIZE:-_TRAILER.size] == TRAILER_MAGIC):
        trace_id, span_id = _TRAILER.unpack(datagram[-_TRAILER.size:])
        return datagram[:-TRAILER_SIZE], SpanContext(trace_id, span_id)
    return datagram, None


class Span:
    """One named timed region within a trace."""

    __slots__ = ("name", "context", "parent_id", "attributes", "start_ns",
                 "end_ns", "error", "_tracer")

    def __init__(self, tracer: "Tracer", name: str, context: SpanContext,
                 parent_id: int, attributes: Dict[str, Any]):
        self.name = name
        self.context = context
        self.parent_id = parent_id
        self.attributes = attributes
        self.start_ns = time.perf_counter_ns()
        self.end_ns: Optional[int] = None
        self.error = False
        self._tracer = tracer

    @property
    def trace_id(self) -> int:
        """The owning trace's identifier."""
        return self.context.trace_id

    @property
    def span_id(self) -> int:
        """This span's identifier."""
        return self.context.span_id

    @property
    def duration_ns(self) -> int:
        """Elapsed nanoseconds (up to now while the span is open)."""
        end = self.end_ns if self.end_ns is not None else \
            time.perf_counter_ns()
        return end - self.start_ns

    def set(self, key: str, value: Any) -> "Span":
        """Attach one attribute; returns self for chaining."""
        self.attributes[key] = value
        return self

    def finish(self, error: bool = False) -> None:
        """Close the span (idempotent) and hand it to the tracer."""
        if self.end_ns is not None:
            return
        self.end_ns = time.perf_counter_ns()
        if error:
            self.error = True
        self._tracer._finished(self)

    def __enter__(self) -> "Span":
        self._tracer._push(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tracer._pop(self)
        self.finish(error=exc_type is not None)

    def __repr__(self) -> str:
        flag = " ERROR" if self.error else ""
        return (f"Span({self.name!r}, trace={self.trace_id}, "
                f"span={self.span_id}, parent={self.parent_id}{flag})")


class Tracer:
    """Creates spans, tracks the active span stack, retains finished ones.

    Finished spans are kept in a bounded ring (oldest dropped first) so
    long-running servers can stay traced without unbounded growth.
    """

    enabled = True

    def __init__(self, capacity: int = 4096):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._spans: List[Span] = []
        self._dropped = 0
        self._next_trace = 0
        self._next_span = 0
        self._active = threading.local()

    # -- span creation ------------------------------------------------------

    def span(self, name: str,
             parent: Union[Span, SpanContext, None] = None,
             **attributes: Any) -> Span:
        """Open a span.

        With no explicit ``parent``, the innermost active span on this
        thread is the parent; with no active span either, the span roots
        a fresh trace.  Pass a remote :class:`SpanContext` to continue a
        trace that arrived over the wire.
        """
        if parent is None:
            parent = self.current()
        with self._lock:
            self._next_span += 1
            span_id = self._next_span
            if parent is None:
                self._next_trace += 1
                trace_id, parent_id = self._next_trace, 0
            elif isinstance(parent, Span):
                trace_id, parent_id = parent.trace_id, parent.span_id
            else:
                trace_id, parent_id = parent.trace_id, parent.span_id
        return Span(self, name, SpanContext(trace_id, span_id), parent_id,
                    dict(attributes))

    def current(self) -> Optional[Span]:
        """The innermost active span on this thread (None outside spans)."""
        stack = getattr(self._active, "stack", None)
        return stack[-1] if stack else None

    # -- bookkeeping --------------------------------------------------------

    def _push(self, span: Span) -> None:
        stack = getattr(self._active, "stack", None)
        if stack is None:
            stack = self._active.stack = []
        stack.append(span)

    def _pop(self, span: Span) -> None:
        stack = getattr(self._active, "stack", None)
        if stack and stack[-1] is span:
            stack.pop()

    def _finished(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)
            if len(self._spans) > self.capacity:
                del self._spans[0]
                self._dropped += 1

    # -- queries ------------------------------------------------------------

    def finished(self) -> List[Span]:
        """Finished spans, oldest first."""
        with self._lock:
            return list(self._spans)

    def trace(self, trace_id: int) -> List[Span]:
        """Finished spans of one trace, in finish order."""
        return [span for span in self.finished()
                if span.trace_id == trace_id]

    @property
    def dropped(self) -> int:
        """Finished spans evicted by the ring."""
        return self._dropped

    def clear(self) -> None:
        """Forget every finished span (identifier counters keep going)."""
        with self._lock:
            self._spans.clear()
            self._dropped = 0

    def export(self) -> List[dict]:
        """Finished spans as JSON-friendly dicts (for snapshot sidecars).

        ``start_ns`` is the span's ``perf_counter_ns`` start — only
        offsets between spans of one process are meaningful, which is
        exactly what the timeline renderer needs for its waterfall.
        """
        return [{
            "name": span.name,
            "trace_id": span.trace_id,
            "span_id": span.span_id,
            "parent_id": span.parent_id,
            "start_ns": span.start_ns,
            "duration_ns": span.duration_ns,
            "error": span.error,
            "attributes": dict(span.attributes),
        } for span in self.finished()]


class _NullSpan:
    """Shared no-op span."""

    __slots__ = ()

    name = ""
    context = NULL_CONTEXT
    trace_id = 0
    span_id = 0
    parent_id = 0
    attributes: Dict[str, Any] = {}
    start_ns = 0
    end_ns = 0
    duration_ns = 0
    error = False

    def set(self, key: str, value: Any) -> "_NullSpan":
        """Discard."""
        return self

    def finish(self, error: bool = False) -> None:
        """Nothing to finish."""

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


NULL_SPAN = _NullSpan()


class NullTracer:
    """Zero-overhead tracer: every span is the shared no-op span."""

    __slots__ = ()

    enabled = False
    capacity = 0
    dropped = 0

    def span(self, name: str, parent=None, **attributes: Any) -> _NullSpan:
        """The shared no-op span."""
        return NULL_SPAN

    def current(self) -> None:
        """Never inside a span."""
        return None

    def finished(self) -> List[Span]:
        """Always empty."""
        return []

    def trace(self, trace_id: int) -> List[Span]:
        """Always empty."""
        return []

    def export(self) -> List[dict]:
        """Always empty."""
        return []

    def clear(self) -> None:
        """Nothing to clear."""


NULL_TRACER = NullTracer()

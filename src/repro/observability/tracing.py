"""Optional trace-event ring buffer.

A :class:`TraceBuffer` keeps the last N structured events (timestamp,
name, fields) for post-mortem inspection of a rekey pipeline — which
stages ran, how many plans each produced, where time went.  The default
everywhere is :data:`NULL_TRACE`, a :class:`NullTraceBuffer` whose
``emit`` is a constant no-op, so tracing costs nothing unless a caller
opts in by passing a real buffer.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, NamedTuple


class TraceEvent(NamedTuple):
    """One recorded event."""

    timestamp_ns: int
    name: str
    fields: Dict[str, Any]


class TraceBuffer:
    """Fixed-capacity ring buffer of :class:`TraceEvent`."""

    __slots__ = ("capacity", "_events", "_next", "_total")

    enabled = True

    def __init__(self, capacity: int = 1024):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._events: List[TraceEvent] = []
        self._next = 0          # ring write position once full
        self._total = 0         # events ever emitted (incl. overwritten)

    def emit(self, name: str, **fields: Any) -> None:
        """Record an event, overwriting the oldest once at capacity."""
        event = TraceEvent(time.perf_counter_ns(), name, fields)
        if len(self._events) < self.capacity:
            self._events.append(event)
        else:
            self._events[self._next] = event
            self._next = (self._next + 1) % self.capacity
        self._total += 1

    def events(self) -> List[TraceEvent]:
        """Retained events, oldest first."""
        if len(self._events) < self.capacity:
            return list(self._events)
        return self._events[self._next:] + self._events[:self._next]

    @property
    def dropped(self) -> int:
        """Events overwritten by the ring since the last clear."""
        return self._total - len(self._events)

    def clear(self) -> None:
        """Empty the buffer."""
        self._events.clear()
        self._next = 0
        self._total = 0

    def __len__(self) -> int:
        return len(self._events)


class NullTraceBuffer:
    """Zero-overhead stand-in: every operation is a no-op."""

    __slots__ = ()

    enabled = False
    capacity = 0
    dropped = 0

    def emit(self, name: str, **fields: Any) -> None:
        """Discard the event."""

    def events(self) -> List[TraceEvent]:
        """Always empty."""
        return []

    def clear(self) -> None:
        """Nothing to clear."""

    def __len__(self) -> int:
        return 0


NULL_TRACE = NullTraceBuffer()

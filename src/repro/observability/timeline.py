"""Text waterfall rendering of exported trace spans.

Takes the JSON-friendly span dicts produced by
:meth:`~repro.observability.spans.Tracer.export` (each carrying
``start_ns`` from the process ``perf_counter``) and renders one trace as
an indented tree with proportional duration bars:

.. code-block:: text

    trace 7 — 9 spans, 1.84ms
    serve.request                  1.84ms  ██████████████████████████████
      serve.plan                   0.21ms    ███
        rekey.join                 0.19ms    ███
      serve.exec                   1.02ms           ████████████████
        cluster.join               0.97ms            ███████████████
          shard.join               0.44ms            ███████
          rekey.root-rekey         0.41ms                   ██████

Only span *offsets within one process* are meaningful (perf counters
are not wall clocks and differ between processes), which is exactly the
scope of one serving core's tracer.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


class TimelineError(ValueError):
    """Raised when the requested trace cannot be rendered."""


def trace_ids(spans: Sequence[dict]) -> List[int]:
    """Distinct trace ids present, most spans first (ties: lower id)."""
    tallies: Dict[int, int] = {}
    for span in spans:
        tallies[span["trace_id"]] = tallies.get(span["trace_id"], 0) + 1
    return sorted(tallies, key=lambda tid: (-tallies[tid], tid))


def _trace_tree(spans: Sequence[dict]) -> List[dict]:
    """Order one trace's spans depth-first, stamping ``_depth``.

    Spans whose parent is missing (evicted from the ring, or remote)
    render as additional roots rather than being dropped.
    """
    by_id = {span["span_id"]: span for span in spans}
    children: Dict[int, List[dict]] = {}
    roots: List[dict] = []
    for span in sorted(spans, key=lambda s: (s.get("start_ns", 0),
                                             s["span_id"])):
        parent = span.get("parent_id", 0)
        if parent and parent in by_id:
            children.setdefault(parent, []).append(span)
        else:
            roots.append(span)
    ordered: List[dict] = []

    def visit(span: dict, depth: int) -> None:
        entry = dict(span)
        entry["_depth"] = depth
        ordered.append(entry)
        for child in children.get(span["span_id"], []):
            visit(child, depth + 1)

    for root in roots:
        visit(root, 0)
    return ordered


def render_timeline(spans: Sequence[dict],
                    trace_id: Optional[int] = None,
                    width: int = 40) -> str:
    """Render one trace as a text waterfall.

    With no explicit ``trace_id`` the trace with the most spans is
    chosen.  ``width`` is the bar area in characters.
    """
    if not spans:
        raise TimelineError("no spans to render")
    if trace_id is None:
        trace_id = trace_ids(spans)[0]
    selected = [span for span in spans if span["trace_id"] == trace_id]
    if not selected:
        raise TimelineError(f"trace {trace_id} has no spans")
    ordered = _trace_tree(selected)
    t0 = min(span.get("start_ns", 0) for span in ordered)
    t1 = max(span.get("start_ns", 0) + span.get("duration_ns", 0)
             for span in ordered)
    extent_ns = max(t1 - t0, 1)

    labels = []
    for span in ordered:
        name = span["name"]
        if span.get("error"):
            name += " !"
        labels.append("  " * span["_depth"] + name)
    label_width = max(len(label) for label in labels)

    lines = [f"trace {trace_id} — {len(ordered)} spans, "
             f"{extent_ns / 1e6:.2f}ms"]
    for label, span in zip(labels, ordered):
        start = span.get("start_ns", 0) - t0
        duration = span.get("duration_ns", 0)
        left = int(width * start / extent_ns)
        bar = max(1, round(width * duration / extent_ns))
        bar = min(bar, width - left) or 1
        lines.append(f"{label.ljust(label_width)}  "
                     f"{duration / 1e6:8.3f}ms  "
                     f"{' ' * left}{'█' * bar}")
    return "\n".join(lines) + "\n"


def render_trace_index(spans: Sequence[dict], limit: int = 20) -> str:
    """One line per trace: id, span count, root name, total duration."""
    if not spans:
        return "no traces recorded\n"
    lines = []
    for tid in trace_ids(spans)[:limit]:
        selected = [span for span in spans if span["trace_id"] == tid]
        roots = [span for span in selected if not span.get("parent_id")]
        root_name = roots[0]["name"] if roots else selected[0]["name"]
        t0 = min(span.get("start_ns", 0) for span in selected)
        t1 = max(span.get("start_ns", 0) + span.get("duration_ns", 0)
                 for span in selected)
        errors = sum(1 for span in selected if span.get("error"))
        flag = f"  errors={errors}" if errors else ""
        lines.append(f"trace {tid}: {len(selected)} spans, "
                     f"root={root_name}, {(t1 - t0) / 1e6:.2f}ms{flag}")
    return "\n".join(lines) + "\n"

"""Shared observability core: metrics, spans, timers, counters, exporters.

The repo's rekey paths all report through this package so that every
paper-facing number (processing time, encryption counts, message
counts/sizes) derives from one instrumentation source:

* :class:`~repro.observability.metrics.MetricRegistry` — thread-safe
  labeled :class:`~repro.observability.metrics.Counter` /
  :class:`~repro.observability.metrics.Gauge` /
  :class:`~repro.observability.metrics.Histogram` families with
  fixed log-scale buckets, ``snapshot()``/``merge()`` for aggregating
  across workers, and :data:`~repro.observability.metrics.NULL_REGISTRY`
  as the zero-overhead default;
* :class:`~repro.observability.spans.Tracer` — hierarchical spans with
  stable trace/span IDs, implicit in-process propagation and an
  out-of-band wire trailer for cross-process propagation
  (:data:`~repro.observability.spans.NULL_TRACER` by default);
* :mod:`~repro.observability.export` — Prometheus text exposition and
  the versioned ``repro-metrics/1`` JSON snapshot, plus the
  ``python -m repro.observability report`` CLI;
* :class:`~repro.observability.counters.Counters` — named monotonic
  counters (the flat PR-1 namespace, kept);
* :class:`~repro.observability.timers.StageClock` /
  :class:`~repro.observability.timers.StageTimers` — per-run and
  aggregate stage timings, with failed stages flagged rather than
  dropped;
* :class:`~repro.observability.tracing.TraceBuffer` — an optional
  trace-event ring buffer, with :data:`NULL_TRACE` as the
  zero-overhead default;
* :class:`~repro.observability.instrumentation.Instrumentation` — the
  facade components take, with :data:`NULL_INSTRUMENTATION` for
  callers that want no accounting at all;
* :class:`~repro.observability.flight.FlightRecorder` — the always-on
  bounded event ring dumped to JSON on error/SLO breach/signal
  (:data:`~repro.observability.flight.NULL_FLIGHT` by default);
* :mod:`~repro.observability.slo` — declarative latency/availability
  objectives evaluated over metric snapshots, with burn rates;
* :mod:`~repro.observability.timeline` — the text waterfall renderer
  over exported spans (``python -m repro.observability timeline``).
"""

from .counters import Counters
from .flight import (FLIGHT_SCHEMA, NULL_FLIGHT, FlightError,
                     FlightRecorder, validate_flight)
from .instrumentation import (NULL_INSTRUMENTATION, Instrumentation,
                              NullInstrumentation)
from .metrics import (COUNT_BUCKETS, LATENCY_BUCKETS_S, NULL_REGISTRY,
                      SIZE_BUCKETS_BYTES, Counter, Gauge, Histogram,
                      MetricError, MetricRegistry, NullMetricRegistry,
                      merge_snapshots)
from .slo import (SLO, SLOError, SLOStatus, burn_rate, evaluate,
                  parse_slo, render_slo_report, slos_from_spec_text)
from .spans import (NULL_TRACER, TRACE_SCHEMA, NullTracer, Span,
                    SpanContext, Tracer, attach_trace_trailer,
                    split_trace_trailer)
from .timeline import render_timeline, render_trace_index, trace_ids
from .timers import StageClock, StageTimers, Stopwatch, TimerStat
from .tracing import NULL_TRACE, NullTraceBuffer, TraceBuffer, TraceEvent

__all__ = [
    "Counters",
    "Instrumentation",
    "NullInstrumentation",
    "NULL_INSTRUMENTATION",
    "MetricRegistry",
    "NullMetricRegistry",
    "NULL_REGISTRY",
    "MetricError",
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS_S",
    "SIZE_BUCKETS_BYTES",
    "COUNT_BUCKETS",
    "merge_snapshots",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "TRACE_SCHEMA",
    "Span",
    "SpanContext",
    "attach_trace_trailer",
    "split_trace_trailer",
    "StageClock",
    "StageTimers",
    "Stopwatch",
    "TimerStat",
    "TraceBuffer",
    "NullTraceBuffer",
    "TraceEvent",
    "NULL_TRACE",
    "FlightRecorder",
    "FlightError",
    "FLIGHT_SCHEMA",
    "NULL_FLIGHT",
    "validate_flight",
    "SLO",
    "SLOError",
    "SLOStatus",
    "parse_slo",
    "slos_from_spec_text",
    "evaluate",
    "burn_rate",
    "render_slo_report",
    "render_timeline",
    "render_trace_index",
    "trace_ids",
]

"""Shared observability core: counters, stage timers, trace events.

The repo's rekey paths all report through this package so that every
paper-facing number (processing time, encryption counts, message
counts/sizes) derives from one instrumentation source:

* :class:`~repro.observability.counters.Counters` — named monotonic
  counters;
* :class:`~repro.observability.timers.StageClock` /
  :class:`~repro.observability.timers.StageTimers` — per-run and
  aggregate stage timings (``RequestRecord.seconds`` and
  ``BatchResult.seconds`` are StageClock totals);
* :class:`~repro.observability.tracing.TraceBuffer` — an optional
  trace-event ring buffer, with :data:`NULL_TRACE` as the
  zero-overhead default;
* :class:`~repro.observability.instrumentation.Instrumentation` — the
  facade components take, with :data:`NULL_INSTRUMENTATION` for
  callers that want no accounting at all.
"""

from .counters import Counters
from .instrumentation import (NULL_INSTRUMENTATION, Instrumentation,
                              NullInstrumentation)
from .timers import StageClock, StageTimers, Stopwatch, TimerStat
from .tracing import NULL_TRACE, NullTraceBuffer, TraceBuffer, TraceEvent

__all__ = [
    "Counters",
    "Instrumentation",
    "NullInstrumentation",
    "NULL_INSTRUMENTATION",
    "StageClock",
    "StageTimers",
    "Stopwatch",
    "TimerStat",
    "TraceBuffer",
    "NullTraceBuffer",
    "TraceEvent",
    "NULL_TRACE",
]

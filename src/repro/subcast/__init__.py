"""Subgroup multicast ("subcast"): sealed messages to arbitrary subsets.

The paper's key graphs exist to rekey on membership change, but the
same structure answers a second question: how do you send one message
to an *arbitrary* subset of a million-member group without ``|S|``
unicasts?  Compute a key cover of the subset (:mod:`repro.keygraph.
covering`), seal the payload once under a fresh message key, and seal
that message key once per cover key — ``O(|cover|)`` ciphertexts,
where the cover of a clustered subset is a handful of subtree keys.

Layers:

* :class:`~repro.subcast.sealing.SubcastSealer` — cover in, signed
  ``MSG_SUBCAST`` out (dedicated DRBG personalization; byte-
  deterministic);
* :mod:`repro.subcast.wire` — the ``MSG_SUBCAST_REQUEST`` body codec
  for the async front-end path;
* server entry points — ``subcast()`` on
  :class:`~repro.core.server.GroupKeyServer`, :class:`~repro.batch.
  rekeying.BatchRekeyServer` and :class:`~repro.cluster.coordinator.
  ClusterCoordinator` (per-shard covers plus root-layer keys for
  fully-covered shards);
* client decrypt — :meth:`repro.core.client.GroupClient.open_subcast`.
"""

from .sealing import CoverKey, SubcastError, SubcastSealer
from .wire import (SUBCAST_REQUEST_VERSION, SubcastWireError,
                   encode_subcast_request, parse_subcast_request)

__all__ = [
    "SubcastSealer", "SubcastError", "CoverKey",
    "SubcastWireError", "encode_subcast_request", "parse_subcast_request",
    "SUBCAST_REQUEST_VERSION",
]

"""Sealing a payload to a key cover: the subcast message builder.

One subcast is one ciphertext no matter how many cover keys address it:
the payload is encrypted once under a fresh *message key*, and the
message key is sealed once per cover key.  A member holding any cover
key peels two layers (cover key → message key → payload); everyone
else — non-members, evicted members holding stale key versions,
members outside the target subset — holds none of the referenced
(node id, version) keys and provably cannot decrypt.

Determinism contract: all key/IV draws come from the sealer's own
:class:`~repro.core.pipeline.KeyMaterialSource`, built with a
*dedicated DRBG personalization* per hosting server (``subcast-seal``,
``batch-subcast``, ``cluster-subcast``) — sealing a subcast never
perturbs the rekey key stream, so a run with interleaved subcasts
stays byte-identical to its subcast-free control on every rekey
message.  The subcast bytes themselves are pinned by golden digests
(``tests/subcast/test_sealing.py``).
"""

from __future__ import annotations

import threading
import time
from typing import List, Optional, Sequence, Tuple

from ..core.messages import (MSG_SUBCAST, SUBCAST_MESSAGE_KEY, Destination,
                             EncryptedItem, KeyRecord, Message,
                             OutboundMessage, encrypt_records)
from ..core.pipeline import KeyMaterialSource, Sequencer
from ..crypto import modes

#: A cover entry: the (node id, version) wire reference members hold
#: the key under, plus the key bytes to seal with.
CoverKey = Tuple[int, int, bytes]


class SubcastError(ValueError):
    """Raised on invalid subcast inputs (empty cover, empty target)."""


class SubcastSealer:
    """Builds signed ``MSG_SUBCAST`` messages from a key cover.

    The sealer is deliberately tree-agnostic: callers (the three server
    flavors) compute the cover with whatever covering algorithm their
    config selects and hand over ``(node_id, version, key)`` triples.
    ``seal_lock`` serializes signing with any staged pipeline runs
    sharing the signer (the same discipline as control messages).
    """

    def __init__(self, suite, material: KeyMaterialSource, signer,
                 sequencer: Sequencer, *, group_id: int = 1,
                 seal_lock: Optional[threading.Lock] = None):
        self.suite = suite
        self.material = material
        self.signer = signer
        self.sequencer = sequencer
        self.group_id = group_id
        self.seal_lock = seal_lock if seal_lock is not None \
            else threading.Lock()

    def seal(self, cover: Sequence[CoverKey], payload: bytes, *,
             receivers: Sequence[str],
             root_ref: Tuple[int, int]) -> OutboundMessage:
        """One payload ciphertext plus per-cover-key sealed message keys.

        ``cover`` must address exactly ``receivers`` (the covering
        algorithms guarantee this); ``root_ref`` stamps the current
        group-key reference into the header so receivers can detect
        staleness without treating the subcast as a rekey.
        """
        if not cover:
            raise SubcastError("subcast needs a non-empty key cover")
        if not receivers:
            raise SubcastError("subcast needs at least one receiver")
        seq = self.sequencer.next()
        subcast_id = seq & 0xFFFFFFFF
        # Draw order is part of the byte-determinism contract: message
        # key, payload IV, then one IV per cover item in node-id order.
        message_key = self.material.new_key()
        payload_iv = self.material.new_iv()
        block = self.suite.block_size
        padded_len = -(-max(len(payload), 1) // block) * block
        padded = payload.ljust(padded_len, b"\x00")
        cipher = self.suite.new_cipher(message_key)
        ciphertext = modes.cbc_encrypt_nopad(cipher, padded, payload_iv)
        items: List[EncryptedItem] = [
            EncryptedItem(SUBCAST_MESSAGE_KEY, subcast_id, payload_iv,
                          ciphertext, len(payload))]
        record = KeyRecord(SUBCAST_MESSAGE_KEY, subcast_id, message_key)
        for node_id, version, key in sorted(cover,
                                            key=lambda entry: entry[0]):
            items.append(encrypt_records(
                self.suite, key, self.material.new_iv(), [record],
                node_id, version))
        root_id, root_version = root_ref
        message = Message(
            msg_type=MSG_SUBCAST, group_id=self.group_id, seq=seq,
            timestamp_us=time.time_ns() // 1000,
            root_node_id=root_id, root_version=root_version, items=items)
        with self.seal_lock:
            self.signer.seal([message])
        return OutboundMessage(Destination.to_users(tuple(receivers)),
                               message, tuple(receivers), message.encode())

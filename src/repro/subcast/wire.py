"""Request encoding for the subcast front-end path.

A ``MSG_SUBCAST_REQUEST`` body names the requesting member, the target
subset and the application payload.  The encoding is length-prefixed
binary in the spirit of the rest of the wire module — compact enough
that a few-hundred-member target list rides one UDP datagram, and the
million-member experiments call the server entry points in-process
where no datagram ceiling applies.
"""

from __future__ import annotations

import struct
from typing import List, Sequence, Tuple

SUBCAST_REQUEST_VERSION = 1

_FIXED = struct.Struct(">BHI")  # version, sender length, target count


class SubcastWireError(ValueError):
    """Raised when decoding a malformed subcast request body."""


def encode_subcast_request(sender: str, targets: Sequence[str],
                           payload: bytes) -> bytes:
    """Encode ``(sender, targets, payload)`` as a request body."""
    sender_bytes = sender.encode("utf-8")
    parts = [_FIXED.pack(SUBCAST_REQUEST_VERSION, len(sender_bytes),
                         len(targets)),
             sender_bytes]
    for target in targets:
        target_bytes = target.encode("utf-8")
        parts.append(struct.pack(">H", len(target_bytes)))
        parts.append(target_bytes)
    parts.append(struct.pack(">I", len(payload)))
    parts.append(payload)
    return b"".join(parts)


def parse_subcast_request(body: bytes) -> Tuple[str, List[str], bytes]:
    """Parse a request body back into ``(sender, targets, payload)``."""
    try:
        version, sender_len, n_targets = _FIXED.unpack_from(body, 0)
    except struct.error as exc:
        raise SubcastWireError(f"truncated subcast request: {exc}") from None
    if version != SUBCAST_REQUEST_VERSION:
        raise SubcastWireError(f"unsupported subcast request "
                               f"version {version}")
    offset = _FIXED.size
    sender = body[offset:offset + sender_len]
    if len(sender) != sender_len:
        raise SubcastWireError("truncated sender")
    offset += sender_len
    targets: List[str] = []
    for _ in range(n_targets):
        try:
            (target_len,) = struct.unpack_from(">H", body, offset)
        except struct.error as exc:
            raise SubcastWireError(f"truncated target list: {exc}") from None
        offset += 2
        target = body[offset:offset + target_len]
        if len(target) != target_len:
            raise SubcastWireError("truncated target")
        offset += target_len
        targets.append(target.decode("utf-8"))
    try:
        (payload_len,) = struct.unpack_from(">I", body, offset)
    except struct.error as exc:
        raise SubcastWireError(f"truncated payload length: {exc}") from None
    offset += 4
    payload = body[offset:offset + payload_len]
    if len(payload) != payload_len:
        raise SubcastWireError("truncated payload")
    return sender.decode("utf-8"), targets, payload

"""Star key graphs (paper §2.2, §3.1–3.2): the conventional baseline.

Each user holds exactly two keys — its individual key and the group key.
Rekeying after a leave costs ``n - 1`` encryptions (one per remaining
member), which is the scalability problem the key tree solves.

Implemented standalone (rather than as a degenerate tree) so the join and
leave protocols of Figures 2 and 4 map one-to-one onto methods.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple

from .graph import KeyGraph


class StarError(ValueError):
    """Raised on invalid star-group edits."""


@dataclass
class StarRekey:
    """Rekey plan after a star join/leave.

    ``encrypt_for`` lists ``(user_id, encrypting_key)`` pairs — the new
    group key must be sent to each user encrypted under that key.  After
    a join the old group key covers all prior members in one multicast
    (``multicast_under_old_group_key`` is set); after a leave each
    remaining member needs a unicast under its individual key.
    """

    new_group_key: bytes
    new_version: int
    multicast_under_old_group_key: bytes = b""
    old_version: int = 0
    encrypt_for: List[Tuple[str, bytes]] = field(default_factory=list)

    @property
    def n_encryptions(self) -> int:
        """Server encryption count (Table 2c: 2 for join, n-1 for leave)."""
        return len(self.encrypt_for) + (1 if self.multicast_under_old_group_key else 0)


class StarGroup:
    """A secure group specified by a star key graph."""

    GROUP_NODE_ID = 0

    def __init__(self, keygen: Callable[[], bytes]):
        self._keygen = keygen
        self._members: Dict[str, bytes] = {}
        self.group_key = keygen()
        self.group_key_version = 0

    def __len__(self) -> int:
        return len(self._members)

    @property
    def n_keys(self) -> int:
        """Total keys held by the server: n individual keys + group key."""
        return len(self._members) + 1

    def members(self) -> List[str]:
        """Current member ids."""
        return list(self._members)

    def has_user(self, user_id: str) -> bool:
        """True iff ``user_id`` is a member."""
        return user_id in self._members

    def individual_key(self, user_id: str) -> bytes:
        """The member's individual key."""
        try:
            return self._members[user_id]
        except KeyError:
            raise StarError(f"unknown user {user_id!r}") from None

    def keyset(self, user_id: str) -> Tuple[bytes, bytes]:
        """The two keys a star member holds."""
        return (self.individual_key(user_id), self.group_key)

    def _rotate_group_key(self) -> Tuple[bytes, int]:
        old = self.group_key
        self.group_key = self._keygen()
        self.group_key_version += 1
        return old, self.group_key_version

    def join(self, user_id: str, individual_key: bytes) -> StarRekey:
        """Figure 2: new group key to joiner (unicast) + old members (multicast)."""
        if user_id in self._members:
            raise StarError(f"user {user_id!r} is already a member")
        had_members = bool(self._members)
        self._members[user_id] = individual_key
        old_group_key, version = self._rotate_group_key()
        rekey = StarRekey(
            new_group_key=self.group_key,
            new_version=version,
            encrypt_for=[(user_id, individual_key)],
        )
        if had_members:
            rekey.multicast_under_old_group_key = old_group_key
            rekey.old_version = version - 1
        return rekey

    def leave(self, user_id: str) -> StarRekey:
        """Figure 4: new group key unicast to each remaining member."""
        if user_id not in self._members:
            raise StarError(f"unknown user {user_id!r}")
        del self._members[user_id]
        __, version = self._rotate_group_key()
        return StarRekey(
            new_group_key=self.group_key,
            new_version=version,
            encrypt_for=[(uid, key) for uid, key in self._members.items()],
        )

    def to_key_graph(self) -> KeyGraph:
        """Export as a formal :class:`KeyGraph` for validation."""
        graph = KeyGraph()
        graph.add_k_node("k-group")
        for user_id in self._members:
            graph.add_u_node(user_id)
            graph.add_k_node(f"k-{user_id}")
            graph.add_edge(user_id, f"k-{user_id}")
            graph.add_edge(user_id, "k-group")
        return graph

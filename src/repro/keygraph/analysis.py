"""Key tree shape analysis.

The paper's server "employs a heuristic that attempts to build and
maintain a key tree that is full and balanced.  However, since the
sequence of join/leave requests is randomly generated, it is unlikely
that the tree is truly full and balanced at any time."  This module
quantifies how close the tree actually stays: height vs the balanced
optimum, interior fill factor, leaf-depth distribution, and key-count
overhead vs the d/(d-1)·n ideal.

Used by the long-churn drift ablation and the property tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

from .tree import KeyTree


@dataclass(frozen=True)
class TreeShape:
    """A snapshot of a key tree's structural quality."""

    n_users: int
    n_keys: int
    height: int                 # paper height h (u-node to root edges)
    optimal_height: int         # ceil(log_d n) + 1
    min_leaf_depth: int         # shallowest user's key count
    mean_leaf_depth: float
    interior_fill: float        # mean children/degree over interior nodes
    key_overhead: float         # n_keys / (d/(d-1) * n)

    @property
    def height_slack(self) -> int:
        """Levels above the balanced optimum (0 = perfectly balanced)."""
        return self.height - self.optimal_height

    @property
    def depth_spread(self) -> float:
        """Gap between deepest and shallowest user (skew indicator)."""
        return self.height - self.min_leaf_depth


def measure(tree: KeyTree) -> TreeShape:
    """Compute the shape snapshot of ``tree``."""
    n = tree.n_users
    if n == 0:
        raise ValueError("cannot measure an empty tree")
    # One breadth-first pass with depths: no per-leaf root-path walks
    # (O(n·h) and list churn), no recursion (depth-limited at scale).
    depths: List[int] = []
    interior_children: List[int] = []
    for node, depth in tree.nodes_with_depth():
        if node.is_leaf:
            depths.append(depth + 1)
        else:
            interior_children.append(len(node.children))
    optimal = 2 if n == 1 else math.ceil(math.log(n, tree.degree)) + 1
    ideal_keys = tree.degree / (tree.degree - 1) * n
    return TreeShape(
        n_users=n,
        n_keys=tree.n_keys,
        height=max(depths),
        optimal_height=optimal,
        min_leaf_depth=min(depths),
        mean_leaf_depth=sum(depths) / len(depths),
        interior_fill=(sum(interior_children)
                       / (len(interior_children) * tree.degree)
                       if interior_children else 1.0),
        key_overhead=tree.n_keys / ideal_keys,
    )


def leaf_depth_histogram(tree: KeyTree) -> Dict[int, int]:
    """Number of users at each key-path length."""
    histogram: Dict[int, int] = {}
    for node, depth in tree.nodes_with_depth():
        if node.is_leaf:
            histogram[depth + 1] = histogram.get(depth + 1, 0) + 1
    return histogram


def assert_balanced(tree: KeyTree, slack: int = 1) -> TreeShape:
    """Raise AssertionError if the tree drifted beyond ``slack`` levels."""
    shape = measure(tree)
    if shape.height_slack > slack:
        raise AssertionError(
            f"tree drifted: height {shape.height} vs optimal "
            f"{shape.optimal_height} (slack {slack})")
    return shape

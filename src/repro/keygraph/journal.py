"""Append-only on-disk tree journal: restart by replay, not rebuild.

At n = 1M, reconstructing a server by re-running its whole request
history through the full rekey pipeline (planning, encryption, signing)
takes minutes; rebuilding via ``bootstrap`` produces a *different* tree
(fresh keys).  The journal makes restart cheap and exact:

* the file opens with a **checkpoint record** — an opaque snapshot blob
  (produced by :func:`repro.core.persistence.snapshot`) of the server at
  attach time;
* every subsequent state-changing op appends one **op record** carrying
  the op name, its arguments, the key material the tree edit drew from
  the DRBG, and the server's sequence counter after the op.

Replay restores the last checkpoint, then re-applies each op as a pure
tree edit — the recorded keys are installed verbatim (no DRBG, no
pipeline), so the reconstructed server is byte-identical to the one
that wrote the journal regardless of whether the original ran seeded.

Record framing (binary, little-endian):

    +--------+--------+----------------+
    | length | crc32  | payload (JSON) |
    | u32 LE | u32 LE | ``length`` B   |
    +--------+--------+----------------+

preceded by an 8-byte file magic ``b"KGJRNL1\\n"``.  A torn final
record (crash mid-append) is detected by the CRC/length check and
dropped; everything before it replays normally.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from typing import Iterator, List, Optional, Tuple

MAGIC = b"KGJRNL1\n"
_FRAME = struct.Struct("<II")

# Record types.
CHECKPOINT = "checkpoint"


class JournalError(ValueError):
    """Raised on malformed journal files."""


class TreeJournal:
    """Writer/reader for the append-only op journal."""

    def __init__(self, path: str):
        self.path = path
        self._fh = None

    # -- writing -----------------------------------------------------------

    def _ensure_open(self):
        if self._fh is None:
            fresh = not os.path.exists(self.path) \
                or os.path.getsize(self.path) == 0
            self._fh = open(self.path, "ab")
            if fresh:
                self._fh.write(MAGIC)
                self._fh.flush()
        return self._fh

    def _write_record(self, payload: bytes) -> None:
        fh = self._ensure_open()
        fh.write(_FRAME.pack(len(payload), zlib.crc32(payload)))
        fh.write(payload)
        fh.flush()

    def checkpoint(self, blob: bytes) -> None:
        """Append a checkpoint record; replay resumes from the last one."""
        payload = json.dumps(
            {"op": CHECKPOINT, "blob": blob.hex()},
            separators=(",", ":")).encode("utf-8")
        self._write_record(payload)

    def append(self, op: str, **fields) -> None:
        """Append one op record.

        ``bytes`` values (individual keys, drawn key material) are
        hex-encoded; lists of bytes likewise.
        """
        doc = {"op": op}
        for name, value in fields.items():
            if isinstance(value, (bytes, bytearray, memoryview)):
                doc[name] = bytes(value).hex()
            elif isinstance(value, (list, tuple)) and all(
                    isinstance(v, (bytes, bytearray, memoryview))
                    for v in value):
                doc[name] = [bytes(v).hex() for v in value]
            else:
                doc[name] = value
        payload = json.dumps(doc, separators=(",", ":")).encode("utf-8")
        self._write_record(payload)

    def close(self) -> None:
        """Close the underlying file (appends reopen it)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "TreeJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- reading -----------------------------------------------------------

    def records(self, strict: bool = False) -> Iterator[dict]:
        """Yield every intact record; stops cleanly at a torn tail.

        A *torn* tail — the file ends mid-record, the signature of a
        crash between ``write`` and the final flush — is always
        tolerated: everything before it replays.  A *corrupt* record —
        all its bytes are present but the CRC disagrees, the signature
        of bit rot or tampering rather than a crash — is silently
        dropped (with everything after it) by default, or raises
        :class:`JournalError` with ``strict=True``.  Supervised
        restarts use strict mode: restarting a key server from a
        journal that failed its integrity check would hand members
        keys nobody can vouch for.
        """
        with open(self.path, "rb") as fh:
            magic = fh.read(len(MAGIC))
            if magic != MAGIC:
                raise JournalError(
                    f"{self.path}: not a key-graph journal")
            while True:
                header = fh.read(_FRAME.size)
                if len(header) < _FRAME.size:
                    return  # clean EOF or torn header: stop
                length, crc = _FRAME.unpack(header)
                payload = fh.read(length)
                if len(payload) < length:
                    return  # torn record (crash mid-append): drop
                if zlib.crc32(payload) != crc:
                    if strict:
                        raise JournalError(
                            f"{self.path}: CRC mismatch on a complete "
                            f"record ({length} bytes): corrupt, not torn")
                    return
                try:
                    yield json.loads(payload.decode("utf-8"))
                except ValueError as exc:  # pragma: no cover - crc guards
                    raise JournalError(
                        f"{self.path}: corrupt record: {exc}") from None

    def intact_length(self) -> int:
        """Byte offset just past the last intact record.

        Walks the framing without decoding payloads; a torn or
        CRC-failing tail is excluded.  Raises on a missing magic.
        """
        with open(self.path, "rb") as fh:
            magic = fh.read(len(MAGIC))
            if magic != MAGIC:
                raise JournalError(f"{self.path}: not a key-graph journal")
            offset = len(MAGIC)
            while True:
                header = fh.read(_FRAME.size)
                if len(header) < _FRAME.size:
                    return offset
                length, crc = _FRAME.unpack(header)
                payload = fh.read(length)
                if len(payload) < length or zlib.crc32(payload) != crc:
                    return offset
                offset += _FRAME.size + length

    def repair(self) -> int:
        """Truncate a torn/damaged tail so future appends stay readable.

        An append after a torn tail would be unreachable — replay stops
        at the damage — so a supervised restart repairs the file before
        re-attaching it.  Returns the number of bytes removed.
        """
        intact = self.intact_length()
        size = os.path.getsize(self.path)
        if size > intact:
            os.truncate(self.path, intact)
        return size - intact

    def load(self, strict: bool = False
             ) -> Tuple[Optional[bytes], List[dict]]:
        """(last checkpoint blob, op records after it)."""
        blob: Optional[bytes] = None
        ops: List[dict] = []
        for record in self.records(strict=strict):
            if record.get("op") == CHECKPOINT:
                blob = bytes.fromhex(record["blob"])
                ops = []
            else:
                ops.append(record)
        return blob, ops


class ReplayKeySource:
    """A keygen that replays recorded key draws, in order."""

    __slots__ = ("_keys", "_cursor")

    def __init__(self, keys: List[bytes]):
        self._keys = keys
        self._cursor = 0

    def __call__(self) -> bytes:
        if self._cursor >= len(self._keys):
            raise JournalError("journal replay ran out of recorded keys")
        key = self._keys[self._cursor]
        self._cursor += 1
        return key

    @property
    def exhausted(self) -> bool:
        """True iff every recorded key was consumed."""
        return self._cursor == len(self._keys)


def replay_into_tree(tree, ops: List[dict]) -> int:
    """Re-apply op records to ``tree``; returns the final seq (or -1).

    Only the tree-editing part of each op runs: recorded keys are
    installed through a :class:`ReplayKeySource` swapped in for the
    tree's keygen, so no DRBG draws happen and no rekey messages are
    produced.  ``register``/``seq`` records are skipped here (the
    server-level replay in ``core.persistence`` consumes them).
    """
    seq = -1
    original_keygen = tree._keygen
    try:
        for record in ops:
            op = record.get("op")
            if "seq" in record:
                seq = record["seq"]
            if op in ("register", "seq"):
                continue
            source = ReplayKeySource(
                [bytes.fromhex(k) for k in record.get("keys", [])])
            tree._keygen = source
            if op == "join":
                tree.join(record["user_id"],
                          bytes.fromhex(record["individual_key"]))
            elif op == "leave":
                tree.leave(record["user_id"])
            elif op == "refresh":
                root = tree.root
                if root is None:
                    raise JournalError("refresh record on an empty tree")
                root.replace_key(source())
            else:
                raise JournalError(f"unknown journal op {op!r}")
            if not source.exhausted:
                raise JournalError(
                    f"op {op!r} drew fewer keys than recorded")
    finally:
        tree._keygen = original_keygen
    return seq

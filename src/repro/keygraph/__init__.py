"""Key graphs: the formal model of secure groups (paper §2).

* :class:`~repro.keygraph.graph.KeyGraph` — generic DAG key graphs and
  their ``(U, K, R)`` semantics (:class:`~repro.keygraph.graph.SecureGroup`);
* :class:`~repro.keygraph.tree.KeyTree` — the operational LKH key tree
  with the full/balanced maintenance heuristic;
* :class:`~repro.keygraph.star.StarGroup` — the conventional baseline;
* :class:`~repro.keygraph.complete.CompleteGroup` — one key per subset;
* :mod:`~repro.keygraph.covering` — the (NP-hard) key-covering problem.
"""

from .analysis import TreeShape, assert_balanced, leaf_depth_histogram, measure
from .backend import (BACKENDS, DEFAULT_BACKEND, TreeBackend, build_tree,
                      make_tree, resolve_backend)
from .complete import CompleteGroup, CompleteGroupError
from .flat import FlatKeyTree, FlatNode, KeyArena
from .covering import (CoverError, complement_cover, exact_cover,
                       greedy_cover, greedy_tree_cover, is_cover,
                       partition_cover, tree_cover, tree_subset_cover)
from .graph import (K_NODE, U_NODE, KeyGraph, KeyGraphError, SecureGroup,
                    figure1_example)
from .materialized import (GraphRekeyOutcome, MaterializedGraphError,
                           MaterializedKeyGraph)
from .star import StarGroup, StarError, StarRekey
from .tree import (JoinResult, KeyTree, KeyTreeError, LeaveResult,
                   PathChange, TreeNode)

__all__ = [
    "KeyGraph", "KeyGraphError", "SecureGroup", "figure1_example",
    "U_NODE", "K_NODE",
    "KeyTree", "KeyTreeError", "TreeNode", "PathChange",
    "JoinResult", "LeaveResult",
    "FlatKeyTree", "FlatNode", "KeyArena",
    "TreeBackend", "BACKENDS", "DEFAULT_BACKEND",
    "make_tree", "build_tree", "resolve_backend",
    "StarGroup", "StarError", "StarRekey",
    "CompleteGroup", "CompleteGroupError",
    "CoverError", "exact_cover", "greedy_cover", "is_cover", "tree_cover",
    "complement_cover", "tree_subset_cover", "greedy_tree_cover",
    "partition_cover",
    "TreeShape", "measure", "leaf_depth_histogram", "assert_balanced",
    "MaterializedKeyGraph", "MaterializedGraphError", "GraphRekeyOutcome",
]

"""The key-covering problem (paper §2.1).

Given a secure group ``(U, K, R)`` and a target subset ``S`` of ``U``,
find a minimum-size subset ``K'`` of ``K`` with ``userset(K') == S``.
The server solves instances of this to rekey after a leave: the new key
must reach exactly ``userset(k) - {u}``.  The subcast subsystem
(:mod:`repro.subcast`) solves it for arbitrary ``S``: one payload
sealed to exactly a pay-per-view tier or a regional subset instead of
``|S|`` unicasts.

The general problem is NP-hard (reduction from exact cover; the paper's
technical report TR 97-23).  This module provides:

* :func:`exact_cover` — optimal, by breadth-first search over subset
  sizes; exponential, guarded for small key sets;
* :func:`greedy_cover` — polynomial greedy heuristic in the style of
  greedy set cover (the classic ``H_k`` approximation), restricted to
  *admissible* keys (keys whose userset is contained in S, since a
  cover may not over-shoot S);
* :func:`partition_cover` — first-fit-decreasing approximation in the
  style of Chan–Rajaraman–Sun–Zhu (arXiv 0904.4061): one pass over
  the admissible keys in decreasing coverage order.  On *laminar*
  instances — exactly the structured subset families 0904.4061's
  hierarchy decompositions produce, and what a key tree's usersets
  are — the pass keeps the maximal admissible subtrees and the result
  is a minimum cover;
* :func:`tree_cover` — the closed-form optimal cover for a key tree
  when S is "everyone except one user", which the leave protocols use;
* :func:`complement_cover` — its generalization to "everyone except
  X" by subtree subtraction (evicted/ineligible exclusion lists);
* :func:`tree_subset_cover` — the optimal cover of an *arbitrary*
  subset on a key tree in ``O(|S| · log n)``, with a dedicated fast
  path over :class:`~repro.keygraph.flat.FlatKeyTree`'s arrays that
  never materializes a userset (the million-member subcast engine);
* :func:`greedy_tree_cover` — :func:`greedy_cover` semantics directly
  on a tree backend (the subcast ablation fallback).
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, FrozenSet, Iterable, List, Optional, Set

from .flat import FlatKeyTree, FlatNode
from .graph import SecureGroup
from .tree import KeyTree, TreeNode


class CoverError(ValueError):
    """Raised when no cover exists or guards are exceeded."""


def _admissible_keys(group: SecureGroup, target: FrozenSet) -> List:
    """Keys whose userset is a nonempty subset of the target."""
    keys = []
    for key in group.keys:
        userset = group.userset(key)
        if userset and userset <= target:
            keys.append(key)
    return keys


def is_cover(group: SecureGroup, keys: Iterable, target: Iterable) -> bool:
    """True iff ``userset(keys) == target`` exactly."""
    return group.userset_of_keys(keys) == frozenset(target)


def exact_cover(group: SecureGroup, target: Iterable,
                max_keys: int = 20) -> List:
    """Minimum-size key cover by exhaustive search over subset sizes.

    Exponential in the number of admissible keys; raises
    :class:`CoverError` when that count exceeds ``max_keys`` or no cover
    exists.
    """
    target = frozenset(target)
    if not target <= group.users:
        raise CoverError("target contains unknown users")
    if not target:
        return []
    admissible = _admissible_keys(group, target)
    if len(admissible) > max_keys:
        raise CoverError(
            f"{len(admissible)} admissible keys exceeds the exact-search "
            f"guard of {max_keys} and the search is exponential in that "
            f"count; use greedy_cover (H_k-approximate) or "
            f"partition_cover (optimal on laminar/tree instances), or "
            f"tree_subset_cover when the group is a key tree")
    if group.userset_of_keys(admissible) != target:
        raise CoverError("no exact cover exists for this target")
    for size in range(1, len(admissible) + 1):
        for combo in combinations(admissible, size):
            if group.userset_of_keys(combo) == target:
                return list(combo)
    raise CoverError("no exact cover exists for this target")  # pragma: no cover


def greedy_cover(group: SecureGroup, target: Iterable) -> List:
    """Greedy key cover: repeatedly take the admissible key covering the
    most uncovered users.  Correct (covers exactly the target) but not
    always minimal — the classic ln(n) approximation behaviour.

    Usersets are cached once up front and the per-key residual gains
    are maintained incrementally (subtracting each selection's gain
    from the others), so a full run costs ``O(|keys| · |S|)`` rather
    than recomputing every userset on every selection round.
    """
    target = frozenset(target)
    if not target <= group.users:
        raise CoverError("target contains unknown users")
    if not target:
        return []
    admissible = _admissible_keys(group, target)
    if group.userset_of_keys(admissible) != target:
        raise CoverError("no exact cover exists for this target")
    uncovered: Set = set(target)
    chosen: List = []
    # Sort for determinism before greedy selection.
    pool = sorted(admissible, key=repr)
    # Admissible usersets are subsets of the target, so each residual
    # starts as the full userset and *is* ``userset & uncovered`` at
    # every round as long as selections' gains are subtracted.
    residuals: Dict = {key: set(group.userset(key)) for key in pool}
    while uncovered:
        best = max(pool, key=lambda key: len(residuals[key]))
        gain = residuals.pop(best)
        if not gain:
            raise CoverError("greedy cover stalled")  # pragma: no cover
        chosen.append(best)
        uncovered -= gain
        pool.remove(best)
        for key in pool:
            residual = residuals[key]
            if residual:
                residual -= gain
    return chosen


def partition_cover(group: SecureGroup, target: Iterable) -> List:
    """First-fit-decreasing cover (0904.4061-style approximation).

    One pass over the admissible keys in decreasing userset size,
    taking every key that still contributes an uncovered user —
    ``O(K log K + Σ|userset|)`` total, no per-round rescans.  Every
    selected key contributes at least one new user, so the result is
    always a valid exact cover (at most ``|S|`` keys).

    On laminar userset families — key trees, and the hierarchical
    decompositions the Chan–Rajaraman–Sun–Zhu algorithms build — an
    admissible key's userset is nested inside any larger admissible
    key it meets, so the decreasing pass keeps exactly the *maximal*
    admissible sets and the cover is minimum, at linear cost where the
    exact search is exponential.
    """
    target = frozenset(target)
    if not target <= group.users:
        raise CoverError("target contains unknown users")
    if not target:
        return []
    admissible = _admissible_keys(group, target)
    if group.userset_of_keys(admissible) != target:
        raise CoverError("no exact cover exists for this target")
    ordered = sorted(admissible,
                     key=lambda key: (-len(group.userset(key)), repr(key)))
    uncovered: Set = set(target)
    chosen: List = []
    for key in ordered:
        if not uncovered:
            break
        userset = group.userset(key)
        if not uncovered.isdisjoint(userset):
            chosen.append(key)
            uncovered -= userset
    if uncovered:  # pragma: no cover - admissibility union checked above
        raise CoverError("partition cover stalled")
    return chosen


def group_from_set_cover(universe: Iterable,
                         subsets: List[Iterable]) -> SecureGroup:
    """Encode a set-cover instance as a secure group (NP-hardness).

    The paper states "the key-covering problem in general is NP-hard"
    (with the reduction in its technical report TR 97-23).  This helper
    makes the reduction concrete: elements become users, each candidate
    set becomes a key held by exactly its elements, and a minimum key
    cover of the whole universe *is* a minimum set cover — so a
    polynomial optimal key-cover algorithm would solve set cover.

    Each user also gets an individual key (as the model requires), which
    never helps a cover of more than one element, preserving optima for
    instances whose optimal cover is below universe size.
    """
    universe = list(universe)
    if not universe:
        raise CoverError("empty universe")
    users = [f"e{element}" for element in universe]
    relation = []
    keys = []
    for index, subset in enumerate(subsets):
        key = f"S{index}"
        keys.append(key)
        for element in subset:
            if element not in universe:
                raise CoverError(f"subset {index} leaves the universe")
            relation.append((f"e{element}", key))
    for user in users:
        keys.append(f"ind-{user}")
        relation.append((user, f"ind-{user}"))
    return SecureGroup(users, keys, relation)


# -- tree-structural covers ----------------------------------------------------
#
# On a key tree the usersets form a laminar family, so minimum covers
# have closed forms: a set of subtree roots.  The three functions below
# return *node handles* (TreeNode or FlatNode), deterministically
# ordered by node id, so callers can seal against (node_id, version,
# key) without a SecureGroup materialization.


def tree_cover(tree: KeyTree, excluded_user: str) -> List[TreeNode]:
    """Optimal cover of ``all users - {excluded}`` on a key tree.

    This is the structure the leave protocols exploit: for every node on
    the excluded user's path, take the keys of its *other* children.  The
    result has at most ``(d-1) * (h-1)`` nodes and is minimal for a tree.
    """
    leaf = tree.leaf_of(excluded_user)
    cover: List[TreeNode] = []
    node = leaf
    while node.parent is not None:
        for sibling in node.parent.children:
            if sibling != node:
                cover.append(sibling)
        node = node.parent
    return cover


def complement_cover(tree, excluded: Iterable) -> List:
    """Optimal cover of ``all users - X`` by subtree subtraction.

    The natural shape for "everyone except these evicted/ineligible
    members": mark every node on an excluded user's path *tainted*,
    then take each untainted child of a tainted node — each is a
    maximal subtree containing no excluded user.  ``O(|X| · d · h)``,
    independent of group size; works on either tree backend.  Excluding
    nobody covers with the group key alone; excluding everybody yields
    the empty cover.
    """
    excluded = set(excluded)
    missing = [user for user in excluded if not tree.has_user(user)]
    if missing:
        raise CoverError(f"excluded users not in the tree: "
                         f"{sorted(missing)[:4]}")
    root = tree.group_key_node()
    if not excluded:
        return [root]
    tainted: Set = set()
    for user in excluded:
        node = tree.leaf_of(user)
        while node is not None and node not in tainted:
            tainted.add(node)
            node = node.parent
    cover = [child
             for node in tainted
             for child in node.children
             if child not in tainted]
    cover.sort(key=lambda node: node.node_id)
    return cover


def tree_subset_cover(tree, users: Iterable) -> List:
    """Optimal cover of an arbitrary subset on a key tree, O(|S|·log n).

    Walks each selected leaf's root path accumulating per-node counts
    of selected descendants; a node is *fully selected* when its count
    equals its subtree size, and the cover is the fully-selected nodes
    whose parents are not (the maximal fully-selected subtrees) —
    minimum for a tree, since any admissible key is such a subtree.

    On :class:`~repro.keygraph.flat.FlatKeyTree` the walk runs directly
    over the parent/size arrays — integer slots in, integer slots out,
    no node handles, no userset materialization — which is what keeps
    a 10k-member cover of a million-member group in milliseconds.
    Both backends return identical covers (same node ids, same order)
    on lockstep trees.
    """
    subset = set(users)
    if not subset:
        raise CoverError("empty subcast target")
    if isinstance(tree, FlatKeyTree):
        return _flat_subset_cover(tree, subset)
    counts: Dict = {}
    for user in subset:
        try:
            node = tree.leaf_of(user)
        except Exception:
            raise CoverError(f"target user {user!r} is not in the tree") \
                from None
        while node is not None:
            counts[node] = counts.get(node, 0) + 1
            node = node.parent
    cover = []
    for node, count in counts.items():
        if count != node.size:
            continue
        parent = node.parent
        if parent is None or counts[parent] != parent.size:
            cover.append(node)
    cover.sort(key=lambda node: node.node_id)
    return cover


def _flat_subset_cover(tree: FlatKeyTree, subset: Set) -> List:
    """The array fast path of :func:`tree_subset_cover`."""
    leaves = tree._leaves
    parent = tree._parent
    size = tree._size
    counts: Dict[int, int] = {}
    for user in subset:
        slot = leaves.get(user)
        if slot is None:
            raise CoverError(f"target user {user!r} is not in the tree")
        while slot >= 0:
            counts[slot] = counts.get(slot, 0) + 1
            slot = parent[slot]
    node_id = tree._node_id
    cover_slots = []
    for slot, count in counts.items():
        if count != size[slot]:
            continue
        up = parent[slot]
        if up < 0 or counts[up] != size[up]:
            cover_slots.append(slot)
    cover_slots.sort(key=lambda slot: node_id[slot])
    return [FlatNode(tree, slot) for slot in cover_slots]


def greedy_tree_cover(tree, users: Iterable) -> List:
    """:func:`greedy_cover` semantics directly on a tree backend.

    Materializes the userset of every admissible node and runs the
    classic greedy selection with incremental residuals — the subcast
    ablation fallback.  On a tree the admissible nodes are the fully-
    selected subtrees and greedy keeps exactly the maximal ones, so
    the chosen *set* equals :func:`tree_subset_cover`'s (the result is
    node-id sorted to make that identity literal); the difference the
    ablation attributes is the ``Σ|userset|`` materialization cost.
    """
    subset = set(users)
    if not subset:
        raise CoverError("empty subcast target")
    counts: Dict = {}
    for user in subset:
        try:
            node = tree.leaf_of(user)
        except Exception:
            raise CoverError(f"target user {user!r} is not in the tree") \
                from None
        while node is not None:
            counts[node] = counts.get(node, 0) + 1
            node = node.parent
    admissible = [node for node, count in counts.items()
                  if count == node.size]
    pool = sorted(admissible, key=lambda node: node.node_id)
    residuals = {node: set(tree.userset(node)) for node in pool}
    uncovered = set(subset)
    chosen: List = []
    while uncovered:
        best = max(pool, key=lambda node: len(residuals[node]))
        gain = residuals.pop(best)
        if not gain:  # pragma: no cover - admissible nodes span the subset
            raise CoverError("greedy tree cover stalled")
        chosen.append(best)
        uncovered -= gain
        pool.remove(best)
        for node in pool:
            residual = residuals[node]
            if residual:
                residual -= gain
    chosen.sort(key=lambda node: node.node_id)
    return chosen

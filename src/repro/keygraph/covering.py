"""The key-covering problem (paper §2.1).

Given a secure group ``(U, K, R)`` and a target subset ``S`` of ``U``,
find a minimum-size subset ``K'`` of ``K`` with ``userset(K') == S``.
The server solves instances of this to rekey after a leave: the new key
must reach exactly ``userset(k) - {u}``.

The general problem is NP-hard (reduction from exact cover; the paper's
technical report TR 97-23).  This module provides:

* :func:`exact_cover` — optimal, by breadth-first search over subset
  sizes; exponential, guarded for small key sets;
* :func:`greedy_cover` — polynomial greedy heuristic in the style of
  greedy set cover, restricted to *admissible* keys (keys whose userset
  is contained in S, since a cover may not over-shoot S);
* :func:`tree_cover` — the closed-form optimal cover for a key tree when
  S is "everyone except one user", which is what the leave protocols use.
"""

from __future__ import annotations

from itertools import combinations
from typing import FrozenSet, Iterable, List, Optional, Set

from .graph import SecureGroup
from .tree import KeyTree, TreeNode


class CoverError(ValueError):
    """Raised when no cover exists or guards are exceeded."""


def _admissible_keys(group: SecureGroup, target: FrozenSet) -> List:
    """Keys whose userset is a nonempty subset of the target."""
    keys = []
    for key in group.keys:
        userset = group.userset(key)
        if userset and userset <= target:
            keys.append(key)
    return keys


def is_cover(group: SecureGroup, keys: Iterable, target: Iterable) -> bool:
    """True iff ``userset(keys) == target`` exactly."""
    return group.userset_of_keys(keys) == frozenset(target)


def exact_cover(group: SecureGroup, target: Iterable,
                max_keys: int = 20) -> List:
    """Minimum-size key cover by exhaustive search over subset sizes.

    Exponential in the number of admissible keys; raises
    :class:`CoverError` when that count exceeds ``max_keys`` or no cover
    exists.
    """
    target = frozenset(target)
    if not target <= group.users:
        raise CoverError("target contains unknown users")
    if not target:
        return []
    admissible = _admissible_keys(group, target)
    if len(admissible) > max_keys:
        raise CoverError(
            f"{len(admissible)} admissible keys exceeds exact-search guard "
            f"of {max_keys}; use greedy_cover")
    if group.userset_of_keys(admissible) != target:
        raise CoverError("no exact cover exists for this target")
    for size in range(1, len(admissible) + 1):
        for combo in combinations(admissible, size):
            if group.userset_of_keys(combo) == target:
                return list(combo)
    raise CoverError("no exact cover exists for this target")  # pragma: no cover


def greedy_cover(group: SecureGroup, target: Iterable) -> List:
    """Greedy key cover: repeatedly take the admissible key covering the
    most uncovered users.  Correct (covers exactly the target) but not
    always minimal — the classic ln(n) approximation behaviour.
    """
    target = frozenset(target)
    if not target <= group.users:
        raise CoverError("target contains unknown users")
    if not target:
        return []
    admissible = _admissible_keys(group, target)
    if group.userset_of_keys(admissible) != target:
        raise CoverError("no exact cover exists for this target")
    uncovered: Set = set(target)
    chosen: List = []
    # Sort for determinism before greedy selection.
    pool = sorted(admissible, key=repr)
    while uncovered:
        best = max(pool, key=lambda key: len(group.userset(key) & uncovered))
        gain = group.userset(best) & uncovered
        if not gain:
            raise CoverError("greedy cover stalled")  # pragma: no cover
        chosen.append(best)
        uncovered -= gain
        pool.remove(best)
    return chosen


def group_from_set_cover(universe: Iterable,
                         subsets: List[Iterable]) -> SecureGroup:
    """Encode a set-cover instance as a secure group (NP-hardness).

    The paper states "the key-covering problem in general is NP-hard"
    (with the reduction in its technical report TR 97-23).  This helper
    makes the reduction concrete: elements become users, each candidate
    set becomes a key held by exactly its elements, and a minimum key
    cover of the whole universe *is* a minimum set cover — so a
    polynomial optimal key-cover algorithm would solve set cover.

    Each user also gets an individual key (as the model requires), which
    never helps a cover of more than one element, preserving optima for
    instances whose optimal cover is below universe size.
    """
    universe = list(universe)
    if not universe:
        raise CoverError("empty universe")
    users = [f"e{element}" for element in universe]
    relation = []
    keys = []
    for index, subset in enumerate(subsets):
        key = f"S{index}"
        keys.append(key)
        for element in subset:
            if element not in universe:
                raise CoverError(f"subset {index} leaves the universe")
            relation.append((f"e{element}", key))
    for user in users:
        keys.append(f"ind-{user}")
        relation.append((user, f"ind-{user}"))
    return SecureGroup(users, keys, relation)


def tree_cover(tree: KeyTree, excluded_user: str) -> List[TreeNode]:
    """Optimal cover of ``all users - {excluded}`` on a key tree.

    This is the structure the leave protocols exploit: for every node on
    the excluded user's path, take the keys of its *other* children.  The
    result has at most ``(d-1) * (h-1)`` nodes and is minimal for a tree.
    """
    leaf = tree.leaf_of(excluded_user)
    cover: List[TreeNode] = []
    node = leaf
    while node.parent is not None:
        for sibling in node.parent.children:
            if sibling != node:
                cover.append(sibling)
        node = node.parent
    return cover

"""Complete key graphs (paper §2.2): one key per nonempty user subset.

With ``n`` users there are ``2**n - 1`` keys and each user holds
``2**(n-1)`` of them — Table 1's point that completeness is practical
only for very small groups, and Table 2's point that it trades all the
cost onto joins: after a leave *no* rekeying is needed, because the
remaining users already share a key unknown to the departed user.

This class exists to reproduce the Table 1/2/3 rows and for the
key-covering test corpus; it enforces a small-n guard.
"""

from __future__ import annotations

from itertools import combinations
from typing import Callable, Dict, FrozenSet, List, Tuple

from .graph import KeyGraph

MAX_USERS = 16


class CompleteGroupError(ValueError):
    """Raised on invalid complete-group construction or edits."""


class CompleteGroup:
    """A secure group with a key for every nonempty subset of users."""

    def __init__(self, users: List[str], keygen: Callable[[], bytes]):
        if not users:
            raise CompleteGroupError("need at least one user")
        if len(set(users)) != len(users):
            raise CompleteGroupError("duplicate user ids")
        if len(users) > MAX_USERS:
            raise CompleteGroupError(
                f"complete key graphs are exponential; {len(users)} users "
                f"exceeds the guard of {MAX_USERS}")
        self._keygen = keygen
        self._users = list(users)
        self._keys: Dict[FrozenSet[str], bytes] = {}
        self._rebuild_missing()

    def _rebuild_missing(self) -> None:
        current = set(self._users)
        # Drop keys referencing departed users; add keys for new subsets.
        self._keys = {subset: key for subset, key in self._keys.items()
                      if subset <= current}
        for size in range(1, len(self._users) + 1):
            for combo in combinations(sorted(current), size):
                subset = frozenset(combo)
                if subset not in self._keys:
                    self._keys[subset] = self._keygen()

    def __len__(self) -> int:
        return len(self._users)

    @property
    def n_keys(self) -> int:
        """Total keys: 2**n - 1 (Table 1)."""
        return len(self._keys)

    def users(self) -> List[str]:
        """Current member ids."""
        return list(self._users)

    def key_for(self, subset) -> bytes:
        """The key shared by exactly ``subset``."""
        subset = frozenset(subset)
        try:
            return self._keys[subset]
        except KeyError:
            raise CompleteGroupError(f"no key for subset {sorted(subset)}") from None

    def group_key(self) -> bytes:
        """The key of the full-membership subset."""
        return self._keys[frozenset(self._users)]

    def keyset(self, user_id: str) -> List[FrozenSet[str]]:
        """Subsets whose key ``user_id`` holds: 2**(n-1) of them (Table 1)."""
        if user_id not in self._users:
            raise CompleteGroupError(f"unknown user {user_id!r}")
        return [subset for subset in self._keys if user_id in subset]

    def userset(self, subset) -> FrozenSet[str]:
        """The holders of a subset key: exactly that subset."""
        subset = frozenset(subset)
        if subset not in self._keys:
            raise CompleteGroupError(f"no key for subset {sorted(subset)}")
        return subset

    def join(self, user_id: str) -> Tuple[int, int]:
        """Add a user; returns (#new keys created, #keys joiner must receive).

        Every subset containing the new user needs a fresh key: 2**n new
        keys where n is the old size — Table 2's exponential join cost.
        """
        if user_id in self._users:
            raise CompleteGroupError(f"user {user_id!r} is already a member")
        if len(self._users) + 1 > MAX_USERS:
            raise CompleteGroupError("join would exceed the small-n guard")
        before = len(self._keys)
        self._users.append(user_id)
        self._rebuild_missing()
        created = len(self._keys) - before
        return created, len(self.keyset(user_id))

    def leave(self, user_id: str) -> int:
        """Remove a user; returns the rekeying cost — always 0.

        The remaining members already share the key for their exact
        subset, which the departed user never held (Table 2: leave cost 0).
        """
        if user_id not in self._users:
            raise CompleteGroupError(f"unknown user {user_id!r}")
        self._users.remove(user_id)
        self._rebuild_missing()
        return 0

    def to_key_graph(self) -> KeyGraph:
        """Export as a formal :class:`KeyGraph` for validation."""
        graph = KeyGraph()
        for user_id in self._users:
            graph.add_u_node(user_id)
        for subset in self._keys:
            name = "k-" + "+".join(sorted(subset))
            graph.add_k_node(name)
            for user_id in subset:
                graph.add_edge(user_id, name)
        return graph

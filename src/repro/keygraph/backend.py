"""Tree backend selection: the ``TreeBackend`` protocol and registry.

The tree-consuming layers (``core.server``, ``batch.rekeying``,
``cluster.coordinator``, ``core.persistence``) construct their key tree
through :func:`make_tree` / :func:`build_tree` with a backend *name*
from config, instead of importing a concrete node class.  Two backends
ship:

``object``
    :class:`~repro.keygraph.tree.KeyTree` — one Python object per
    k-node.  Simple, debuggable, the reference implementation.

``flat``
    :class:`~repro.keygraph.flat.FlatKeyTree` — contiguous int arrays
    for topology, a flat byte arena for key material, O(log n)
    joining-point descent.  The million-member engine.

Both implement the same surface (the :class:`TreeBackend` protocol
below) and are pinned byte-identical by the lockstep equivalence suite:
same node ids, same keygen draw order, same joining points, same wire
bytes.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Tuple

try:  # Python 3.8+: typing.Protocol
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover - very old interpreters
    Protocol = object  # type: ignore[assignment]

    def runtime_checkable(cls):  # type: ignore[misc]
        return cls

from .flat import FlatKeyTree
from .tree import JoinResult, KeyTree, KeyTreeError, LeaveResult


@runtime_checkable
class TreeBackend(Protocol):
    """The surface every key-tree storage engine implements.

    Node values are opaque *handles* exposing ``node_id``, ``key``,
    ``version``, ``user_id``, ``size``, ``is_leaf``, ``parent``,
    ``children``, ``replace_key`` and ``path_to_root``; handles from the
    same tree compare equal by node identity (``==``, never ``is``).
    """

    degree: int

    # queries
    def __len__(self) -> int: ...
    def users(self) -> List[str]: ...
    def has_user(self, user_id: str) -> bool: ...
    def leaf_of(self, user_id: str): ...
    def group_key_node(self): ...
    def nodes(self) -> Iterable: ...
    def nodes_with_depth(self) -> Iterable[Tuple[object, int]]: ...
    def height(self) -> int: ...
    def userset(self, node) -> List[str]: ...
    def subtree_size(self, node) -> int: ...
    def validate(self) -> None: ...

    # whole-group edits
    def join(self, user_id: str, individual_key: bytes) -> JoinResult: ...
    def leave(self, user_id: str) -> LeaveResult: ...

    # surgery primitives (batch flush, cluster namespacing)
    def new_leaf(self, user_id: str, key: bytes): ...
    def start_root(self, leaf): ...
    def attach_leaf(self, leaf, spot) -> None: ...
    def split_node(self, victim): ...
    def detach_user(self, user_id: str): ...
    def splice_out(self, node): ...
    def drop_childless(self, node) -> None: ...
    def clear_root(self) -> None: ...
    def has_room(self, node) -> bool: ...
    def is_attached(self, node) -> bool: ...
    def find_joining_point(self) -> Tuple[object, Optional[object]]: ...
    def shift_node_ids(self, base: int) -> None: ...


BACKENDS: Dict[str, type] = {
    "object": KeyTree,
    "flat": FlatKeyTree,
}

DEFAULT_BACKEND = "object"


def resolve_backend(name: Optional[str]) -> type:
    """The tree class registered under ``name`` (None = default)."""
    key = DEFAULT_BACKEND if name is None else name
    try:
        return BACKENDS[key]
    except KeyError:
        raise KeyTreeError(
            f"unknown tree backend {name!r}; "
            f"expected one of {sorted(BACKENDS)}") from None


def make_tree(backend: Optional[str], degree: int,
              keygen: Callable[[], bytes]):
    """Construct an empty tree on the named backend."""
    return resolve_backend(backend)(degree, keygen)


def build_tree(backend: Optional[str],
               members: Iterable[Tuple[str, bytes]], degree: int,
               keygen: Callable[[], bytes]):
    """Bulk-build a tree on the named backend (no rekey traffic)."""
    return resolve_backend(backend).build(members, degree, keygen)

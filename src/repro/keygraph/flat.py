"""Array-backed key tree: the million-member storage engine.

``KeyTree`` stores one Python object per k-node — at n = 1M that is
several million heap objects, each with pointer-chased parent/child
links, which caps group size on memory and traversal cost long before
the paper's O(log n) rekeying does.  :class:`FlatKeyTree` implements the
same tree-backend surface over contiguous storage instead:

* topology in flat integer arrays (``parent``, ``first_child``,
  ``next_sibling``, ``n_children``) indexed by slot;
* identity and freshness in ``node_id`` / ``version`` int arrays;
* key material in a :class:`KeyArena` — one flat byte buffer with a
  fixed per-slot stride — so a whole rekey plan's key bytes are a
  gather away from the vectorized batch-CBC path;
* subtree sizes and two *relative-depth aggregates* per slot
  (``open_d``: depth of the shallowest non-full interior in the slot's
  subtree; ``leaf_d``: depth of the shallowest leaf) that turn the
  paper's breadth-first joining-point search from O(n) into an
  O(log n) root-to-target descent.

Byte-identity with the object backend is the contract: both backends
draw keys from the shared keygen in exactly the same order, assign the
same node ids, and pick the same joining points, so rekey messages are
bit-for-bit identical (pinned by the lockstep equivalence suite and the
golden digests).

Slots freed by leaves/splices are recycled through a free list while
``node_id`` allocation stays strictly increasing, mirroring the object
backend's id sequence.  Handles (:class:`FlatNode`) are cheap ephemeral
views; a handle to a detached node is valid until the next mutation.
Detached nodes that leave the tree for good (a departed member's leaf,
a spliced interior) are returned as plain :class:`TreeNode` snapshots so
results stay readable after the slot is recycled.
"""

from __future__ import annotations

from array import array
from collections import deque
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from .graph import KeyGraph
from .tree import JoinResult, KeyTreeError, LeaveResult, PathChange, TreeNode

# Relative-depth sentinel: "no such node in this subtree".
_INF = 1 << 30


class KeyArena:
    """Flat byte storage for fixed-stride key material, indexed by slot.

    The stride locks to the length of the first key stored.  Keys of a
    different length (possible with exotic test keygens) overflow to a
    side dict rather than corrupting the arena.
    """

    __slots__ = ("_buf", "stride", "_odd")

    def __init__(self) -> None:
        self._buf = bytearray()
        self.stride = 0
        self._odd: Dict[int, bytes] = {}

    def store(self, slot: int, key: bytes) -> None:
        """Set the key bytes for ``slot``."""
        if self.stride == 0:
            self.stride = len(key)
        if len(key) != self.stride or self.stride == 0:
            self._odd[slot] = bytes(key)
            return
        self._odd.pop(slot, None)
        end = (slot + 1) * self.stride
        if len(self._buf) < end:
            self._buf.extend(bytes(end - len(self._buf)))
        self._buf[slot * self.stride:end] = key

    def get(self, slot: int) -> bytes:
        """The key bytes for ``slot``."""
        odd = self._odd.get(slot)
        if odd is not None:
            return odd
        offset = slot * self.stride
        return bytes(self._buf[offset:offset + self.stride])

    def view(self, slot: int) -> memoryview:
        """Zero-copy view of ``slot``'s key bytes (regular keys only)."""
        odd = self._odd.get(slot)
        if odd is not None:
            return memoryview(odd)
        offset = slot * self.stride
        return memoryview(self._buf)[offset:offset + self.stride]

    def discard(self, slot: int) -> None:
        """Drop any overflow entry for a recycled slot."""
        self._odd.pop(slot, None)

    @property
    def nbytes(self) -> int:
        """Bytes held by the arena buffer."""
        return len(self._buf)


class FlatNode:
    """An ephemeral handle onto one slot of a :class:`FlatKeyTree`.

    Exposes the same read surface as :class:`TreeNode` (``node_id``,
    ``key``, ``version``, ``user_id``, ``size``, ``is_leaf``,
    ``parent``, ``children``, ``replace_key``, ``path_to_root``) so the
    strategies, persistence, analysis and observability layers work
    unchanged over either backend.
    """

    __slots__ = ("_tree", "index")

    def __init__(self, tree: "FlatKeyTree", index: int):
        self._tree = tree
        self.index = index

    @property
    def node_id(self) -> int:
        return self._tree._node_id[self.index]

    @property
    def version(self) -> int:
        return self._tree._version[self.index]

    @property
    def key(self) -> bytes:
        return self._tree.arena.get(self.index)

    @property
    def user_id(self) -> Optional[str]:
        return self._tree._user_of[self.index]

    @property
    def size(self) -> int:
        return self._tree._size[self.index]

    @property
    def is_leaf(self) -> bool:
        return self._tree._user_of[self.index] is not None

    @property
    def parent(self) -> Optional["FlatNode"]:
        p = self._tree._parent[self.index]
        return FlatNode(self._tree, p) if p >= 0 else None

    @property
    def children(self) -> List["FlatNode"]:
        tree = self._tree
        out = []
        c = tree._first_child[self.index]
        while c >= 0:
            out.append(FlatNode(tree, c))
            c = tree._next_sibling[c]
        return out

    def replace_key(self, new_key: bytes) -> None:
        """Install fresh key material and bump the version."""
        self._tree.arena.store(self.index, new_key)
        self._tree._version[self.index] += 1

    def path_to_root(self) -> List["FlatNode"]:
        """Nodes from ``self`` (inclusive) up to and including the root."""
        tree = self._tree
        path = []
        i = self.index
        while i >= 0:
            path.append(FlatNode(tree, i))
            i = tree._parent[i]
        return path

    def __eq__(self, other: object) -> bool:
        if isinstance(other, FlatNode):
            return self._tree is other._tree and self.index == other.index
        if isinstance(other, TreeNode):
            return self.node_id == other.node_id
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.index)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        tag = f" user={self.user_id}" if self.user_id else ""
        return f"<FlatNode #{self.index} id={self.node_id}{tag}>"


class FlatKeyTree:
    """Single-root key tree over flat arrays; same surface as KeyTree."""

    backend_name = "flat"

    def __init__(self, degree: int, keygen: Callable[[], bytes]):
        if degree < 2:
            raise KeyTreeError("tree degree must be >= 2")
        self.degree = degree
        self._keygen = keygen
        self._next_id = 0
        self._root = -1
        # Topology (slot-indexed, -1 = none).
        self._parent = array("i")
        self._first_child = array("i")
        self._next_sibling = array("i")
        self._n_children = array("i")
        # Identity / freshness.
        self._node_id = array("q")
        self._version = array("q")
        # Subtree user counts and the two relative-depth aggregates.
        self._size = array("i")
        self._open_d = array("i")
        self._leaf_d = array("i")
        self._user_of: List[Optional[str]] = []
        self.arena = KeyArena()
        self._leaves: Dict[str, int] = {}
        self._free: List[int] = []

    # -- slot management ---------------------------------------------------

    def _alloc_raw(self, node_id: int, key: bytes,
                   user_id: Optional[str]) -> int:
        is_leaf = user_id is not None
        if self._free:
            i = self._free.pop()
            self._parent[i] = -1
            self._first_child[i] = -1
            self._next_sibling[i] = -1
            self._n_children[i] = 0
            self._node_id[i] = node_id
            self._version[i] = 0
            self._size[i] = 1 if is_leaf else 0
            self._open_d[i] = _INF if is_leaf else 0
            self._leaf_d[i] = 0 if is_leaf else _INF
            self._user_of[i] = user_id
        else:
            i = len(self._parent)
            self._parent.append(-1)
            self._first_child.append(-1)
            self._next_sibling.append(-1)
            self._n_children.append(0)
            self._node_id.append(node_id)
            self._version.append(0)
            self._size.append(1 if is_leaf else 0)
            self._open_d.append(_INF if is_leaf else 0)
            self._leaf_d.append(0 if is_leaf else _INF)
            self._user_of.append(user_id)
        self.arena.store(i, key)
        return i

    def _alloc(self, key: bytes, user_id: Optional[str]) -> int:
        node_id = self._next_id
        self._next_id += 1
        return self._alloc_raw(node_id, key, user_id)

    def _free_slot(self, i: int) -> None:
        self._user_of[i] = None
        self._parent[i] = -1
        self._next_sibling[i] = -1
        self.arena.discard(i)
        self._free.append(i)

    # -- linkage helpers ---------------------------------------------------

    def _append_child(self, p: int, c: int) -> None:
        self._next_sibling[c] = -1
        self._parent[c] = p
        last = self._first_child[p]
        if last < 0:
            self._first_child[p] = c
        else:
            nxt = self._next_sibling[last]
            while nxt >= 0:
                last = nxt
                nxt = self._next_sibling[last]
            self._next_sibling[last] = c
        self._n_children[p] += 1

    def _remove_child(self, p: int, c: int) -> None:
        prev = -1
        cur = self._first_child[p]
        while cur >= 0 and cur != c:
            prev = cur
            cur = self._next_sibling[cur]
        if cur < 0:  # pragma: no cover - structural invariant
            raise KeyTreeError(f"slot {c} is not a child of slot {p}")
        if prev < 0:
            self._first_child[p] = self._next_sibling[c]
        else:
            self._next_sibling[prev] = self._next_sibling[c]
        self._parent[c] = -1
        self._next_sibling[c] = -1
        self._n_children[p] -= 1

    def _replace_child(self, p: int, old: int, new: int) -> None:
        prev = -1
        cur = self._first_child[p]
        while cur >= 0 and cur != old:
            prev = cur
            cur = self._next_sibling[cur]
        if cur < 0:  # pragma: no cover - structural invariant
            raise KeyTreeError(f"slot {old} is not a child of slot {p}")
        self._next_sibling[new] = self._next_sibling[old]
        self._parent[new] = p
        if prev < 0:
            self._first_child[p] = new
        else:
            self._next_sibling[prev] = new
        self._parent[old] = -1
        self._next_sibling[old] = -1

    # -- aggregate maintenance ---------------------------------------------

    def _recompute_agg(self, i: int) -> bool:
        """Refresh ``open_d``/``leaf_d`` at slot ``i``; True if changed."""
        if self._user_of[i] is not None:
            new_open, new_leaf = _INF, 0
        else:
            min_open = _INF
            min_leaf = _INF
            c = self._first_child[i]
            while c >= 0:
                if self._open_d[c] < min_open:
                    min_open = self._open_d[c]
                if self._leaf_d[c] < min_leaf:
                    min_leaf = self._leaf_d[c]
                c = self._next_sibling[c]
            if self._n_children[i] < self.degree:
                new_open = 0
            else:
                new_open = min_open + 1 if min_open < _INF else _INF
            new_leaf = min_leaf + 1 if min_leaf < _INF else _INF
        if new_open == self._open_d[i] and new_leaf == self._leaf_d[i]:
            return False
        self._open_d[i] = new_open
        self._leaf_d[i] = new_leaf
        return True

    def _update_up(self, i: int) -> None:
        """Recompute aggregates from slot ``i`` up while they change."""
        while i >= 0 and self._recompute_agg(i):
            i = self._parent[i]

    def _bump_sizes(self, i: int, delta: int) -> None:
        while i >= 0:
            self._size[i] += delta
            i = self._parent[i]

    # -- construction ------------------------------------------------------

    @classmethod
    def build(cls, members: Iterable[Tuple[str, bytes]], degree: int,
              keygen: Callable[[], bytes]) -> "FlatKeyTree":
        """Bulk-build a full, balanced tree over ``(user, key)`` pairs.

        Same top-down division, node-id assignment and keygen draw order
        as :meth:`KeyTree.build` — the built trees are byte-identical.
        """
        tree = cls(degree, keygen)
        members = list(members)
        leaf_slots = []
        for user_id, key in members:
            i = tree._alloc(key, user_id)
            tree._leaves[user_id] = i
            leaf_slots.append(i)
        if not leaf_slots:
            return tree
        root = tree._alloc(keygen(), None)
        tree._root = root
        stack: List[Tuple[int, List[int], bool]] = [(root, leaf_slots, False)]
        while stack:
            parent, slots, needs_interior = stack.pop()
            if needs_interior:
                interior = tree._alloc(keygen(), None)
                tree._append_child(parent, interior)
                parent = interior
            if len(slots) <= degree:
                for s in slots:
                    tree._append_child(parent, s)
                continue
            quotient, remainder = divmod(len(slots), degree)
            chunks = []
            start = 0
            for index in range(degree):
                length = quotient + (1 if index < remainder else 0)
                chunks.append(slots[start:start + length])
                start += length
            for chunk in reversed(chunks):
                stack.append((parent, chunk, len(chunk) > 1))
        tree._refresh_subtree(root)
        return tree

    def _refresh_subtree(self, root: int) -> None:
        """Fill sizes and aggregates bottom-up below ``root``."""
        order = []
        queue = deque([root])
        while queue:
            i = queue.popleft()
            order.append(i)
            c = self._first_child[i]
            while c >= 0:
                queue.append(c)
                c = self._next_sibling[c]
        for i in reversed(order):
            if self._user_of[i] is None:
                total = 0
                c = self._first_child[i]
                while c >= 0:
                    total += self._size[c]
                    c = self._next_sibling[c]
                self._size[i] = total
            self._recompute_agg(i)

    def load_nodes(self, entries: List[dict], root_id: Optional[int],
                   next_id: int) -> None:
        """Reconstruct topology from snapshot entries (persistence)."""
        by_id: Dict[int, int] = {}
        for entry in entries:
            slot = self._alloc_raw(entry["id"], bytes.fromhex(entry["key"]),
                                   entry["user"])
            self._version[slot] = entry["version"]
            by_id[entry["id"]] = slot
        for entry in entries:
            slot = by_id[entry["id"]]
            for child_id in entry["children"]:
                self._append_child(slot, by_id[child_id])
        self._next_id = next_id
        if root_id is not None:
            self._root = by_id[root_id]
            self._refresh_subtree(self._root)
            # Rebuild the member registry in DFS pre-order, matching the
            # object backend's restore order exactly.
            stack = [self._root]
            while stack:
                i = stack.pop()
                user = self._user_of[i]
                if user is not None:
                    self._leaves[user] = i
                children = []
                c = self._first_child[i]
                while c >= 0:
                    children.append(c)
                    c = self._next_sibling[c]
                stack.extend(reversed(children))
        self.validate()

    # -- queries -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._leaves)

    @property
    def n_users(self) -> int:
        """Current group size."""
        return len(self._leaves)

    @property
    def root(self) -> Optional[FlatNode]:
        """Handle onto the root (group key) slot, or None when empty."""
        return FlatNode(self, self._root) if self._root >= 0 else None

    def users(self) -> List[str]:
        """Current member ids."""
        return list(self._leaves)

    def has_user(self, user_id: str) -> bool:
        """True iff ``user_id`` is a member."""
        return user_id in self._leaves

    def leaf_of(self, user_id: str) -> FlatNode:
        """The user's individual-key leaf handle."""
        try:
            return FlatNode(self, self._leaves[user_id])
        except KeyError:
            raise KeyTreeError(f"unknown user {user_id!r}") from None

    def group_key_node(self) -> FlatNode:
        """The root (group key) node; raises if empty."""
        if self._root < 0:
            raise KeyTreeError("tree is empty")
        return FlatNode(self, self._root)

    def nodes(self) -> Iterable[FlatNode]:
        """All k-nodes, breadth-first from the root."""
        if self._root < 0:
            return
        queue = deque([self._root])
        while queue:
            i = queue.popleft()
            yield FlatNode(self, i)
            c = self._first_child[i]
            while c >= 0:
                queue.append(c)
                c = self._next_sibling[c]

    @property
    def n_keys(self) -> int:
        """Total number of keys held by the server (O(1) on this backend)."""
        return len(self._parent) - len(self._free) if self._root >= 0 else 0

    def nodes_with_depth(self) -> Iterable[Tuple[FlatNode, int]]:
        """(node, depth) pairs, breadth-first; root depth 0, iterative."""
        if self._root < 0:
            return
        queue = deque([(self._root, 0)])
        while queue:
            i, depth = queue.popleft()
            yield FlatNode(self, i), depth
            c = self._first_child[i]
            while c >= 0:
                queue.append((c, depth + 1))
                c = self._next_sibling[c]

    def height(self) -> int:
        """Paper height h: edges on the longest u-node -> root path.

        One breadth-first pass over slots (no per-leaf upward walks, no
        handle churn).
        """
        if self._root < 0:
            return 0
        best = 0
        user_of = self._user_of
        first_child = self._first_child
        next_sibling = self._next_sibling
        queue = deque([(self._root, 0)])
        while queue:
            i, depth = queue.popleft()
            if user_of[i] is not None:
                best = max(best, depth + 1)
            c = first_child[i]
            while c >= 0:
                queue.append((c, depth + 1))
                c = next_sibling[c]
        return best

    def user_key_path(self, user_id: str) -> List[FlatNode]:
        """The keys user ``user_id`` holds, leaf (individual key) first."""
        return self.leaf_of(user_id).path_to_root()

    def userset(self, node: FlatNode) -> List[str]:
        """Users holding the key at ``node`` (in stable subtree order)."""
        if node.index == self._root:
            return list(self._leaves)
        result = []
        stack = [node.index]
        while stack:
            i = stack.pop()
            user = self._user_of[i]
            if user is not None:
                result.append(user)
                continue
            children = []
            c = self._first_child[i]
            while c >= 0:
                children.append(c)
                c = self._next_sibling[c]
            stack.extend(reversed(children))
        return result

    def subtree_size(self, node: FlatNode) -> int:
        """Number of users below ``node`` (O(1): maintained per slot)."""
        return self._size[node.index]

    # -- surgery primitives (TreeBackend protocol surface) -----------------

    def new_leaf(self, user_id: str, key: bytes) -> FlatNode:
        """Allocate and register a (detached) leaf for ``user_id``."""
        if user_id in self._leaves:
            raise KeyTreeError(f"user {user_id!r} is already a member")
        i = self._alloc(key, user_id)
        self._leaves[user_id] = i
        return FlatNode(self, i)

    def start_root(self, leaf: FlatNode) -> FlatNode:
        """Create the root (group key) node above a first, sole leaf."""
        root = self._alloc(self._keygen(), None)
        self._append_child(root, leaf.index)
        self._size[root] = self._size[leaf.index]
        self._recompute_agg(root)
        self._root = root
        return FlatNode(self, root)

    def attach_leaf(self, leaf: FlatNode, spot: FlatNode) -> None:
        """Attach a detached leaf below ``spot``; updates sizes."""
        self._append_child(spot.index, leaf.index)
        self._bump_sizes(spot.index, +1)
        self._update_up(spot.index)

    def split_node(self, victim: FlatNode) -> FlatNode:
        """Replace ``victim`` with a fresh interior that adopts it."""
        v = victim.index
        parent = self._parent[v]
        interior = self._alloc(self._keygen(), None)
        if parent < 0:
            self._root = interior
        else:
            self._replace_child(parent, v, interior)
        self._append_child(interior, v)
        self._size[interior] = self._size[v]
        self._recompute_agg(interior)
        if parent >= 0:
            self._update_up(parent)
        return FlatNode(self, interior)

    def detach_user(self, user_id: str) -> Optional[FlatNode]:
        """Detach a member's leaf; returns the vacated parent handle."""
        try:
            i = self._leaves.pop(user_id)
        except KeyError:
            raise KeyTreeError(f"unknown user {user_id!r}") from None
        parent = self._parent[i]
        if parent < 0:
            self._free_slot(i)
            self._root = -1
            return None
        self._remove_child(parent, i)
        self._free_slot(i)
        self._bump_sizes(parent, -1)
        self._update_up(parent)
        return FlatNode(self, parent)

    def splice_out(self, node: FlatNode) -> FlatNode:
        """Splice a single-child interior out; returns its parent."""
        i = node.index
        only = self._first_child[i]
        parent = self._parent[i]
        self._replace_child(parent, i, only)
        self._free_slot(i)
        self._update_up(parent)
        return FlatNode(self, parent)

    def drop_childless(self, node: FlatNode) -> None:
        """Remove a childless interior from its parent and recycle it."""
        i = node.index
        parent = self._parent[i]
        self._remove_child(parent, i)
        self._free_slot(i)
        self._update_up(parent)

    def clear_root(self) -> None:
        """Forget (and recycle) the root; the tree has no members left."""
        if self._root >= 0:
            self._free_slot(self._root)
            self._root = -1

    def has_room(self, node: FlatNode) -> bool:
        """True iff ``node`` can take another child."""
        return self._n_children[node.index] < self.degree

    def is_attached(self, node: FlatNode) -> bool:
        """True iff ``node`` is still part of the tree."""
        return self._parent[node.index] >= 0 or node.index == self._root

    def shift_node_ids(self, base: int) -> None:
        """Add ``base`` to every node id (cluster shard namespacing)."""
        for node in self.nodes():
            self._node_id[node.index] += base
        self._next_id += base

    # -- joining -----------------------------------------------------------

    def _find_joining_point_idx(self) -> Tuple[int, int]:
        """(joining slot, leaf-to-split slot or -1): O(log n) descent.

        Follows the ``open_d``/``leaf_d`` aggregates from the root,
        taking the leftmost child that achieves the minimum depth at
        each level.  The reached node is exactly the one the object
        backend's breadth-first scan returns: minimum depth first, and
        leftmost (lexicographically smallest root path) among ties —
        which is BFS visit order.
        """
        r = self._root
        assert r >= 0
        if self._open_d[r] < _INF:
            depth = self._open_d[r]
            i = r
            while depth > 0:
                target = depth - 1
                c = self._first_child[i]
                while c >= 0 and self._open_d[c] != target:
                    c = self._next_sibling[c]
                assert c >= 0, "open_d aggregate out of sync"
                i = c
                depth = target
            return i, -1
        depth = self._leaf_d[r]
        i = r
        while depth > 0:
            target = depth - 1
            c = self._first_child[i]
            while c >= 0 and self._leaf_d[c] != target:
                c = self._next_sibling[c]
            assert c >= 0, "leaf_d aggregate out of sync"
            i = c
            depth = target
        return i, i

    def find_joining_point(self) -> Tuple[FlatNode, Optional[FlatNode]]:
        """Public joining-point heuristic (same contract as KeyTree)."""
        jp, split = self._find_joining_point_idx()
        return (FlatNode(self, jp),
                FlatNode(self, split) if split >= 0 else None)

    _find_joining_point = find_joining_point

    def join(self, user_id: str, individual_key: bytes) -> JoinResult:
        """Attach a new user and rekey the path above the joining point."""
        leaf = self.new_leaf(user_id, individual_key)
        if self._root < 0:
            root = self.start_root(leaf)
            return JoinResult(user_id, leaf, changes=[
                PathChange(root, root.key, root.version, root.key)])
        jp, split = self._find_joining_point_idx()
        split_leaf = None
        if split >= 0:
            split_leaf = FlatNode(self, split)
            jp = self.split_node(split_leaf).index
        self.attach_leaf(leaf, FlatNode(self, jp))
        changes = self._rekey_path(jp)
        return JoinResult(user_id, leaf, changes, split_leaf=split_leaf)

    def _rekey_path(self, i: int) -> List[PathChange]:
        """Replace every key from slot ``i`` to the root, root first."""
        path = []
        while i >= 0:
            path.append(i)
            i = self._parent[i]
        changes = []
        for slot in reversed(path):
            old_key = self.arena.get(slot)
            old_version = self._version[slot]
            self.arena.store(slot, self._keygen())
            self._version[slot] += 1
            changes.append(PathChange(FlatNode(self, slot), old_key,
                                      old_version, self.arena.get(slot)))
        return changes

    # -- leaving -----------------------------------------------------------

    def leave(self, user_id: str) -> LeaveResult:
        """Detach a user and rekey the path above the leaving point."""
        try:
            i = self._leaves[user_id]
        except KeyError:
            raise KeyTreeError(f"unknown user {user_id!r}") from None
        # Snapshot the departing leaf before its slot is recycled, so
        # the result stays readable after further mutations.
        removed = TreeNode(self._node_id[i], self.arena.get(i), user_id)
        removed.version = self._version[i]
        parent_handle = self.detach_user(user_id)
        if parent_handle is None:
            return LeaveResult(user_id, removed, changes=[])
        parent = parent_handle.index

        spliced: List[TreeNode] = []
        leaving_point = parent
        if self._n_children[leaving_point] == 1 \
                and self._parent[leaving_point] >= 0:
            snap = TreeNode(self._node_id[leaving_point],
                            self.arena.get(leaving_point), None)
            snap.version = self._version[leaving_point]
            spliced.append(snap)
            leaving_point = self.splice_out(
                FlatNode(self, leaving_point)).index

        if not self._leaves:
            self.clear_root()
            return LeaveResult(user_id, removed, changes=[], spliced=spliced)

        changes = self._rekey_path(leaving_point)
        return LeaveResult(user_id, removed, changes, spliced=spliced)

    # -- validation / export -----------------------------------------------

    def validate(self) -> None:
        """Check structural invariants; raise KeyTreeError on violation."""
        if self._root < 0:
            if self._leaves:
                raise KeyTreeError("empty root but users remain")
            return
        seen_leaves: Dict[str, int] = {}
        live = 0
        for node in self.nodes():
            i = node.index
            live += 1
            n_children = self._n_children[i]
            if n_children > self.degree:
                raise KeyTreeError(
                    f"node {node.node_id} exceeds degree {self.degree}")
            user = self._user_of[i]
            if user is not None:
                if n_children:
                    raise KeyTreeError(f"leaf {node.node_id} has children")
                seen_leaves[user] = i
            elif not n_children:
                raise KeyTreeError(
                    f"interior node {node.node_id} has no children")
            counted = 0
            total_size = 0
            c = self._first_child[i]
            while c >= 0:
                if self._parent[c] != i:
                    raise KeyTreeError(
                        f"parent pointer broken at {self._node_id[c]}")
                counted += 1
                total_size += self._size[c]
                c = self._next_sibling[c]
            if counted != n_children:
                raise KeyTreeError(
                    f"child count stale at {node.node_id}: "
                    f"{n_children} != {counted}")
            expected_size = 1 if user is not None else total_size
            if self._size[i] != expected_size:
                raise KeyTreeError(
                    f"size cache stale at {node.node_id}: "
                    f"{self._size[i]} != {expected_size}")
            if self._recompute_agg(i):
                raise KeyTreeError(
                    f"depth aggregates stale at {node.node_id}")
        if seen_leaves != self._leaves:
            raise KeyTreeError("leaf registry out of sync with tree")
        if live != len(self._parent) - len(self._free):
            raise KeyTreeError("free list out of sync with live slots")

    def to_key_graph(self) -> KeyGraph:
        """Export as a formal :class:`KeyGraph` (u-nodes at leaves)."""
        graph = KeyGraph()
        for node in self.nodes():
            graph.add_k_node(node.node_id)
        for node in self.nodes():
            for child in node.children:
                graph.add_edge(child.node_id, node.node_id)
            if node.is_leaf:
                graph.add_u_node(node.user_id)
                graph.add_edge(node.user_id, node.node_id)
        return graph

    # -- capacity accounting (benchmarks) ----------------------------------

    def storage_bytes(self) -> int:
        """Approximate bytes held by the flat storage (arrays + arena)."""
        arrays = (self._parent, self._first_child, self._next_sibling,
                  self._n_children, self._node_id, self._version,
                  self._size, self._open_d, self._leaf_d)
        total = sum(a.itemsize * len(a) for a in arrays)
        return total + self.arena.nbytes

"""Generic key graphs and the (U, K, R) secure-group model (paper §2).

A *key graph* is a directed acyclic graph with two kinds of nodes:
u-nodes (users) and k-nodes (keys).  Each u-node has outgoing edges only;
each k-node has at least one incoming edge.  Edges point "upward", from a
user toward the keys it holds, and from a key toward keys held by
strictly larger user sets.  A k-node with no outgoing edge is a *root*.

The graph *specifies* a secure group ``(U, K, R)``: ``(u, k) in R`` iff
there is a directed path from u-node ``u`` to k-node ``k``.  This module
implements the graph, its validation rules, and the derived
``keyset`` / ``userset`` functions.

The operational tree class used by the server lives in
:mod:`repro.keygraph.tree`; it can be exported to a :class:`KeyGraph`
(see ``KeyTree.to_key_graph``) so that the formal model validates the
operational structure in tests.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

U_NODE = "u"
K_NODE = "k"


class KeyGraphError(ValueError):
    """Raised when a key graph violates the structural rules of §2.1."""


class KeyGraph:
    """A directed acyclic graph of u-nodes and k-nodes.

    Node names are arbitrary hashable labels (strings in the paper's
    figures, e.g. ``"u1"`` and ``"k123"``).  Edges are added from lower
    nodes to the keys above them.
    """

    def __init__(self):
        self._kind: Dict[object, str] = {}
        self._out: Dict[object, Set[object]] = {}
        self._in: Dict[object, Set[object]] = {}

    # -- construction -----------------------------------------------------

    def add_u_node(self, name) -> None:
        """Add a user node."""
        self._add_node(name, U_NODE)

    def add_k_node(self, name) -> None:
        """Add a key node."""
        self._add_node(name, K_NODE)

    def _add_node(self, name, kind: str) -> None:
        if name in self._kind:
            raise KeyGraphError(f"duplicate node {name!r}")
        self._kind[name] = kind
        self._out[name] = set()
        self._in[name] = set()

    def add_edge(self, lower, upper) -> None:
        """Add a directed edge ``lower -> upper``.

        ``upper`` must be a k-node (u-nodes have no incoming edges); the
        edge must not create a cycle.
        """
        for name in (lower, upper):
            if name not in self._kind:
                raise KeyGraphError(f"unknown node {name!r}")
        if self._kind[upper] != K_NODE:
            raise KeyGraphError("edges must terminate at a k-node")
        if lower == upper or self._reaches(upper, lower):
            raise KeyGraphError(f"edge {lower!r}->{upper!r} would create a cycle")
        self._out[lower].add(upper)
        self._in[upper].add(lower)

    def remove_node(self, name) -> None:
        """Remove a node and all its incident edges."""
        if name not in self._kind:
            raise KeyGraphError(f"unknown node {name!r}")
        for upper in self._out.pop(name):
            self._in[upper].discard(name)
        for lower in self._in.pop(name):
            self._out[lower].discard(name)
        del self._kind[name]

    # -- queries ------------------------------------------------------------

    @property
    def u_nodes(self) -> FrozenSet:
        """All user nodes."""
        return frozenset(n for n, kind in self._kind.items() if kind == U_NODE)

    @property
    def k_nodes(self) -> FrozenSet:
        """All key nodes."""
        return frozenset(n for n, kind in self._kind.items() if kind == K_NODE)

    @property
    def roots(self) -> FrozenSet:
        """K-nodes with incoming edges only (possibly several)."""
        return frozenset(n for n in self.k_nodes if not self._out[n])

    def children(self, name) -> FrozenSet:
        """Nodes with an edge into ``name``."""
        return frozenset(self._in[name])

    def parents(self, name) -> FrozenSet:
        """K-nodes that ``name`` has an edge to."""
        return frozenset(self._out[name])

    def _reaches(self, start, target) -> bool:
        stack = [start]
        seen = set()
        while stack:
            node = stack.pop()
            if node == target:
                return True
            if node in seen:
                continue
            seen.add(node)
            stack.extend(self._out.get(node, ()))
        return False

    def keyset(self, user) -> FrozenSet:
        """All k-nodes reachable from u-node ``user`` (keys the user holds)."""
        if self._kind.get(user) != U_NODE:
            raise KeyGraphError(f"{user!r} is not a u-node")
        found: Set[object] = set()
        stack = list(self._out[user])
        while stack:
            node = stack.pop()
            if node in found:
                continue
            found.add(node)
            stack.extend(self._out[node])
        return frozenset(found)

    def userset(self, key) -> FrozenSet:
        """All u-nodes from which k-node ``key`` is reachable."""
        if self._kind.get(key) != K_NODE:
            raise KeyGraphError(f"{key!r} is not a k-node")
        found: Set[object] = set()
        result: Set[object] = set()
        stack = [key]
        while stack:
            node = stack.pop()
            if node in found:
                continue
            found.add(node)
            for lower in self._in[node]:
                if self._kind[lower] == U_NODE:
                    result.add(lower)
                else:
                    stack.append(lower)
        return frozenset(result)

    def keyset_of_users(self, users: Iterable) -> FrozenSet:
        """Generalized keyset: keys held by at least one user in ``users``."""
        result: Set[object] = set()
        for user in users:
            result |= self.keyset(user)
        return frozenset(result)

    def userset_of_keys(self, keys: Iterable) -> FrozenSet:
        """Generalized userset: users holding at least one key in ``keys``."""
        result: Set[object] = set()
        for key in keys:
            result |= self.userset(key)
        return frozenset(result)

    # -- validation -----------------------------------------------------------

    def validate(self) -> None:
        """Check the structural rules of §2.1; raise KeyGraphError if broken.

        * each u-node has >= 1 outgoing edge and no incoming edge;
        * each k-node has >= 1 incoming edge;
        * the graph is acyclic (guaranteed by construction, re-checked).
        """
        for name, kind in self._kind.items():
            if kind == U_NODE:
                if not self._out[name]:
                    raise KeyGraphError(f"u-node {name!r} has no outgoing edge")
                if self._in[name]:
                    raise KeyGraphError(f"u-node {name!r} has an incoming edge")
            else:
                if not self._in[name]:
                    raise KeyGraphError(f"k-node {name!r} has no incoming edge")
        self._check_acyclic()

    def _check_acyclic(self) -> None:
        in_degree = {n: len(self._in[n]) for n in self._kind}
        queue = [n for n, deg in in_degree.items() if deg == 0]
        visited = 0
        while queue:
            node = queue.pop()
            visited += 1
            for upper in self._out[node]:
                in_degree[upper] -= 1
                if in_degree[upper] == 0:
                    queue.append(upper)
        if visited != len(self._kind):
            raise KeyGraphError("key graph contains a cycle")

    def to_dot(self, title: str = "key graph") -> str:
        """Render as Graphviz DOT (u-nodes as boxes, k-nodes as circles).

        ``dot -Tpng`` turns the output into the paper's Figure 1/3/5
        style diagrams; the examples print it for small groups.
        """
        lines = [f'digraph "{title}" {{', "  rankdir=BT;"]
        for name, kind in sorted(self._kind.items(), key=lambda kv: str(kv[0])):
            shape = "box" if kind == U_NODE else "ellipse"
            lines.append(f'  "{name}" [shape={shape}];')
        for lower in sorted(self._out, key=str):
            for upper in sorted(self._out[lower], key=str):
                lines.append(f'  "{lower}" -> "{upper}";')
        lines.append("}")
        return "\n".join(lines)

    def secure_group(self) -> "SecureGroup":
        """Derive the (U, K, R) triple this graph specifies."""
        self.validate()
        relation = set()
        for user in self.u_nodes:
            for key in self.keyset(user):
                relation.add((user, key))
        return SecureGroup(self.u_nodes, self.k_nodes, frozenset(relation))

    def __len__(self) -> int:
        return len(self._kind)


class SecureGroup:
    """The formal triple ``(U, K, R)`` of §2.

    ``R`` is stored extensionally as a frozenset of ``(user, key)`` pairs.
    """

    def __init__(self, users: Iterable, keys: Iterable,
                 relation: Iterable[Tuple[object, object]]):
        self.users = frozenset(users)
        self.keys = frozenset(keys)
        self.relation = frozenset(relation)
        if not self.users:
            raise KeyGraphError("U must be nonempty")
        if not self.keys:
            raise KeyGraphError("K must be nonempty")
        for user, key in self.relation:
            if user not in self.users or key not in self.keys:
                raise KeyGraphError(f"relation pair ({user!r}, {key!r}) "
                                    "references unknown user or key")
        self._keysets: Dict[object, Set[object]] = {u: set() for u in self.users}
        self._usersets: Dict[object, Set[object]] = {k: set() for k in self.keys}
        for user, key in self.relation:
            self._keysets[user].add(key)
            self._usersets[key].add(user)

    def holds(self, user, key) -> bool:
        """True iff ``(user, key)`` is in R."""
        return (user, key) in self.relation

    def keyset(self, user) -> FrozenSet:
        """Keys held by ``user`` (the R-row)."""
        if user not in self.users:
            raise KeyGraphError(f"unknown user {user!r}")
        return frozenset(self._keysets[user])

    def userset(self, key) -> FrozenSet:
        """Users holding ``key`` (the R-column)."""
        if key not in self.keys:
            raise KeyGraphError(f"unknown key {key!r}")
        return frozenset(self._usersets[key])

    def keyset_of_users(self, users: Iterable) -> FrozenSet:
        """Keys held by at least one of ``users``."""
        result: Set[object] = set()
        for user in users:
            result |= self._keysets[user]
        return frozenset(result)

    def userset_of_keys(self, keys: Iterable) -> FrozenSet:
        """Users holding at least one of ``keys``."""
        result: Set[object] = set()
        for key in keys:
            result |= self._usersets[key]
        return frozenset(result)

    def group_keys(self) -> FrozenSet:
        """Keys shared by every user (candidates for the group key)."""
        return frozenset(k for k in self.keys
                         if self._usersets[k] == self.users)

    def individual_keys(self, user) -> FrozenSet:
        """Keys held by exactly this one user."""
        return frozenset(k for k in self._keysets[user]
                         if self._usersets[k] == {user})


def figure1_example() -> KeyGraph:
    """The key graph of the paper's Figure 1 (4 users, 2 roots)."""
    graph = KeyGraph()
    for i in range(1, 5):
        graph.add_u_node(f"u{i}")
        graph.add_k_node(f"k{i}")
        graph.add_edge(f"u{i}", f"k{i}")
    graph.add_k_node("k12")
    graph.add_k_node("k234")
    graph.add_k_node("k1234")
    graph.add_edge("u1", "k12")
    graph.add_edge("u2", "k12")
    graph.add_edge("u2", "k234")
    graph.add_edge("u3", "k234")
    graph.add_edge("u4", "k234")
    for lower in ("k12", "k234"):
        graph.add_edge(lower, "k1234")
    return graph

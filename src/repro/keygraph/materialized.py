"""Secure groups over *arbitrary* key graphs, with real key material.

The paper's §2 model is more general than the key tree the experiments
use: any DAG of u-nodes and k-nodes specifies a secure group, and
rekeying after a leave is an instance of the (NP-hard) *key covering*
problem — "find a minimum size subset K' of K such that
userset(K') = userset(k) − {u}" for every compromised key k.  §7
explains why the generality matters: with multiple secure groups over
one user population, "the key trees of different group keys are merged
to form a key graph".

:class:`MaterializedKeyGraph` operationalises that model: a
:class:`~repro.keygraph.graph.KeyGraph` whose k-nodes carry actual
(versioned) key material, with join/leave rekeying driven by the
covering machinery of :mod:`repro.keygraph.covering` rather than tree
structure.  Rekey payloads reuse the tree protocols' wire format
(:class:`~repro.core.messages.EncryptedItem`), so the ordinary
:class:`~repro.core.client.GroupClient` processes them unchanged.
Join/leave run through the shared staged pipeline
(:class:`~repro.core.pipeline.RekeyPipeline`); the covering logic is
the plan stage, and this path ships unsigned messages (no sealing).

Rekeying policy on a leave of user ``u``:

* every key ``k`` that ``u`` held and others share is replaced,
  processed in topological order (fewest users first), so replacements
  for "smaller" keys are available as encryption keys for "larger" ones;
* the new ``k`` is encrypted under a greedy cover of
  ``userset(k) − {u}`` drawn from keys ``u`` never held plus
  already-replaced keys — never under anything ``u`` knows.

On a join of user ``u`` attached to keys ``K_u``: every key in the
closure of ``K_u`` is replaced; existing holders decrypt the new key
under the old one, and ``u`` receives its closure in one bundle under
its individual key.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Tuple

from ..core.messages import (INDIVIDUAL_KEY, Destination, KeyRecord,
                             OutboundMessage)
from ..core.pipeline import KeyMaterialSource, RekeyPipeline
from ..core.strategies.base import PlannedMessage, RekeyContext
from ..observability import Instrumentation
from .covering import CoverError, greedy_cover
from .flat import KeyArena
from .graph import KeyGraph, KeyGraphError


class MaterializedGraphError(ValueError):
    """Raised on invalid graph-group operations."""


@dataclass
class GraphRekeyOutcome:
    """Result of a join/leave on a materialized key graph."""

    op: str
    user_id: str
    replaced: List[str]               # k-node names whose keys changed
    encryptions: int
    messages: List[OutboundMessage]
    seconds: float
    # Per-stage breakdown of ``seconds`` from the pipeline's StageClock.
    stage_seconds: Optional[Dict[str, float]] = None


class MaterializedKeyGraph:
    """An operational secure group specified by an arbitrary key graph."""

    def __init__(self, suite, keygen: Callable[[], bytes],
                 iv_source: Optional[Callable[[], bytes]] = None,
                 group_id: int = 1,
                 instrumentation: Optional[Instrumentation] = None):
        self.suite = suite
        self._keygen = keygen
        if iv_source is None:
            iv_source = lambda: keygen()[:suite.block_size].ljust(
                suite.block_size, b"\x00")
        self._iv = iv_source
        self.graph = KeyGraph()
        self.group_id = group_id
        # k-node name -> (integer wire id, version); the key bytes live
        # in a flat arena indexed by wire id (same storage engine as the
        # flat tree backend), not as per-key heap objects.
        self._material: Dict[str, Tuple[int, int]] = {}
        self._arena = KeyArena()
        self._next_wire_id = 1
        # user -> individual key (the leaf-equivalent, outside the graph)
        self._individual: Dict[str, bytes] = {}
        self.instrumentation = (instrumentation if instrumentation is not None
                                else Instrumentation("materialized-graph"))
        registry = self.instrumentation.registry
        self._m_replaced = registry.counter(
            "graph_keys_replaced_total",
            "K-node keys rotated by graph rekeying.", labels=("op",))
        self._m_members = registry.gauge(
            "group_size", "Current number of group members.").labels()
        # Unsigned path: signer=None ships messages without auth blocks.
        self.pipeline = RekeyPipeline(
            suite,
            KeyMaterialSource(suite, key_source=keygen, iv_source=iv_source),
            signer=None, group_id=group_id,
            instrumentation=self.instrumentation)

    # -- construction ------------------------------------------------------

    def add_key(self, name: str) -> None:
        """Create a k-node with fresh key material."""
        self.graph.add_k_node(name)
        wire_id = self._next_wire_id
        self._next_wire_id += 1
        self._material[name] = (wire_id, 0)
        self._arena.store(wire_id, self._keygen())

    def add_user(self, name: str, individual_key: bytes,
                 keys: Iterable[str]) -> None:
        """Add a u-node holding ``keys`` (directly; closure via edges).

        This is *construction*, not a protocol join — no rekeying
        happens.  Use :meth:`join` for backward-secret admission.
        """
        if len(individual_key) != self.suite.key_size:
            raise MaterializedGraphError(
                f"individual key must be {self.suite.key_size} bytes")
        self.graph.add_u_node(name)
        for key in keys:
            self.graph.add_edge(name, key)
        self._individual[name] = individual_key

    def link(self, lower: str, upper: str) -> None:
        """Add a k-node -> k-node edge (lower's holders gain upper)."""
        self.graph.add_edge(lower, upper)

    # -- queries ---------------------------------------------------------------

    def users(self) -> List[str]:
        """Current member ids, sorted."""
        return sorted(self.graph.u_nodes)

    def keyset(self, user: str) -> FrozenSet[str]:
        """K-node names reachable from ``user``."""
        return self.graph.keyset(user)

    def wire_ref(self, name: str) -> Tuple[int, int]:
        """(wire id, version) of a k-node, as rekey items reference it."""
        return self._material[name]

    def key_bytes(self, name: str) -> bytes:
        """Current key material of a k-node."""
        return self._arena.get(self._material[name][0])

    def key_records(self, names: Iterable[str]) -> List[KeyRecord]:
        """Wire key records for the named k-nodes."""
        records = []
        for name in names:
            wire_id, version = self._material[name]
            records.append(KeyRecord(wire_id, version,
                                     self._arena.get(wire_id)))
        return records

    def validate(self) -> None:
        """Graph rules plus material/graph consistency."""
        self.graph.validate()
        if set(self.graph.k_nodes) != set(self._material):
            raise MaterializedGraphError("material out of sync with graph")

    # -- helpers ------------------------------------------------------------------

    def _replace(self, name: str) -> Tuple[int, int, bytes, bytes]:
        """Rotate a key; returns (wire id, new version, old key, new key)."""
        wire_id, version = self._material[name]
        old_key = self._arena.get(wire_id)
        new_key = self._keygen()
        self._material[name] = (wire_id, version + 1)
        self._arena.store(wire_id, new_key)
        return wire_id, version + 1, old_key, new_key

    def _topological_k_order(self, names: Iterable[str]) -> List[str]:
        """Sort k-nodes by |userset| ascending (children before parents)."""
        return sorted(names,
                      key=lambda name: (len(self.graph.userset(name)), name))

    def _root_ref(self) -> Tuple[int, int]:
        """Wire reference of the group key (0, 0 when the graph has none)."""
        group_key = self.group_key_name()
        return self.wire_ref(group_key) if group_key else (0, 0)

    def group_key_name(self) -> Optional[str]:
        """A k-node held by every user (None if the graph has none)."""
        users = self.graph.u_nodes
        for name in sorted(self.graph.k_nodes):
            if self.graph.userset(name) == users:
                return name
        return None

    # -- leave ---------------------------------------------------------------------

    def leave(self, user: str) -> GraphRekeyOutcome:
        """Remove ``user`` and rekey every key it shared, via covering."""
        state: Dict[str, object] = {}

        def planner(ctx: RekeyContext) -> List[PlannedMessage]:
            if user not in self.graph.u_nodes:
                raise MaterializedGraphError(f"unknown user {user!r}")
            old_keyset = set(self.graph.keyset(user))
            self.graph.remove_node(user)
            self._individual.pop(user, None)

            # Keys nobody holds any more disappear; shared ones are
            # replaced.
            compromised: List[str] = []
            for name in sorted(old_keyset):
                if not self.graph.userset(name):
                    self.graph.remove_node(name)
                    self._arena.discard(self._material[name][0])
                    del self._material[name]
                else:
                    compromised.append(name)

            secure = (self.graph.secure_group()
                      if self.graph.u_nodes else None)
            items = []
            replaced: List[str] = []
            replaced_set = set()
            for name in self._topological_k_order(compromised):
                target = self.graph.userset(name)
                wire_id, version, _old, new_key = self._replace(name)
                replaced.append(name)
                replaced_set.add(name)
                # Cover the target with keys the leaver never held, plus
                # keys already replaced this round (their new versions
                # are clean and, by the topological order, already
                # delivered to their holders) — but never the key
                # currently being replaced.
                safe = [k for k in self.graph.k_nodes
                        if (k not in old_keyset or k in replaced_set)
                        and k != name]
                cover = self._cover(secure, target, safe)
                for cover_name in cover:
                    cover_id, cover_version = self._material[cover_name]
                    items.append(ctx.encrypt(
                        self._arena.get(cover_id),
                        [KeyRecord(wire_id, version, new_key)],
                        cover_id, cover_version))
            state["replaced"] = replaced
            if not items:
                return []
            return [PlannedMessage(
                Destination.to_all(), items,
                lambda: tuple(sorted(self.graph.u_nodes)))]

        run = self.pipeline.run("leave", planner, root_ref=self._root_ref,
                                user_id=user)
        self.validate()
        self._m_replaced.inc(len(state["replaced"]), op="leave")
        self._m_members.set(len(self.graph.u_nodes))
        return GraphRekeyOutcome("leave", user, state["replaced"],
                                 run.encryptions, run.messages, run.seconds,
                                 run.stage_seconds)

    def _cover(self, secure, target, safe_names) -> List[str]:
        """Greedy cover of ``target`` restricted to ``safe_names``.

        Falls back to per-user individual keys... which arbitrary graphs
        do not have inside the graph; users whose every graph key was
        shared with the leaver are unreachable through the graph, so the
        construction requirement is that each user keeps at least one
        safe key.  A CoverError here means the graph violates that.
        """
        if secure is None or not target:
            return []
        safe_set = set(safe_names)
        if not safe_set:
            raise CoverError("no safe keys available for cover")
        # Restrict the relation to safe keys by projecting the group.
        from .graph import SecureGroup
        relation = [(u, k) for (u, k) in secure.relation if k in safe_set]
        projected = SecureGroup(secure.users, safe_set, relation)
        return greedy_cover(projected, target)

    # -- join ----------------------------------------------------------------------

    def join(self, user: str, individual_key: bytes,
             keys: Iterable[str]) -> GraphRekeyOutcome:
        """Admit ``user`` holding ``keys``; rekey its closure.

        Backward secrecy: every key the joiner gains is replaced.
        Existing holders learn each new key under the corresponding old
        key (one encryption each); the joiner gets its whole closure in
        one bundle under its individual key.
        """
        keys = list(keys)
        state: Dict[str, object] = {}

        def planner(ctx: RekeyContext) -> List[PlannedMessage]:
            self.add_user(user, individual_key, keys)
            gained = self.graph.keyset(user)
            items = []
            replaced: List[str] = []
            for name in self._topological_k_order(gained):
                holders = self.graph.userset(name)
                wire_id, version, old_key, new_key = self._replace(name)
                replaced.append(name)
                if holders - {user}:
                    items.append(ctx.encrypt(
                        old_key, [KeyRecord(wire_id, version, new_key)],
                        wire_id, version - 1))
            state["replaced"] = replaced
            plans = []
            if items:
                plans.append(PlannedMessage(
                    Destination.to_all(), items,
                    lambda: tuple(sorted(self.graph.u_nodes - {user}))))
            # Joiner bundle: the new keys of its entire closure.
            bundle = ctx.encrypt(individual_key,
                                 self.key_records(sorted(gained)),
                                 INDIVIDUAL_KEY, 0)
            plans.append(PlannedMessage(
                Destination.to_user(user), [bundle],
                lambda: (user,)))
            return plans

        run = self.pipeline.run("join", planner, root_ref=self._root_ref,
                                user_id=user)
        self.validate()
        self._m_replaced.inc(len(state["replaced"]), op="join")
        self._m_members.set(len(self.graph.u_nodes))
        return GraphRekeyOutcome("join", user, state["replaced"],
                                 run.encryptions, run.messages, run.seconds,
                                 run.stage_seconds)

    # -- factories -------------------------------------------------------------------

    @classmethod
    def figure1(cls, suite, keygen
                ) -> Tuple["MaterializedKeyGraph", Dict[str, bytes]]:
        """The paper's Figure 1 graph, materialized, plus the users'
        individual keys."""
        group = cls(suite, keygen)
        for name in ("k1", "k2", "k3", "k4", "k12", "k234", "k1234"):
            group.add_key(name)
        group.link("k12", "k1234")
        group.link("k234", "k1234")
        individual = {}
        for index, (user, keys) in enumerate((
                ("u1", ["k1", "k12"]),
                ("u2", ["k2", "k12", "k234"]),
                ("u3", ["k3", "k234"]),
                ("u4", ["k4", "k234"]))):
            key = keygen()
            individual[user] = key
            group.add_user(user, key, keys)
        group.validate()
        return group, individual

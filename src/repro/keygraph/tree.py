"""Operational key tree (LKH) with join/leave editing (paper §2.2, §3).

The server maintains a single-root tree of k-nodes: the root holds the
group key, leaves hold individual keys (one per user), interior nodes
hold subgroup keys.  ``degree`` bounds the number of children of any
k-node.  The paper's height ``h`` counts edges on the longest u-node to
root path, so a user in a full balanced tree of ``n = d**(h-1)`` users
holds exactly ``h`` keys.

The class implements the paper's maintenance heuristic: "the server
employs a heuristic that attempts to build and maintain a key tree that
is full and balanced".  Joins attach at the shallowest non-full interior
node (splitting a shallowest leaf when the tree is full); leaves splice
out interior nodes left with a single child.

Key material lives on the nodes; every node carries a stable integer id
and a version number that increments on each key replacement, so rekey
messages can reference keys unambiguously.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from .graph import KeyGraph


class KeyTreeError(ValueError):
    """Raised on invalid tree edits (unknown user, duplicate join, ...)."""


class TreeNode:
    """A k-node of the key tree.

    ``user_id`` is set exactly on leaf nodes, which hold that user's
    individual key.
    """

    __slots__ = ("node_id", "key", "version", "parent", "children",
                 "user_id", "size")

    def __init__(self, node_id: int, key: bytes,
                 user_id: Optional[str] = None):
        self.node_id = node_id
        self.key = key
        self.version = 0
        self.parent: Optional["TreeNode"] = None
        self.children: List["TreeNode"] = []
        self.user_id = user_id
        # Number of users in this subtree, maintained incrementally so
        # userset-size queries are O(1) (a leaf counts itself).
        self.size = 1 if user_id is not None else 0

    @property
    def is_leaf(self) -> bool:
        """True iff this node holds a user's individual key."""
        return self.user_id is not None

    def replace_key(self, new_key: bytes) -> None:
        """Install fresh key material and bump the version."""
        self.key = new_key
        self.version += 1

    def path_to_root(self) -> List["TreeNode"]:
        """Nodes from ``self`` (inclusive) up to and including the root."""
        path = []
        node: Optional[TreeNode] = self
        while node is not None:
            path.append(node)
            node = node.parent
        return path

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        tag = f" user={self.user_id}" if self.user_id else ""
        return f"<TreeNode {self.node_id} v{self.version}{tag}>"


@dataclass
class PathChange:
    """One rekeyed node: its old key material and the fresh key."""

    node: TreeNode
    old_key: bytes
    old_version: int
    new_key: bytes


@dataclass
class JoinResult:
    """Outcome of a join edit.

    ``changes`` lists rekeyed nodes ordered root-first (x_0 ... x_j in the
    paper's Figure 6 notation — x_j is the joining point).  ``leaf`` is the
    new individual-key node of the joining user.  ``split_leaf`` is set
    when the heuristic had to split an existing leaf to make room; the
    displaced user's individual-key node was re-attached below the new
    interior node.
    """

    user_id: str
    leaf: TreeNode
    changes: List[PathChange]
    split_leaf: Optional[TreeNode] = None

    @property
    def joining_point(self) -> TreeNode:
        """The k-node the new leaf was attached to."""
        return self.changes[-1].node if self.changes else self.leaf


@dataclass
class LeaveResult:
    """Outcome of a leave edit.

    ``changes`` lists rekeyed nodes root-first (x_0 ... x_j, where x_j is
    the leaving point).  ``removed_leaf`` is the departed user's
    individual-key node (already detached).  ``spliced`` contains interior
    nodes removed because they were left with a single child.
    """

    user_id: str
    removed_leaf: TreeNode
    changes: List[PathChange]
    spliced: List[TreeNode] = field(default_factory=list)

    @property
    def leaving_point(self) -> Optional[TreeNode]:
        """The rekeyed parent of the removed leaf."""
        return self.changes[-1].node if self.changes else None


class KeyTree:
    """Single-root key tree with bounded degree and balance maintenance."""

    def __init__(self, degree: int, keygen: Callable[[], bytes]):
        if degree < 2:
            raise KeyTreeError("tree degree must be >= 2")
        self.degree = degree
        self._keygen = keygen
        self._next_id = 0
        self.root: Optional[TreeNode] = None
        self._leaves: Dict[str, TreeNode] = {}

    # -- construction ------------------------------------------------------

    def _new_node(self, key: bytes, user_id: Optional[str] = None) -> TreeNode:
        node = TreeNode(self._next_id, key, user_id)
        self._next_id += 1
        return node

    @classmethod
    def build(cls, members: Iterable[Tuple[str, bytes]], degree: int,
              keygen: Callable[[], bytes]) -> "KeyTree":
        """Bulk-build a full, balanced tree over ``(user, individual_key)``.

        Equivalent steady-state shape to the paper's initialisation by n
        joins, in O(n) without generating rekey traffic.  The tree is
        divided top-down so every interior node (the root included) gets
        its full fan-out of d children whenever n allows — when n is not
        a power of d, bottom-up grouping would otherwise leave the root
        under-full (e.g. two children for n = 8192, d = 4), which skews
        the per-client key-change statistics of Figure 12.
        """
        tree = cls(degree, keygen)
        leaves = [tree._new_node(key, user_id) for user_id, key in members]
        if not leaves:
            return tree
        for node in leaves:
            tree._leaves[node.user_id] = node

        def attach(parent: "TreeNode", nodes: List["TreeNode"]) -> None:
            if len(nodes) <= degree:
                for node in nodes:
                    node.parent = parent
                    parent.children.append(node)
                    parent.size += node.size
                return
            # Split into d nearly equal chunks; wrap multi-node chunks
            # in a subgroup-key interior.
            quotient, remainder = divmod(len(nodes), degree)
            start = 0
            for index in range(degree):
                length = quotient + (1 if index < remainder else 0)
                chunk = nodes[start:start + length]
                start += length
                if len(chunk) == 1:
                    chunk[0].parent = parent
                    parent.children.append(chunk[0])
                    parent.size += chunk[0].size
                else:
                    interior = tree._new_node(keygen())
                    attach(interior, chunk)
                    interior.parent = parent
                    parent.children.append(interior)
                    parent.size += interior.size

        root = tree._new_node(keygen())
        attach(root, leaves)
        tree.root = root
        return tree

    # -- queries -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._leaves)

    @property
    def n_users(self) -> int:
        """Current group size."""
        return len(self._leaves)

    def users(self) -> List[str]:
        """Current member ids."""
        return list(self._leaves)

    def has_user(self, user_id: str) -> bool:
        """True iff ``user_id`` is a member."""
        return user_id in self._leaves

    def leaf_of(self, user_id: str) -> TreeNode:
        """The user's individual-key leaf node."""
        try:
            return self._leaves[user_id]
        except KeyError:
            raise KeyTreeError(f"unknown user {user_id!r}") from None

    def group_key_node(self) -> TreeNode:
        """The root (group key) node; raises if empty."""
        if self.root is None:
            raise KeyTreeError("tree is empty")
        return self.root

    def nodes(self) -> Iterable[TreeNode]:
        """All k-nodes, breadth-first from the root."""
        if self.root is None:
            return
        queue = deque([self.root])
        while queue:
            node = queue.popleft()
            yield node
            queue.extend(node.children)

    @property
    def n_keys(self) -> int:
        """Total number of keys held by the server (Table 1 'Tree' row)."""
        return sum(1 for _ in self.nodes())

    def height(self) -> int:
        """Paper height h: edges on the longest u-node -> root path.

        The u-node hangs below its leaf k-node, so h is one more than the
        deepest leaf's k-node depth... precisely: a user's key count is
        its leaf depth + 1 (leaf itself plus ancestors), which equals the
        number of edges from the u-node to the root.
        """
        if self.root is None:
            return 0
        best = 0
        for leaf in self._leaves.values():
            depth = len(leaf.path_to_root())
            best = max(best, depth)
        return best

    def user_key_path(self, user_id: str) -> List[TreeNode]:
        """The keys user ``user_id`` holds, leaf (individual key) first."""
        return self.leaf_of(user_id).path_to_root()

    def userset(self, node: TreeNode) -> List[str]:
        """Users holding the key at ``node`` (in stable subtree order)."""
        if node is self.root:
            # Fast path: the whole membership, straight from the registry.
            return list(self._leaves)
        result = []
        stack = [node]
        while stack:
            current = stack.pop()
            if current.is_leaf:
                result.append(current.user_id)
            else:
                stack.extend(reversed(current.children))
        return result

    def subtree_size(self, node: TreeNode) -> int:
        """Number of users below ``node`` (O(1): maintained on the node)."""
        return node.size

    # -- joining ---------------------------------------------------------------

    def _find_joining_point(self) -> Tuple[TreeNode, Optional[TreeNode]]:
        """Pick where to attach a new leaf, keeping the tree balanced.

        Returns ``(joining_point, leaf_to_split)``.  When every interior
        node on the shallow frontier is full, the shallowest leaf is
        split: a fresh interior node takes its place and adopts both the
        displaced leaf and the new one.
        """
        assert self.root is not None
        # Breadth-first: the first interior node with room is the
        # shallowest one, which keeps the tree balanced.
        queue = deque([self.root])
        shallowest_leaf = None
        while queue:
            node = queue.popleft()
            if node.is_leaf:
                if shallowest_leaf is None:
                    shallowest_leaf = node
                continue
            if len(node.children) < self.degree:
                return node, None
            queue.extend(node.children)
        assert shallowest_leaf is not None
        return shallowest_leaf, shallowest_leaf

    def join(self, user_id: str, individual_key: bytes) -> JoinResult:
        """Attach a new user and rekey the path above the joining point.

        Every key from the joining point to the root is replaced (the new
        member must not be able to read past traffic).  Returns the edit
        record the rekeying strategies consume.
        """
        if user_id in self._leaves:
            raise KeyTreeError(f"user {user_id!r} is already a member")
        leaf = self._new_node(individual_key, user_id)
        self._leaves[user_id] = leaf

        if self.root is None:
            # First member: root (group key) above the single leaf.
            root = self._new_node(self._keygen())
            leaf.parent = root
            root.children.append(leaf)
            root.size = 1
            self.root = root
            return JoinResult(user_id, leaf, changes=[
                PathChange(root, root.key, root.version, root.key)])

        joining_point, leaf_to_split = self._find_joining_point()
        split_leaf = None
        if leaf_to_split is not None:
            # Split: new interior node replaces the leaf in its parent,
            # adopting the displaced leaf and the new one.
            parent = leaf_to_split.parent
            interior = self._new_node(self._keygen())
            if parent is None:
                # Splitting the root (only when the root is a leaf —
                # cannot happen with the group-root invariant, but kept
                # for safety).
                self.root = interior
            else:
                parent.children[parent.children.index(leaf_to_split)] = interior
                interior.parent = parent
            leaf_to_split.parent = interior
            interior.children.append(leaf_to_split)
            interior.size = leaf_to_split.size
            joining_point = interior
            split_leaf = leaf_to_split

        leaf.parent = joining_point
        joining_point.children.append(leaf)
        ancestor = joining_point
        while ancestor is not None:
            ancestor.size += 1
            ancestor = ancestor.parent

        changes = []
        for node in reversed(joining_point.path_to_root()):  # root first
            old_key, old_version = node.key, node.version
            node.replace_key(self._keygen())
            changes.append(PathChange(node, old_key, old_version, node.key))
        return JoinResult(user_id, leaf, changes, split_leaf=split_leaf)

    # -- leaving -----------------------------------------------------------------

    def leave(self, user_id: str) -> LeaveResult:
        """Detach a user and rekey the path above the leaving point.

        Every key the departed user held (other than its individual key)
        is replaced.  Interior nodes left with a single child are spliced
        out so the tree stays compact.
        """
        leaf = self.leaf_of(user_id)
        del self._leaves[user_id]
        parent = leaf.parent
        if parent is None:
            # Sole node: empty the tree.
            self.root = None
            return LeaveResult(user_id, leaf, changes=[])
        parent.children.remove(leaf)
        leaf.parent = None
        ancestor = parent
        while ancestor is not None:
            ancestor.size -= 1
            ancestor = ancestor.parent

        spliced = []
        leaving_point = parent
        if len(leaving_point.children) == 1 and leaving_point.parent is not None:
            # Splice out the now-redundant interior node: its single
            # child takes its place.  (The root is kept even with one
            # child so the group key node id stays stable.)
            only_child = leaving_point.children[0]
            grandparent = leaving_point.parent
            grandparent.children[grandparent.children.index(leaving_point)] = only_child
            only_child.parent = grandparent
            spliced.append(leaving_point)
            leaving_point = grandparent

        if not self._leaves:
            self.root = None
            return LeaveResult(user_id, leaf, changes=[], spliced=spliced)

        changes = []
        for node in reversed(leaving_point.path_to_root()):  # root first
            old_key, old_version = node.key, node.version
            node.replace_key(self._keygen())
            changes.append(PathChange(node, old_key, old_version, node.key))
        return LeaveResult(user_id, leaf, changes, spliced=spliced)

    # -- validation / export --------------------------------------------------

    def validate(self) -> None:
        """Check structural invariants; raise KeyTreeError on violation."""
        if self.root is None:
            if self._leaves:
                raise KeyTreeError("empty root but users remain")
            return
        seen_leaves = {}
        for node in self.nodes():
            if len(node.children) > self.degree:
                raise KeyTreeError(
                    f"node {node.node_id} exceeds degree {self.degree}")
            if node.is_leaf:
                if node.children:
                    raise KeyTreeError(
                        f"leaf {node.node_id} has children")
                seen_leaves[node.user_id] = node
            else:
                if not node.children:
                    raise KeyTreeError(
                        f"interior node {node.node_id} has no children")
            for child in node.children:
                if child.parent is not node:
                    raise KeyTreeError(
                        f"parent pointer broken at {child.node_id}")
            expected_size = (1 if node.is_leaf
                             else sum(child.size for child in node.children))
            if node.size != expected_size:
                raise KeyTreeError(
                    f"size cache stale at {node.node_id}: "
                    f"{node.size} != {expected_size}")
        if seen_leaves != self._leaves:
            raise KeyTreeError("leaf registry out of sync with tree")

    def to_key_graph(self) -> KeyGraph:
        """Export as a formal :class:`KeyGraph` (u-nodes attached to leaves)."""
        graph = KeyGraph()
        for node in self.nodes():
            graph.add_k_node(node.node_id)
        for node in self.nodes():
            for child in node.children:
                graph.add_edge(child.node_id, node.node_id)
            if node.is_leaf:
                graph.add_u_node(node.user_id)
                graph.add_edge(node.user_id, node.node_id)
        return graph

"""Operational key tree (LKH) with join/leave editing (paper §2.2, §3).

The server maintains a single-root tree of k-nodes: the root holds the
group key, leaves hold individual keys (one per user), interior nodes
hold subgroup keys.  ``degree`` bounds the number of children of any
k-node.  The paper's height ``h`` counts edges on the longest u-node to
root path, so a user in a full balanced tree of ``n = d**(h-1)`` users
holds exactly ``h`` keys.

The class implements the paper's maintenance heuristic: "the server
employs a heuristic that attempts to build and maintain a key tree that
is full and balanced".  Joins attach at the shallowest non-full interior
node (splitting a shallowest leaf when the tree is full); leaves splice
out interior nodes left with a single child.

Key material lives on the nodes; every node carries a stable integer id
and a version number that increments on each key replacement, so rekey
messages can reference keys unambiguously.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from .graph import KeyGraph


class KeyTreeError(ValueError):
    """Raised on invalid tree edits (unknown user, duplicate join, ...)."""


class TreeNode:
    """A k-node of the key tree.

    ``user_id`` is set exactly on leaf nodes, which hold that user's
    individual key.
    """

    __slots__ = ("node_id", "key", "version", "parent", "children",
                 "user_id", "size")

    def __init__(self, node_id: int, key: bytes,
                 user_id: Optional[str] = None):
        self.node_id = node_id
        self.key = key
        self.version = 0
        self.parent: Optional["TreeNode"] = None
        self.children: List["TreeNode"] = []
        self.user_id = user_id
        # Number of users in this subtree, maintained incrementally so
        # userset-size queries are O(1) (a leaf counts itself).
        self.size = 1 if user_id is not None else 0

    @property
    def is_leaf(self) -> bool:
        """True iff this node holds a user's individual key."""
        return self.user_id is not None

    def replace_key(self, new_key: bytes) -> None:
        """Install fresh key material and bump the version."""
        self.key = new_key
        self.version += 1

    def path_to_root(self) -> List["TreeNode"]:
        """Nodes from ``self`` (inclusive) up to and including the root."""
        path = []
        node: Optional[TreeNode] = self
        while node is not None:
            path.append(node)
            node = node.parent
        return path

    def __eq__(self, other: object) -> bool:
        # Node ids are unique within a tree, so id equality is node
        # equality; handle-based backends (FlatKeyTree) produce fresh
        # handle objects per access, which makes identity useless as an
        # equality test across the tree-consuming code.
        if isinstance(other, TreeNode):
            return self.node_id == other.node_id
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.node_id)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        tag = f" user={self.user_id}" if self.user_id else ""
        return f"<TreeNode {self.node_id} v{self.version}{tag}>"


class PathChange:
    """One rekeyed node: its old key material and the fresh key.

    A plain ``__slots__`` class (not a dataclass): rekey bursts allocate
    one per changed node, and large-n churn makes the per-instance dict
    overhead measurable.
    """

    __slots__ = ("node", "old_key", "old_version", "new_key")

    def __init__(self, node, old_key: bytes, old_version: int,
                 new_key: bytes):
        self.node = node
        self.old_key = old_key
        self.old_version = old_version
        self.new_key = new_key

    def __eq__(self, other: object) -> bool:
        if isinstance(other, PathChange):
            return (self.node == other.node
                    and self.old_key == other.old_key
                    and self.old_version == other.old_version
                    and self.new_key == other.new_key)
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"PathChange(node={self.node!r}, "
                f"old_version={self.old_version})")


class JoinResult:
    """Outcome of a join edit.

    ``changes`` lists rekeyed nodes ordered root-first (x_0 ... x_j in the
    paper's Figure 6 notation — x_j is the joining point).  ``leaf`` is the
    new individual-key node of the joining user.  ``split_leaf`` is set
    when the heuristic had to split an existing leaf to make room; the
    displaced user's individual-key node was re-attached below the new
    interior node.
    """

    __slots__ = ("user_id", "leaf", "changes", "split_leaf")

    def __init__(self, user_id: str, leaf, changes: List[PathChange],
                 split_leaf=None):
        self.user_id = user_id
        self.leaf = leaf
        self.changes = changes
        self.split_leaf = split_leaf

    @property
    def joining_point(self):
        """The k-node the new leaf was attached to."""
        return self.changes[-1].node if self.changes else self.leaf

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"JoinResult(user_id={self.user_id!r}, "
                f"changes={len(self.changes)})")


class LeaveResult:
    """Outcome of a leave edit.

    ``changes`` lists rekeyed nodes root-first (x_0 ... x_j, where x_j is
    the leaving point).  ``removed_leaf`` is the departed user's
    individual-key node (already detached).  ``spliced`` contains interior
    nodes removed because they were left with a single child.
    """

    __slots__ = ("user_id", "removed_leaf", "changes", "spliced")

    def __init__(self, user_id: str, removed_leaf,
                 changes: List[PathChange], spliced=None):
        self.user_id = user_id
        self.removed_leaf = removed_leaf
        self.changes = changes
        self.spliced = spliced if spliced is not None else []

    @property
    def leaving_point(self):
        """The rekeyed parent of the removed leaf."""
        return self.changes[-1].node if self.changes else None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"LeaveResult(user_id={self.user_id!r}, "
                f"changes={len(self.changes)})")


class KeyTree:
    """Single-root key tree with bounded degree and balance maintenance."""

    backend_name = "object"

    def __init__(self, degree: int, keygen: Callable[[], bytes]):
        if degree < 2:
            raise KeyTreeError("tree degree must be >= 2")
        self.degree = degree
        self._keygen = keygen
        self._next_id = 0
        self.root: Optional[TreeNode] = None
        self._leaves: Dict[str, TreeNode] = {}

    # -- construction ------------------------------------------------------

    def _new_node(self, key: bytes, user_id: Optional[str] = None) -> TreeNode:
        node = TreeNode(self._next_id, key, user_id)
        self._next_id += 1
        return node

    @classmethod
    def build(cls, members: Iterable[Tuple[str, bytes]], degree: int,
              keygen: Callable[[], bytes]) -> "KeyTree":
        """Bulk-build a full, balanced tree over ``(user, individual_key)``.

        Equivalent steady-state shape to the paper's initialisation by n
        joins, in O(n) without generating rekey traffic.  The tree is
        divided top-down so every interior node (the root included) gets
        its full fan-out of d children whenever n allows — when n is not
        a power of d, bottom-up grouping would otherwise leave the root
        under-full (e.g. two children for n = 8192, d = 4), which skews
        the per-client key-change statistics of Figure 12.
        """
        tree = cls(degree, keygen)
        leaves = [tree._new_node(key, user_id) for user_id, key in members]
        if not leaves:
            return tree
        for node in leaves:
            tree._leaves[node.user_id] = node

        # Iterative top-down division (an explicit stack instead of
        # recursion, so degree-2 builds at large n cannot hit Python's
        # recursion limit).  Frames are (parent, nodes, needs_interior);
        # chunks are pushed in reverse so pops occur in chunk order,
        # and a multi-node chunk draws its interior key at the moment
        # its frame is popped — before any of its descendants.  That
        # reproduces the recursive version's DFS pre-order keygen call
        # sequence (and node-id assignment) exactly, so every derived
        # key byte is identical to the recursive build's.
        root = tree._new_node(keygen())
        tree.root = root
        stack: List[Tuple[TreeNode, List[TreeNode], bool]] = [
            (root, leaves, False)]
        while stack:
            parent, nodes, needs_interior = stack.pop()
            if needs_interior:
                interior = tree._new_node(keygen())
                interior.parent = parent
                parent.children.append(interior)
                parent = interior
            if len(nodes) <= degree:
                for node in nodes:
                    node.parent = parent
                    parent.children.append(node)
                continue
            # Split into d nearly equal chunks; wrap multi-node chunks
            # in a subgroup-key interior (when their frame is popped).
            quotient, remainder = divmod(len(nodes), degree)
            chunks = []
            start = 0
            for index in range(degree):
                length = quotient + (1 if index < remainder else 0)
                chunks.append(nodes[start:start + length])
                start += length
            for chunk in reversed(chunks):
                stack.append((parent, chunk, len(chunk) > 1))
        # Subtree sizes cannot be filled during the pre-order pass (an
        # interior's final size is unknown until its subtree is built),
        # so fill them bottom-up afterwards: reversed BFS order visits
        # every child before its parent.
        order = list(tree.nodes())
        for node in reversed(order):
            if not node.is_leaf:
                node.size = sum(child.size for child in node.children)
        return tree

    def load_nodes(self, entries: List[dict], root_id: Optional[int],
                   next_id: int) -> None:
        """Reconstruct topology from snapshot entries (persistence).

        Entries carry ``id``/``version``/``key`` (hex)/``user``/
        ``children`` (ids).  Sizes are filled bottom-up and the member
        registry rebuilt in DFS pre-order — both iteratively, so a
        degree-2 tree at large n cannot hit the recursion limit.
        """
        by_id: Dict[int, TreeNode] = {}
        for entry in entries:
            node = TreeNode(entry["id"], bytes.fromhex(entry["key"]),
                            entry["user"])
            node.version = entry["version"]
            by_id[node.node_id] = node
        for entry in entries:
            node = by_id[entry["id"]]
            for child_id in entry["children"]:
                child = by_id[child_id]
                child.parent = node
                node.children.append(child)
        self._next_id = next_id
        if root_id is not None:
            self.root = by_id[root_id]
            order = list(self.nodes())
            for node in reversed(order):
                if node.is_leaf:
                    node.size = 1
                else:
                    node.size = sum(child.size for child in node.children)
            stack = [self.root]
            while stack:
                node = stack.pop()
                if node.is_leaf:
                    self._leaves[node.user_id] = node
                stack.extend(reversed(node.children))
        self.validate()

    # -- queries -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._leaves)

    @property
    def n_users(self) -> int:
        """Current group size."""
        return len(self._leaves)

    def users(self) -> List[str]:
        """Current member ids."""
        return list(self._leaves)

    def has_user(self, user_id: str) -> bool:
        """True iff ``user_id`` is a member."""
        return user_id in self._leaves

    def leaf_of(self, user_id: str) -> TreeNode:
        """The user's individual-key leaf node."""
        try:
            return self._leaves[user_id]
        except KeyError:
            raise KeyTreeError(f"unknown user {user_id!r}") from None

    def group_key_node(self) -> TreeNode:
        """The root (group key) node; raises if empty."""
        if self.root is None:
            raise KeyTreeError("tree is empty")
        return self.root

    def nodes(self) -> Iterable[TreeNode]:
        """All k-nodes, breadth-first from the root."""
        if self.root is None:
            return
        queue = deque([self.root])
        while queue:
            node = queue.popleft()
            yield node
            queue.extend(node.children)

    def nodes_with_depth(self) -> Iterable[Tuple[TreeNode, int]]:
        """(node, depth) pairs, breadth-first; root depth 0.

        The iterative traversal helper shape metrics build on: one
        queue-driven pass hands every node its depth, so callers never
        re-walk a root path per leaf (O(n·h)) nor recurse (a height-h
        call stack overflows CPython's recursion limit long before the
        million-member trees the flat backend targets).
        """
        if self.root is None:
            return
        queue = deque([(self.root, 0)])
        while queue:
            node, depth = queue.popleft()
            yield node, depth
            for child in node.children:
                queue.append((child, depth + 1))

    @property
    def n_keys(self) -> int:
        """Total number of keys held by the server (Table 1 'Tree' row)."""
        return sum(1 for _ in self.nodes())

    def height(self) -> int:
        """Paper height h: edges on the longest u-node -> root path.

        The u-node hangs below its leaf k-node, so h is one more than the
        deepest leaf's k-node depth... precisely: a user's key count is
        its leaf depth + 1 (leaf itself plus ancestors), which equals the
        number of edges from the u-node to the root.  Computed in one
        breadth-first pass (not a per-leaf path walk).
        """
        best = 0
        for node, depth in self.nodes_with_depth():
            if node.is_leaf:
                best = max(best, depth + 1)
        return best

    def user_key_path(self, user_id: str) -> List[TreeNode]:
        """The keys user ``user_id`` holds, leaf (individual key) first."""
        return self.leaf_of(user_id).path_to_root()

    def userset(self, node: TreeNode) -> List[str]:
        """Users holding the key at ``node`` (in stable subtree order)."""
        if node is self.root:
            # Fast path: the whole membership, straight from the registry.
            return list(self._leaves)
        result = []
        stack = [node]
        while stack:
            current = stack.pop()
            if current.is_leaf:
                result.append(current.user_id)
            else:
                stack.extend(reversed(current.children))
        return result

    def subtree_size(self, node: TreeNode) -> int:
        """Number of users below ``node`` (O(1): maintained on the node)."""
        return node.size

    # -- surgery primitives (the TreeBackend protocol surface) -------------
    #
    # Callers that edit the tree (the per-request join/leave below, the
    # batch flush in ``batch.rekeying``, cluster namespacing) go through
    # these named operations instead of reaching into node internals, so
    # an array-backed tree (``flat.FlatKeyTree``) can implement the same
    # surface over indices instead of objects.

    def new_leaf(self, user_id: str, key: bytes) -> TreeNode:
        """Allocate and register a (detached) leaf for ``user_id``."""
        if user_id in self._leaves:
            raise KeyTreeError(f"user {user_id!r} is already a member")
        leaf = self._new_node(key, user_id)
        self._leaves[user_id] = leaf
        return leaf

    def start_root(self, leaf: TreeNode) -> TreeNode:
        """Create the root (group key) node above a first, sole leaf."""
        root = self._new_node(self._keygen())
        leaf.parent = root
        root.children.append(leaf)
        root.size = leaf.size
        self.root = root
        return root

    def attach_leaf(self, leaf: TreeNode, spot: TreeNode) -> None:
        """Attach a detached leaf below ``spot``; updates subtree sizes."""
        leaf.parent = spot
        spot.children.append(leaf)
        node: Optional[TreeNode] = spot
        while node is not None:
            node.size += 1
            node = node.parent

    def split_node(self, victim: TreeNode) -> TreeNode:
        """Replace ``victim`` with a fresh interior that adopts it.

        Draws one key for the new interior.  Used when the joining
        heuristic must split a leaf to make room.
        """
        parent = victim.parent
        interior = self._new_node(self._keygen())
        if parent is None:
            self.root = interior
        else:
            parent.children[parent.children.index(victim)] = interior
            interior.parent = parent
        victim.parent = interior
        interior.children.append(victim)
        interior.size = victim.size
        return interior

    def detach_user(self, user_id: str) -> Optional[TreeNode]:
        """Detach a member's leaf; returns the vacated parent.

        Returns ``None`` (and empties the tree) when the leaf had no
        parent.  Subtree sizes along the path are updated.
        """
        leaf = self.leaf_of(user_id)
        del self._leaves[user_id]
        parent = leaf.parent
        leaf.parent = None
        if parent is None:
            self.root = None
            return None
        parent.children.remove(leaf)
        node: Optional[TreeNode] = parent
        while node is not None:
            node.size -= 1
            node = node.parent
        return parent

    def splice_out(self, node: TreeNode) -> TreeNode:
        """Splice a single-child interior out; returns its parent."""
        only_child = node.children[0]
        parent = node.parent
        parent.children[parent.children.index(node)] = only_child
        only_child.parent = parent
        return parent

    def drop_childless(self, node: TreeNode) -> None:
        """Remove a childless interior from its parent."""
        node.parent.children.remove(node)
        node.parent = None

    def clear_root(self) -> None:
        """Forget the root (the tree has no members left)."""
        self.root = None

    def has_room(self, node: TreeNode) -> bool:
        """True iff ``node`` can take another child."""
        return len(node.children) < self.degree

    def is_attached(self, node: TreeNode) -> bool:
        """True iff ``node`` is still part of the tree."""
        return node.parent is not None or node == self.root

    def find_joining_point(self) -> Tuple[TreeNode, Optional[TreeNode]]:
        """Public alias of the joining-point heuristic (batch flush)."""
        return self._find_joining_point()

    def shift_node_ids(self, base: int) -> None:
        """Add ``base`` to every node id (cluster shard namespacing)."""
        for node in self.nodes():
            node.node_id += base
        self._next_id += base

    # -- joining ---------------------------------------------------------------

    def _find_joining_point(self) -> Tuple[TreeNode, Optional[TreeNode]]:
        """Pick where to attach a new leaf, keeping the tree balanced.

        Returns ``(joining_point, leaf_to_split)``.  When every interior
        node on the shallow frontier is full, the shallowest leaf is
        split: a fresh interior node takes its place and adopts both the
        displaced leaf and the new one.
        """
        assert self.root is not None
        # Breadth-first: the first interior node with room is the
        # shallowest one, which keeps the tree balanced.
        queue = deque([self.root])
        shallowest_leaf = None
        while queue:
            node = queue.popleft()
            if node.is_leaf:
                if shallowest_leaf is None:
                    shallowest_leaf = node
                continue
            if len(node.children) < self.degree:
                return node, None
            queue.extend(node.children)
        assert shallowest_leaf is not None
        return shallowest_leaf, shallowest_leaf

    def join(self, user_id: str, individual_key: bytes) -> JoinResult:
        """Attach a new user and rekey the path above the joining point.

        Every key from the joining point to the root is replaced (the new
        member must not be able to read past traffic).  Returns the edit
        record the rekeying strategies consume.
        """
        leaf = self.new_leaf(user_id, individual_key)

        if self.root is None:
            # First member: root (group key) above the single leaf.
            root = self.start_root(leaf)
            return JoinResult(user_id, leaf, changes=[
                PathChange(root, root.key, root.version, root.key)])

        joining_point, leaf_to_split = self._find_joining_point()
        split_leaf = None
        if leaf_to_split is not None:
            # Split: new interior node replaces the leaf in its parent,
            # adopting the displaced leaf and the new one.
            joining_point = self.split_node(leaf_to_split)
            split_leaf = leaf_to_split

        self.attach_leaf(leaf, joining_point)

        changes = []
        for node in reversed(joining_point.path_to_root()):  # root first
            old_key, old_version = node.key, node.version
            node.replace_key(self._keygen())
            changes.append(PathChange(node, old_key, old_version, node.key))
        return JoinResult(user_id, leaf, changes, split_leaf=split_leaf)

    # -- leaving -----------------------------------------------------------------

    def leave(self, user_id: str) -> LeaveResult:
        """Detach a user and rekey the path above the leaving point.

        Every key the departed user held (other than its individual key)
        is replaced.  Interior nodes left with a single child are spliced
        out so the tree stays compact.
        """
        leaf = self.leaf_of(user_id)
        parent = self.detach_user(user_id)
        if parent is None:
            # Sole node: empty the tree.
            return LeaveResult(user_id, leaf, changes=[])

        spliced = []
        leaving_point = parent
        if len(leaving_point.children) == 1 and leaving_point.parent is not None:
            # Splice out the now-redundant interior node: its single
            # child takes its place.  (The root is kept even with one
            # child so the group key node id stays stable.)
            spliced.append(leaving_point)
            leaving_point = self.splice_out(leaving_point)

        if not self._leaves:
            self.root = None
            return LeaveResult(user_id, leaf, changes=[], spliced=spliced)

        changes = []
        for node in reversed(leaving_point.path_to_root()):  # root first
            old_key, old_version = node.key, node.version
            node.replace_key(self._keygen())
            changes.append(PathChange(node, old_key, old_version, node.key))
        return LeaveResult(user_id, leaf, changes, spliced=spliced)

    # -- validation / export --------------------------------------------------

    def validate(self) -> None:
        """Check structural invariants; raise KeyTreeError on violation."""
        if self.root is None:
            if self._leaves:
                raise KeyTreeError("empty root but users remain")
            return
        seen_leaves = {}
        for node in self.nodes():
            if len(node.children) > self.degree:
                raise KeyTreeError(
                    f"node {node.node_id} exceeds degree {self.degree}")
            if node.is_leaf:
                if node.children:
                    raise KeyTreeError(
                        f"leaf {node.node_id} has children")
                seen_leaves[node.user_id] = node
            else:
                if not node.children:
                    raise KeyTreeError(
                        f"interior node {node.node_id} has no children")
            for child in node.children:
                if child.parent is not node:
                    raise KeyTreeError(
                        f"parent pointer broken at {child.node_id}")
            expected_size = (1 if node.is_leaf
                             else sum(child.size for child in node.children))
            if node.size != expected_size:
                raise KeyTreeError(
                    f"size cache stale at {node.node_id}: "
                    f"{node.size} != {expected_size}")
        if seen_leaves != self._leaves:
            raise KeyTreeError("leaf registry out of sync with tree")

    def to_key_graph(self) -> KeyGraph:
        """Export as a formal :class:`KeyGraph` (u-nodes attached to leaves)."""
        graph = KeyGraph()
        for node in self.nodes():
            graph.add_k_node(node.node_id)
        for node in self.nodes():
            for child in node.children:
                graph.add_edge(child.node_id, node.node_id)
            if node.is_leaf:
                graph.add_u_node(node.user_id)
                graph.add_edge(node.user_id, node.node_id)
        return graph

"""Interval batch rekeying extension (future-work direction of the paper)."""

from .rekeying import BatchError, BatchRekeyServer, BatchResult

__all__ = ["BatchRekeyServer", "BatchResult", "BatchError"]

"""Interval batch rekeying (extension; the paper's future-work direction).

With very frequent joins and leaves, rekeying after *every* request still
repeats work: consecutive requests often rekey overlapping tree paths
(every request changes the root key).  The natural extension — taken by
the authors' follow-on work on Keystone/batch rekeying — collects the
requests arriving in an interval and rekeys once:

* departed leaves are detached, arriving users are attached (reusing
  vacated positions first, which keeps the tree balanced under churn);
* every key on a path from any edit point to the root is replaced once,
  no matter how many requests touched it;
* one group-oriented style rekey message carries all new keys, with each
  new key encrypted under each child of its node (new child keys for
  changed children), plus one unicast bundle per joiner.

The flush runs through the shared staged pipeline
(:class:`~repro.core.pipeline.RekeyPipeline`): the batch edit and
message planning are the plan stage, and encryption, signing and
dispatch are the pipeline's.  Key/IV sourcing and signer construction
come from the same :class:`~repro.core.pipeline.KeyMaterialSource` /
:func:`~repro.core.pipeline.make_signer` the immediate server uses.

:class:`BatchRekeyServer` measures the saving:
``individual_cost_estimate`` is what processing the same requests one at
a time would have cost (computed with the same formulas the per-request
server obeys), and ``flush`` reports the batch's actual encryption
count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..core.messages import (INDIVIDUAL_KEY, MSG_DATA,
                             STRATEGY_GROUP_ORIENTED, Destination,
                             EncryptedItem, KeyRecord, Message,
                             OutboundMessage)
from ..core.pipeline import (KeyMaterialSource, RekeyPipeline, make_signer)
from ..core.resync import RESYNC_NOT_MEMBER, RESYNC_OK, build_resync_reply
from ..core.strategies.base import PlannedMessage, RekeyContext
from ..crypto.suite import PAPER_SUITE, CipherSuite
from ..keygraph.backend import build_tree, make_tree
from ..observability import Instrumentation


class BatchError(ValueError):
    """Raised on invalid batched requests."""


@dataclass
class BatchResult:
    """Outcome of one flush."""

    n_joins: int
    n_leaves: int
    encryptions: int
    individual_cost_estimate: int
    rekey_message: Optional[OutboundMessage]
    joiner_messages: List[OutboundMessage]
    seconds: float
    # Per-stage breakdown of ``seconds`` from the pipeline's StageClock.
    stage_seconds: Optional[Dict[str, float]] = None

    @property
    def saving(self) -> float:
        """Fraction of per-request encryptions avoided by batching."""
        if not self.individual_cost_estimate:
            return 0.0
        return 1.0 - self.encryptions / self.individual_cost_estimate


class BatchRekeyServer:
    """A key-tree server that rekeys once per interval."""

    def __init__(self, degree: int = 4, suite: CipherSuite = PAPER_SUITE,
                 signing: str = "none", seed: Optional[bytes] = None,
                 instrumentation: Optional[Instrumentation] = None,
                 backend: str = "object"):
        self.suite = suite
        self.backend = backend
        self.material = KeyMaterialSource(suite, seed, b"batch-rekey")
        self.tree = make_tree(backend, degree, self._new_key)
        self._pending_joins: Dict[str, bytes] = {}
        self._pending_leaves: Set[str] = set()
        self.flushes: List[BatchResult] = []
        self._signer, self.signing_keypair = make_signer(
            suite, signing, seed, error=BatchError)
        self.instrumentation = (instrumentation if instrumentation is not None
                                else Instrumentation("batch-rekey"))
        registry = self.instrumentation.registry
        self._m_flushes = registry.counter(
            "batch_flushes_total", "Interval flushes executed.").labels()
        self._m_batched = registry.counter(
            "batch_requests_total", "Requests folded into flushes.",
            labels=("op",))
        self._m_encryptions = registry.counter(
            "encryptions_total", "Keys encrypted (Table 2 measure).",
            labels=("op",))
        self._m_saved = registry.counter(
            "batch_encryptions_saved_total",
            "Encryptions avoided versus per-request rekeying.").labels()
        self._m_pending_joins = registry.gauge(
            "batch_pending_joins", "Joins queued for the next flush.").labels()
        self._m_pending_leaves = registry.gauge(
            "batch_pending_leaves",
            "Leaves queued for the next flush.").labels()
        self.pipeline = RekeyPipeline(
            suite, self.material, signer=self._signer,
            seal_individually=True, group_id=1,
            instrumentation=self.instrumentation)

        # Dedicated IV stream for resync replies and data messages, so
        # recovery traffic never perturbs the flush's key/IV draws.
        self.resync_material = KeyMaterialSource(suite, seed,
                                                 b"batch-resync")
        self._m_resyncs = registry.counter(
            "resync_replies_total",
            "Resync replies served, by status.", labels=("status",))
        # Subcast sealing draws from its own personalization so covered
        # multicasts never perturb flush key/IV draws either.
        self.subcast_material = KeyMaterialSource(suite, seed,
                                                  b"batch-subcast")
        from ..subcast.sealing import SubcastSealer
        self.subcast_sealer = SubcastSealer(
            suite, self.subcast_material, self._signer,
            self.pipeline.sequencer, group_id=1,
            seal_lock=self.pipeline.seal_lock)
        self._m_subcasts = registry.counter(
            "subcast_messages_total", "Subcast messages sealed.").labels()

    def _new_key(self) -> bytes:
        return self.material.new_key()

    def _new_iv(self) -> bytes:
        return self.material.new_iv()

    def new_individual_key(self) -> bytes:
        """Generate an individual key (stands in for the auth exchange)."""
        return self.material.new_individual_key()

    # -- membership (mirrors GroupKeyServer's surface) ---------------------

    def is_member(self, user_id: str) -> bool:
        """True iff ``user_id`` is currently in the (flushed) tree."""
        return self.tree.has_user(user_id)

    def members(self):
        """Current member ids (flushed state)."""
        return self.tree.users()

    def group_key(self) -> bytes:
        """Current group key bytes."""
        return self.tree.group_key_node().key

    def group_key_ref(self):
        """(node id, version) of the current group key."""
        root = self.tree.group_key_node()
        return root.node_id, root.version

    # -- request intake ----------------------------------------------------

    def bootstrap(self, members) -> None:
        """Bulk-build the initial tree (no rekey traffic)."""
        if self.tree.n_users:
            raise BatchError("bootstrap requires an empty tree")
        self.tree = build_tree(self.backend, list(members),
                               self.tree.degree, self._new_key)

    def request_join(self, user_id: str, individual_key: bytes) -> None:
        """Queue a join for the next flush."""
        if user_id in self._pending_joins:
            raise BatchError(f"user {user_id!r} already pending")
        if self.tree.has_user(user_id) and user_id not in self._pending_leaves:
            raise BatchError(f"user {user_id!r} is already a member")
        # A rejoin after a pending leave is fine: the flush detaches the
        # old leaf before attaching the new one (fresh individual key).
        self._pending_joins[user_id] = individual_key
        self._sync_pending()

    def request_leave(self, user_id: str) -> None:
        """Queue a leave for the next flush (joins in-interval cancel out)."""
        if user_id in self._pending_joins:
            # Joined and left within one interval: cancel out entirely.
            del self._pending_joins[user_id]
            self._sync_pending()
            return
        if not self.tree.has_user(user_id):
            raise BatchError(f"user {user_id!r} is not a member")
        if user_id in self._pending_leaves:
            raise BatchError(f"user {user_id!r} already leaving")
        self._pending_leaves.add(user_id)
        self._sync_pending()

    def _sync_pending(self) -> None:
        self._m_pending_joins.set(len(self._pending_joins))
        self._m_pending_leaves.set(len(self._pending_leaves))

    @property
    def pending(self) -> Tuple[int, int]:
        """(queued joins, queued leaves)."""
        return len(self._pending_joins), len(self._pending_leaves)

    # -- the batch edit -------------------------------------------------------

    def flush(self) -> BatchResult:
        """Apply all pending requests with a single rekeying pass."""
        joins = list(self._pending_joins.items())
        # Sorted so the flush is deterministic regardless of the set's
        # hash-seed-dependent iteration order (reproducible byte output).
        leaves = sorted(self._pending_leaves)
        self._pending_joins.clear()
        self._pending_leaves.clear()

        individual_estimate = self._individual_cost_estimate(
            len(joins), len(leaves))
        state: Dict[str, object] = {}

        def planner(ctx: RekeyContext) -> List[PlannedMessage]:
            return self._plan_flush(ctx, joins, leaves, state)

        run = self.pipeline.run(
            "flush", planner, strategy_code=STRATEGY_GROUP_ORIENTED,
            root_ref=lambda: (self.tree.root.node_id,
                              self.tree.root.version))

        rekey_message: Optional[OutboundMessage] = None
        joiner_messages = list(run.messages)
        if state["has_multicast"] and joiner_messages:
            rekey_message = joiner_messages.pop(0)

        result = BatchResult(
            n_joins=len(joins), n_leaves=len(leaves),
            encryptions=run.encryptions,
            individual_cost_estimate=individual_estimate,
            rekey_message=rekey_message,
            joiner_messages=joiner_messages,
            seconds=run.seconds,
            stage_seconds=run.stage_seconds,
        )
        self.flushes.append(result)
        self._m_flushes.inc()
        self._m_batched.inc(len(joins), op="join")
        self._m_batched.inc(len(leaves), op="leave")
        self._m_encryptions.inc(run.encryptions, op="flush")
        self._m_saved.inc(max(0, individual_estimate - run.encryptions))
        self._sync_pending()
        return result

    def _plan_flush(self, ctx: RekeyContext, joins, leaves,
                    state: Dict[str, object]) -> List[PlannedMessage]:
        """The plan stage: apply the batch edit, schedule all encryptions.

        All tree surgery goes through the backend's named primitives
        (detach/attach/split/splice), so the same plan runs unchanged
        over the object tree and the flat array tree.
        """
        # 1. Detach departing leaves, remembering vacated parents.
        dirty: Set[int] = set()
        dirty_nodes: Dict[int, object] = {}
        vacancies: List[object] = []
        for user_id in leaves:
            parent = self.tree.detach_user(user_id)
            if parent is not None:
                vacancies.append(parent)
                self._mark_path(parent, dirty, dirty_nodes)

        # 2. Attach joiners, preferring vacated positions.
        new_leaves: Dict[str, object] = {}
        for user_id, key in joins:
            spot = None
            while vacancies:
                candidate = vacancies.pop()
                if self.tree.is_attached(candidate) \
                        and self.tree.has_room(candidate):
                    spot = candidate
                    break
            leaf = self.tree.new_leaf(user_id, key)
            if self.tree.root is None:
                root = self.tree.start_root(leaf)
                new_leaves[user_id] = leaf
                self._mark_path(root, dirty, dirty_nodes)
                continue
            if spot is None:
                spot, split = self.tree.find_joining_point()
                if split is not None:
                    spot = self.tree.split_node(split)
            self.tree.attach_leaf(leaf, spot)
            new_leaves[user_id] = leaf
            self._mark_path(spot, dirty, dirty_nodes)

        # 2b. Splice out interiors left empty or with one child.
        self._compact(dirty, dirty_nodes)

        # 3. Replace every dirty key once, root last (top-down order for
        #    message assembly; parents referenced by new child keys).
        ordered = self._dirty_top_down(dirty_nodes)
        for node in ordered:
            node.replace_key(self._new_key())

        # 4. One group-oriented style message: each dirty node's new key
        #    under each of its children's current keys.
        plans: List[PlannedMessage] = []
        items = []
        for node in ordered:
            record = KeyRecord(node.node_id, node.version, node.key)
            for child in node.children:
                items.append(ctx.encrypt(child.key, [record],
                                         child.node_id, child.version))
        state["has_multicast"] = bool(items and self.tree.root is not None)
        if state["has_multicast"]:
            plans.append(PlannedMessage(
                Destination.to_all(), items,
                lambda: tuple(self.tree.users())))
        # 5. Unicast each joiner its full path.
        for user_id, leaf in new_leaves.items():
            if not self.tree.has_user(user_id):
                continue
            path = leaf.path_to_root()[1:]
            records = [KeyRecord(n.node_id, n.version, n.key) for n in path]
            item = ctx.encrypt(leaf.key, records, INDIVIDUAL_KEY, 0)
            plans.append(PlannedMessage(
                Destination.to_user(user_id), [item],
                (lambda uid=user_id: (uid,))))
        return plans

    # -- helpers ------------------------------------------------------------------

    @staticmethod
    def _mark_path(node, dirty: Set[int],
                   dirty_nodes: Dict[int, object]) -> None:
        while node is not None and node.node_id not in dirty:
            dirty.add(node.node_id)
            dirty_nodes[node.node_id] = node
            node = node.parent
        # (A previously marked ancestor implies the rest of the path is
        # already marked.)

    def _compact(self, dirty: Set[int],
                 dirty_nodes: Dict[int, object]) -> None:
        """Remove childless interiors; splice single-child interiors."""
        changed = True
        while changed:
            changed = False
            for node in list(dirty_nodes.values()):
                # node_id is read up front: once a slot-backed handle is
                # dropped or spliced its storage may be recycled.
                node_id = node.node_id
                if node_id not in dirty_nodes or node.is_leaf:
                    continue
                if node == self.tree.root:
                    if len(node.children) == 0 and self.tree.n_users == 0:
                        self.tree.clear_root()
                        dirty_nodes.clear()
                        dirty.clear()
                        return
                    continue
                if len(node.children) == 0:
                    self.tree.drop_childless(node)
                    del dirty_nodes[node_id]
                    dirty.discard(node_id)
                    changed = True
                elif len(node.children) == 1:
                    self.tree.splice_out(node)
                    del dirty_nodes[node_id]
                    dirty.discard(node_id)
                    changed = True

    def _dirty_top_down(self, dirty_nodes: Dict[int, object]) -> List[object]:
        ordered = []
        if self.tree.root is None:
            return ordered
        stack = [self.tree.root]
        while stack:
            node = stack.pop()
            if node.node_id in dirty_nodes and not node.is_leaf:
                ordered.append(node)
            stack.extend(node.children)
        return ordered

    def _individual_cost_estimate(self, n_joins: int, n_leaves: int) -> int:
        """Per-request group-oriented cost for the same request counts."""
        import math
        n = max(self.tree.n_users, 2)
        d = self.tree.degree
        height = math.ceil(math.log(n, d)) + 1
        return n_joins * 2 * (height - 1) + n_leaves * d * (height - 1)

    # -- recovery ----------------------------------------------------------

    def resync(self, user_id: str) -> OutboundMessage:
        """Serve one resync reply against the flushed tree state.

        The batch tree's leaf keys *are* the members' individual keys,
        so the reply shape matches the immediate server's exactly.
        """
        if not self.is_member(user_id):
            self._m_resyncs.inc(status="not-member")
            return build_resync_reply(
                self.suite, self._signer, self.pipeline.sequencer,
                group_id=1, user_id=user_id,
                status=RESYNC_NOT_MEMBER, leaf_node_id=0)
        leaf = self.tree.leaf_of(user_id)
        records = [KeyRecord(node.node_id, node.version, node.key)
                   for node in leaf.path_to_root()[1:]]
        self._m_resyncs.inc(status="ok")
        return build_resync_reply(
            self.suite, self._signer, self.pipeline.sequencer,
            group_id=1, user_id=user_id,
            status=RESYNC_OK, leaf_node_id=leaf.node_id,
            records=records, root_ref=self.group_key_ref(),
            individual_key=leaf.key, iv=self.resync_material.new_iv())

    def seal_group_message(self, payload: bytes) -> OutboundMessage:
        """Encrypt application data under the current group key."""
        import time
        from ..crypto import modes
        root_id, root_version = self.group_key_ref()
        iv = self.resync_material.new_iv()
        block = self.suite.block_size
        padded_len = -(-max(len(payload), 1) // block) * block
        padded = payload.ljust(padded_len, b"\x00")
        cipher = self.suite.new_cipher(self.group_key())
        ciphertext = modes.cbc_encrypt_nopad(cipher, padded, iv)
        item = EncryptedItem(root_id, root_version, iv, ciphertext,
                             len(payload))
        message = Message(msg_type=MSG_DATA, group_id=1,
                          seq=self.pipeline.sequencer.next(),
                          timestamp_us=time.time_ns() // 1000,
                          root_node_id=root_id, root_version=root_version,
                          items=[item])
        self._signer.seal([message])
        return OutboundMessage(Destination.to_all(), message,
                               tuple(self.tree.users()), message.encode())

    def subcast(self, targets, payload: bytes) -> OutboundMessage:
        """Seal ``payload`` to exactly ``targets`` via a key cover.

        Targets must be in the *flushed* tree — a user whose join is
        still queued holds no tree keys yet and cannot be addressed
        until the next flush.
        """
        from ..keygraph.covering import tree_subset_cover
        target_list = sorted(set(targets))
        if not target_list:
            raise BatchError("subcast needs at least one target")
        for user_id in target_list:
            if not self.tree.has_user(user_id):
                raise BatchError(
                    f"subcast target {user_id!r} is not a flushed member")
        with self.instrumentation.tracer.span(
                "subcast.cover", targets=len(target_list)) as span:
            cover_nodes = tree_subset_cover(self.tree, target_list)
            span.set("cover", len(cover_nodes))
        cover = [(node.node_id, node.version, node.key)
                 for node in cover_nodes]
        with self.instrumentation.tracer.span("subcast.seal",
                                              cover=len(cover)):
            out = self.subcast_sealer.seal(
                cover, payload, receivers=target_list,
                root_ref=self.group_key_ref())
        self._m_subcasts.inc()
        return out

"""Reliable delivery over a lossy transport.

The paper assumes "a reliable message delivery system, for both unicast
and multicast".  This layer provides it over the simulated lossy bus:
every (message, receiver) copy is retried until delivered or until
``max_attempts``; receivers deduplicate by envelope sequence number so a
retransmitted copy that raced a late original is processed once.

The envelope is 12 bytes — sequence number (8) and attempt counter (4) —
prepended to the payload.
"""

from __future__ import annotations

import struct
from typing import Callable, Dict, Set

from ..core.messages import OutboundMessage
from .base import Transport
from .inmemory import InMemoryNetwork

_ENVELOPE = struct.Struct(">QI")


class DeliveryFailure(RuntimeError):
    """Raised when a copy cannot be delivered within ``max_attempts``."""


class ReliableDelivery(Transport):
    """Ack/retransmit wrapper around an :class:`InMemoryNetwork`."""

    def __init__(self, network: InMemoryNetwork, max_attempts: int = 16,
                 registry=None):
        super().__init__(registry)
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self._network = network
        self._max_attempts = max_attempts
        self._seq = 0
        self._seen: Dict[str, Set[int]] = {}

    def attach(self, user_id: str, handler: Callable[[bytes], None]) -> None:
        """Register a receiver behind the dedup layer."""
        self._seen[user_id] = set()

        def deduplicating_handler(enveloped: bytes) -> None:
            seq, _attempt = _ENVELOPE.unpack_from(enveloped, 0)
            if seq in self._seen[user_id]:
                return  # duplicate of an already-processed copy
            self._seen[user_id].add(seq)
            handler(enveloped[_ENVELOPE.size:])

        self._network.attach(user_id, deduplicating_handler)

    def detach(self, user_id: str) -> None:
        """Remove a receiver and its dedup state."""
        self._network.detach(user_id)
        self._seen.pop(user_id, None)

    def send(self, outbound: OutboundMessage) -> None:
        """Deliver every copy, retrying lost ones."""
        payload = outbound.encoded or outbound.message.encode()
        self._seq += 1
        seq = self._seq
        self.stats.bytes_sent += len(payload)
        for user_id in outbound.receivers:
            self._send_copy(user_id, seq, payload)

    def _send_copy(self, user_id: str, seq: int, payload: bytes) -> None:
        for attempt in range(self._max_attempts):
            enveloped = _ENVELOPE.pack(seq, attempt) + payload
            if attempt:
                self.stats.retransmissions += 1
                self._network.stats.retransmissions += 1
            if self._network.deliver_to(user_id, enveloped):
                self.stats.deliveries += 1
                self.stats.bytes_delivered += len(payload)
                return
        raise DeliveryFailure(
            f"copy of seq {seq} to {user_id!r} lost "
            f"{self._max_attempts} times")

"""Reliable delivery over a lossy transport.

The paper assumes "a reliable message delivery system, for both unicast
and multicast".  This layer provides it over the simulated lossy bus:
every (message, receiver) copy is retried until delivered or until
``max_attempts``; receivers deduplicate by envelope sequence number so a
retransmitted copy that raced a late original is processed once.

The envelope is 12 bytes — sequence number (8) and attempt counter (4) —
prepended to the payload.

Deduplication state is a **bounded sliding window** per receiver (not an
ever-growing set): sequence numbers at or below ``max_seen - window`` are
treated as duplicates outright — by then any legitimate original or
retransmission has long been superseded — so memory stays O(window) per
receiver over an unbounded workload.

The underlying transport only needs ``attach``/``detach``/``deliver_to``
(duck-typed), so a :class:`~repro.chaos.faults.ChaosTransport` can sit
between this layer and the raw bus.
"""

from __future__ import annotations

import struct
from typing import Callable, Dict

from ..core.messages import OutboundMessage
from .base import Transport

_ENVELOPE = struct.Struct(">QI")

#: Default dedup window width (sequence numbers remembered per receiver).
DEFAULT_DEDUP_WINDOW = 1024


class DeliveryFailure(RuntimeError):
    """Raised when a copy cannot be delivered within ``max_attempts``."""


class _DedupWindow:
    """Sliding-window duplicate detector over 64-bit sequence numbers.

    Remembers at most ~2x ``window`` recent sequence numbers; anything
    older than ``max_seen - window`` is reported as a duplicate without
    being stored.  ``seen()`` both tests and records.
    """

    __slots__ = ("window", "max_seen", "_recent")

    def __init__(self, window: int = DEFAULT_DEDUP_WINDOW):
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window
        self.max_seen = 0
        self._recent: set = set()

    def __len__(self) -> int:
        return len(self._recent)

    def seen(self, seq: int) -> bool:
        """True iff ``seq`` was already processed (or fell off the window)."""
        if seq <= self.max_seen - self.window:
            return True  # beyond the horizon: stale by construction
        if seq in self._recent:
            return True
        self._recent.add(seq)
        if seq > self.max_seen:
            self.max_seen = seq
            # Amortized prune: drop everything past the horizon once the
            # set grows to twice the window.
            if len(self._recent) > 2 * self.window:
                horizon = self.max_seen - self.window
                self._recent = {s for s in self._recent if s > horizon}
        return False


class ReliableDelivery(Transport):
    """Ack/retransmit wrapper around an in-memory style transport."""

    def __init__(self, network, max_attempts: int = 16,
                 dedup_window: int = DEFAULT_DEDUP_WINDOW, registry=None):
        super().__init__(registry)
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self._network = network
        self._max_attempts = max_attempts
        self._dedup_window = dedup_window
        self._seq = 0
        self._seen: Dict[str, _DedupWindow] = {}

    def attach(self, user_id: str, handler: Callable[[bytes], None]) -> None:
        """Register a receiver behind the dedup layer."""
        self._seen[user_id] = _DedupWindow(self._dedup_window)

        def deduplicating_handler(enveloped: bytes) -> None:
            seq, _attempt = _ENVELOPE.unpack_from(enveloped, 0)
            if self._seen[user_id].seen(seq):
                return  # duplicate of an already-processed copy
            handler(enveloped[_ENVELOPE.size:])

        self._network.attach(user_id, deduplicating_handler)

    def detach(self, user_id: str) -> None:
        """Remove a receiver and its dedup state."""
        self._network.detach(user_id)
        self._seen.pop(user_id, None)

    def send(self, outbound: OutboundMessage) -> None:
        """Deliver every copy, retrying lost ones."""
        payload = outbound.encoded or outbound.message.encode()
        self._seq += 1
        seq = self._seq
        self.stats.bytes_sent += len(payload)
        for user_id in outbound.receivers:
            self._send_copy(user_id, seq, payload)

    def _send_copy(self, user_id: str, seq: int, payload: bytes) -> None:
        for attempt in range(self._max_attempts):
            enveloped = _ENVELOPE.pack(seq, attempt) + payload
            if attempt:
                self.stats.retransmissions += 1
                self._network.stats.retransmissions += 1
            if self._network.deliver_to(user_id, enveloped):
                self.stats.deliveries += 1
                self.stats.bytes_delivered += len(payload)
                return
        raise DeliveryFailure(
            f"copy of seq {seq} to {user_id!r} lost "
            f"{self._max_attempts} times")

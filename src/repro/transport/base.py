"""Transport abstractions.

The paper's prototype sends join/leave/rekey messages as UDP datagrams
between a server and a client-simulator, with rekey messages going out
via group or subgroup multicast.  This package models that as:

* :class:`Transport` — the interface: deliver an
  :class:`~repro.core.messages.OutboundMessage` to its receivers;
* :mod:`repro.transport.inmemory` — deterministic in-process bus with
  byte accounting and loss injection (default for experiments);
* :mod:`repro.transport.reliable` — ack/retransmit reliable delivery on
  top of a lossy transport (the paper assumes "a reliable message
  delivery system, for both unicast and multicast");
* :mod:`repro.transport.udp` — real loopback UDP sockets.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..core.messages import OutboundMessage


@dataclass
class TransportStats:
    """Byte/message accounting for one transport."""

    unicast_sends: int = 0
    multicast_sends: int = 0
    bytes_sent: int = 0
    deliveries: int = 0
    bytes_delivered: int = 0
    drops: int = 0
    retransmissions: int = 0


class Transport(ABC):
    """Delivers outbound messages to named receivers."""

    def __init__(self):
        self.stats = TransportStats()

    @abstractmethod
    def attach(self, user_id: str, handler: Callable[[bytes], None]) -> None:
        """Register a receiver handler for ``user_id``."""

    @abstractmethod
    def detach(self, user_id: str) -> None:
        """Remove a receiver."""

    @abstractmethod
    def send(self, outbound: OutboundMessage) -> None:
        """Deliver ``outbound`` to each of its receivers."""

    def send_all(self, messages: List[OutboundMessage]) -> None:
        """Send a batch of outbound messages."""
        for message in messages:
            self.send(message)

"""Transport abstractions.

The paper's prototype sends join/leave/rekey messages as UDP datagrams
between a server and a client-simulator, with rekey messages going out
via group or subgroup multicast.  This package models that as:

* :class:`Transport` — the interface: deliver an
  :class:`~repro.core.messages.OutboundMessage` to its receivers;
* :mod:`repro.transport.inmemory` — deterministic in-process bus with
  byte accounting and loss injection (default for experiments);
* :mod:`repro.transport.reliable` — ack/retransmit reliable delivery on
  top of a lossy transport (the paper assumes "a reliable message
  delivery system, for both unicast and multicast");
* :mod:`repro.transport.udp` — real loopback UDP sockets.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..core.messages import OutboundMessage
from ..observability.metrics import NULL_REGISTRY, MetricRegistry


@dataclass
class TransportStats:
    """Byte/message accounting for one transport."""

    unicast_sends: int = 0
    multicast_sends: int = 0
    bytes_sent: int = 0
    deliveries: int = 0
    bytes_delivered: int = 0
    drops: int = 0
    retransmissions: int = 0


class Transport(ABC):
    """Delivers outbound messages to named receivers.

    Pass a :class:`~repro.observability.metrics.MetricRegistry` to
    publish ``transport_*`` series; subclasses keep updating the plain
    :class:`TransportStats` counters on the send path, and a
    snapshot-time collector folds the deltas into the registry (same
    deferred pattern as the key-schedule cache, so the per-datagram
    path stays registry-free).
    """

    def __init__(self, registry: Optional[MetricRegistry] = None):
        self.stats = TransportStats()
        self.registry = registry if registry is not None else NULL_REGISTRY
        transport = type(self).__name__
        sends = self.registry.counter(
            "transport_sends_total", "Transport sends by mode.",
            labels=("transport", "mode"))
        traffic = self.registry.counter(
            "transport_bytes_total", "Transport bytes by direction.",
            labels=("transport", "direction"))
        self._stat_series = (
            ("unicast_sends", sends.labels(transport=transport,
                                           mode="unicast")),
            ("multicast_sends", sends.labels(transport=transport,
                                             mode="multicast")),
            ("bytes_sent", traffic.labels(transport=transport,
                                          direction="sent")),
            ("bytes_delivered", traffic.labels(transport=transport,
                                               direction="delivered")),
            ("deliveries", self.registry.counter(
                "transport_deliveries_total", "Copies delivered.",
                labels=("transport",)).labels(transport=transport)),
            ("drops", self.registry.counter(
                "transport_drops_total", "Copies lost in transit.",
                labels=("transport",)).labels(transport=transport)),
            ("retransmissions", self.registry.counter(
                "transport_retransmissions_total", "Copies resent.",
                labels=("transport",)).labels(transport=transport)),
        )
        self._published_stats = TransportStats()
        self.registry.add_collector(self._collect_stats)

    def _collect_stats(self, registry: MetricRegistry) -> None:
        """Fold :class:`TransportStats` deltas into the registry."""
        for attr, series in self._stat_series:
            delta = getattr(self.stats, attr) \
                - getattr(self._published_stats, attr)
            if delta:
                series.inc(delta)
                setattr(self._published_stats, attr,
                        getattr(self.stats, attr))

    @abstractmethod
    def attach(self, user_id: str, handler: Callable[[bytes], None]) -> None:
        """Register a receiver handler for ``user_id``."""

    @abstractmethod
    def detach(self, user_id: str) -> None:
        """Remove a receiver."""

    @abstractmethod
    def send(self, outbound: OutboundMessage) -> None:
        """Deliver ``outbound`` to each of its receivers."""

    def send_all(self, messages: List[OutboundMessage]) -> None:
        """Send a batch of outbound messages."""
        for message in messages:
            self.send(message)

"""Forward error correction for rekey multicast.

The paper assumes "a reliable message delivery system, for both unicast
and multicast".  Ack/retransmit (``repro.transport.reliable``) provides
that for unicast, but for a rekey multicast to 8192 receivers an ack
implosion is exactly the scalability problem the key tree solved on the
crypto side.  The authors' follow-up system (Keystone, ref [12]) solves
it with *forward error correction*: the server sends the rekey payload
as ``k`` data packets plus ``r`` parity packets, and any ``k`` of the
``k + r`` packets reconstruct the payload — no acks, no retransmission,
loss tolerance r/(k+r).

This module implements a systematic Reed-Solomon erasure code over
GF(256) (Vandermonde matrix construction, Gaussian-elimination decode)
and the packetization layer on top.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional, Sequence, Tuple

# -- GF(256) arithmetic (polynomial 0x11B, generator 3) ----------------------------

_EXP = [0] * 512
_LOG = [0] * 256


def _build_tables() -> None:
    value = 1
    for i in range(255):
        _EXP[i] = value
        _LOG[value] = i
        # Multiply by the generator 3 (x + 1); note 2 is NOT a generator
        # of GF(256) with the 0x11B polynomial.
        doubled = value << 1
        if doubled & 0x100:
            doubled ^= 0x11B
        value = doubled ^ value
    for i in range(255, 512):
        _EXP[i] = _EXP[i - 255]


_build_tables()


def gf_mul(a: int, b: int) -> int:
    """Multiply in GF(256)."""
    if a == 0 or b == 0:
        return 0
    return _EXP[_LOG[a] + _LOG[b]]


def gf_inv(a: int) -> int:
    """Multiplicative inverse in GF(256)."""
    if a == 0:
        raise ZeroDivisionError("0 has no inverse in GF(256)")
    return _EXP[255 - _LOG[a]]


def _mul_row(row: Sequence[int], data_blocks: Sequence[bytes],
             block_size: int) -> bytes:
    """Linear combination of blocks with row coefficients."""
    out = bytearray(block_size)
    for coefficient, block in zip(row, data_blocks):
        if coefficient == 0:
            continue
        if coefficient == 1:
            for i in range(block_size):
                out[i] ^= block[i]
        else:
            log_c = _LOG[coefficient]
            exp = _EXP
            log = _LOG
            for i in range(block_size):
                b = block[i]
                if b:
                    out[i] ^= exp[log_c + log[b]]
    return bytes(out)


class FecError(ValueError):
    """Raised on invalid FEC parameters or unrecoverable loss."""


class ReedSolomonCode:
    """Systematic (k data, r parity) MDS erasure code.

    Encoding rows: identity for the k data blocks, then a *Cauchy* block
    ``row_j[i] = 1 / (x_j + y_i)`` with disjoint ``x``/``y`` supports.
    Every square submatrix of a Cauchy matrix is invertible, so — unlike
    the naive identity-plus-Vandermonde construction, which has singular
    k x k submatrices — any k of the k+r rows reconstruct the data.
    """

    def __init__(self, k: int, r: int):
        if k < 1 or r < 0 or k + r > 255:
            raise FecError("need 1 <= k, 0 <= r, k + r <= 255")
        self.k = k
        self.r = r
        # Cauchy parity rows: y_i = i for data, x_j = k + j for parity;
        # the supports are disjoint so x_j ^ y_i is never zero.
        self._parity_rows = [
            [gf_inv((k + j) ^ i) for i in range(k)]
            for j in range(r)
        ]

    def encode(self, data_blocks: Sequence[bytes]) -> List[bytes]:
        """Return the r parity blocks for ``k`` equal-size data blocks."""
        if len(data_blocks) != self.k:
            raise FecError(f"expected {self.k} data blocks")
        sizes = {len(block) for block in data_blocks}
        if len(sizes) != 1:
            raise FecError("data blocks must have equal size")
        block_size = sizes.pop()
        return [_mul_row(row, data_blocks, block_size)
                for row in self._parity_rows]

    def _row_for(self, index: int) -> List[int]:
        if index < self.k:
            row = [0] * self.k
            row[index] = 1
            return row
        return list(self._parity_rows[index - self.k])

    def decode(self, received: Dict[int, bytes]) -> List[bytes]:
        """Reconstruct the k data blocks from any k received indices.

        ``received`` maps packet index (0..k+r-1) to its block.  Raises
        :class:`FecError` when fewer than k blocks are available.
        """
        if len(received) < self.k:
            raise FecError(
                f"need {self.k} blocks to reconstruct, have {len(received)}")
        indices = sorted(received)[:self.k]
        sizes = {len(received[i]) for i in indices}
        if len(sizes) != 1:
            raise FecError("received blocks must have equal size")
        block_size = sizes.pop()
        # Solve M * data = received over GF(256) by Gauss-Jordan.
        matrix = [self._row_for(i) for i in indices]
        blocks = [bytearray(received[i]) for i in indices]
        for column in range(self.k):
            # Find pivot.
            pivot = next((row for row in range(column, self.k)
                          if matrix[row][column]), None)
            if pivot is None:
                raise FecError("singular decode matrix")  # pragma: no cover
            if pivot != column:
                matrix[column], matrix[pivot] = matrix[pivot], matrix[column]
                blocks[column], blocks[pivot] = blocks[pivot], blocks[column]
            # Normalize the pivot row.
            inverse = gf_inv(matrix[column][column])
            if inverse != 1:
                matrix[column] = [gf_mul(value, inverse)
                                  for value in matrix[column]]
                blocks[column] = bytearray(
                    _mul_row([inverse], [bytes(blocks[column])], block_size))
            # Eliminate the column elsewhere.
            for row in range(self.k):
                if row == column or not matrix[row][column]:
                    continue
                factor = matrix[row][column]
                matrix[row] = [value ^ gf_mul(factor, matrix[column][i])
                               for i, value in enumerate(matrix[row])]
                scaled = _mul_row([factor], [bytes(blocks[column])],
                                  block_size)
                blocks[row] = bytearray(
                    x ^ y for x, y in zip(blocks[row], scaled))
        return [bytes(block) for block in blocks]


# -- packetization -----------------------------------------------------------------

_PACKET_HEADER = struct.Struct(">HBBI")  # magic, index, k+r, payload len

_FEC_MAGIC = 0xFEC5


def encode_packets(payload: bytes, k: int, r: int) -> List[bytes]:
    """Split ``payload`` into k data + r parity packets.

    Each packet is self-describing: index, total packet count and the
    original payload length travel in a small header.
    """
    if k < 1:
        raise FecError("k must be >= 1")
    block_size = max(1, -(-len(payload) // k))
    padded = payload.ljust(block_size * k, b"\x00")
    data_blocks = [padded[i * block_size:(i + 1) * block_size]
                   for i in range(k)]
    code = ReedSolomonCode(k, r)
    blocks = data_blocks + code.encode(data_blocks)
    packets = []
    for index, block in enumerate(blocks):
        header = _PACKET_HEADER.pack(_FEC_MAGIC, index, k + r, len(payload))
        packets.append(header + block)
    return packets


def decode_packets(packets: Sequence[bytes], k: int) -> bytes:
    """Reassemble the payload from any >= k received packets."""
    received: Dict[int, bytes] = {}
    payload_len: Optional[int] = None
    total: Optional[int] = None
    for packet in packets:
        if len(packet) < _PACKET_HEADER.size:
            raise FecError("packet too short")
        magic, index, packet_total, length = _PACKET_HEADER.unpack_from(
            packet, 0)
        if magic != _FEC_MAGIC:
            raise FecError("bad FEC packet magic")
        if payload_len is None:
            payload_len, total = length, packet_total
        elif (payload_len, total) != (length, packet_total):
            raise FecError("inconsistent packet headers")
        received[index] = packet[_PACKET_HEADER.size:]
    if total is None or payload_len is None:
        raise FecError("no packets received")
    code = ReedSolomonCode(k, total - k)
    data_blocks = code.decode(received)
    return b"".join(data_blocks)[:payload_len]

"""Transports: in-memory bus, reliable delivery, FEC multicast, UDP."""

from .addressing import (AddressedTransport, AddressingStats,
                         MulticastAddressPool)
from .base import Transport, TransportStats
from .fec import FecError, ReedSolomonCode, decode_packets, encode_packets
from .fecmulticast import FecMulticast
from .inmemory import InMemoryNetwork, UnknownReceiverError
from .reliable import DeliveryFailure, ReliableDelivery
from .udp import UdpGroupMember, UdpKeyServer, UdpTransportError

__all__ = [
    "Transport", "TransportStats",
    "AddressedTransport", "AddressingStats", "MulticastAddressPool",
    "InMemoryNetwork", "UnknownReceiverError",
    "ReliableDelivery", "DeliveryFailure",
    "FecMulticast", "FecError", "ReedSolomonCode",
    "encode_packets", "decode_packets",
    "UdpKeyServer", "UdpGroupMember", "UdpTransportError",
]

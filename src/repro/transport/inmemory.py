"""Deterministic in-process message bus.

One multicast send counts once on the sender side (the paper's server
sends each rekey message exactly once, via group or subgroup multicast)
but is delivered to every receiver; per-receiver byte accounting feeds
the client-side tables (Table 6).

Loss injection (``drop_rate``) drops individual *deliveries* (as real
multicast does — different receivers can lose different copies), driven
by a seeded DRBG so experiments stay reproducible.  Pair with
:mod:`repro.transport.reliable` for guaranteed delivery over a lossy bus.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..core.messages import DEST_USER, OutboundMessage
from ..crypto import drbg
from .base import Transport, TransportStats


class UnknownReceiverError(KeyError):
    """Raised when a message targets a user with no attached handler."""


class InMemoryNetwork(Transport):
    """Synchronous in-process transport."""

    def __init__(self, drop_rate: float = 0.0, seed: Optional[bytes] = None,
                 strict: bool = True, registry=None):
        super().__init__(registry)
        if not 0.0 <= drop_rate < 1.0:
            raise ValueError("drop_rate must be in [0, 1)")
        self._handlers: Dict[str, Callable[[bytes], None]] = {}
        self._drop_rate = drop_rate
        self._random = drbg.make_source(seed or b"inmemory-network")
        self._strict = strict
        # Messages to users with no handler (when strict=False).
        self.undeliverable: int = 0

    def attach(self, user_id: str, handler: Callable[[bytes], None]) -> None:
        """Register a receiver handler."""
        self._handlers[user_id] = handler

    def detach(self, user_id: str) -> None:
        """Remove a receiver handler."""
        self._handlers.pop(user_id, None)

    def _should_drop(self) -> bool:
        if not self._drop_rate:
            return False
        # 20-bit fixed point comparison keeps the DRBG draw cheap.
        threshold = int(self._drop_rate * (1 << 20))
        return self._random.randint_below(1 << 20) < threshold

    def send(self, outbound: OutboundMessage) -> None:
        """Deliver to every receiver (loss applied per copy)."""
        payload = outbound.encoded or outbound.message.encode()
        self.stats.bytes_sent += len(payload)
        if outbound.destination.kind == DEST_USER:
            self.stats.unicast_sends += 1
            for user_id in outbound.receivers:
                self.deliver_to(user_id, payload)
            return
        self.stats.multicast_sends += 1
        # A multicast racing a just-detached member must not abort the
        # fan-out: that copy is undeliverable, the rest still go out.
        for user_id in outbound.receivers:
            try:
                self.deliver_to(user_id, payload)
            except UnknownReceiverError:
                self.undeliverable += 1

    def deliver_to(self, user_id: str, payload: bytes) -> bool:
        """Deliver one copy; returns False if dropped or unaddressable."""
        handler = self._handlers.get(user_id)
        if handler is None:
            if self._strict:
                raise UnknownReceiverError(user_id)
            self.undeliverable += 1
            return False
        if self._should_drop():
            self.stats.drops += 1
            return False
        handler(payload)
        self.stats.deliveries += 1
        self.stats.bytes_delivered += len(payload)
        return True

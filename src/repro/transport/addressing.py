"""Multicast address allocation (paper §7).

Subgroup multicast needs addresses: "It is possible to support subgroup
multicast ... by allocating a large number of multicast addresses, one
for each subgroup that share a key in the key tree being used.  A more
practical approach, however, is to allocate just a small number of
multicast addresses (e.g., one for each child of the key tree's root
node)".

:class:`MulticastAddressPool` models that constraint: a bounded pool of
multicast addresses assigned on demand to subgroup destinations.  A
message to a subgroup with no address (pool exhausted) degrades to
per-member unicast.  Wrapping a transport with
:class:`AddressedTransport` therefore measures, per rekeying strategy,

* how many distinct multicast addresses the strategy actually needs,
* how many message copies the network carries once the pool is bounded

— the §7 numbers behind the hybrid strategy's design.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Set

from ..core.messages import DEST_ALL, DEST_SUBGROUP, OutboundMessage
from .base import Transport


@dataclass
class AddressingStats:
    """What the bounded address pool did."""

    multicast_sends: int = 0       # sent on a (sub)group address
    unicast_fallbacks: int = 0     # messages degraded to unicast
    copies_sent: int = 0           # total point-to-point copies carried
    addresses_requested: int = 0   # distinct subgroups that wanted one
    addresses_assigned: int = 0


class MulticastAddressPool:
    """A bounded pool of multicast addresses, assigned on demand.

    The group address (DEST_ALL) is always available and does not count
    against the pool, matching the paper's setting where the group
    address exists and only *subgroup* addresses are scarce.
    """

    def __init__(self, limit: int):
        if limit < 0:
            raise ValueError("limit must be >= 0")
        self.limit = limit
        self._assigned: Dict[int, int] = {}  # subgroup node id -> address
        self._requested: Set[int] = set()

    def address_for(self, node_id: int) -> Optional[int]:
        """The subgroup's address, newly assigned if the pool allows."""
        self._requested.add(node_id)
        if node_id in self._assigned:
            return self._assigned[node_id]
        if len(self._assigned) < self.limit:
            address = len(self._assigned) + 1
            self._assigned[node_id] = address
            return address
        return None

    def release(self, node_id: int) -> None:
        """Return a subgroup's address to the pool (e.g. node spliced)."""
        self._assigned.pop(node_id, None)

    @property
    def assigned(self) -> int:
        """Addresses currently assigned."""
        return len(self._assigned)

    @property
    def requested(self) -> int:
        """Distinct subgroups that ever asked for an address."""
        return len(self._requested)


class AddressedTransport(Transport):
    """Delivers through a wrapped transport under address scarcity."""

    def __init__(self, inner: Transport, pool: MulticastAddressPool):
        super().__init__()
        self._inner = inner
        self.pool = pool
        self.addressing = AddressingStats()

    def attach(self, user_id: str, handler: Callable[[bytes], None]) -> None:
        """Register a receiver on the wrapped transport."""
        self._inner.attach(user_id, handler)

    def detach(self, user_id: str) -> None:
        """Remove a receiver from the wrapped transport."""
        self._inner.detach(user_id)

    def send(self, outbound: OutboundMessage) -> None:
        """Deliver, accounting multicast-address use and fallbacks."""
        destination = outbound.destination
        n_receivers = len(outbound.receivers)
        if destination.kind == DEST_ALL:
            # The group address always exists: one network send.
            self.addressing.multicast_sends += 1
            self.addressing.copies_sent += 1
        elif destination.kind == DEST_SUBGROUP:
            self.addressing.addresses_requested = self.pool.requested + 1
            address = self.pool.address_for(destination.node_id)
            self.addressing.addresses_requested = self.pool.requested
            self.addressing.addresses_assigned = self.pool.assigned
            if address is not None:
                self.addressing.multicast_sends += 1
                self.addressing.copies_sent += 1
            else:
                # Pool exhausted: per-member unicast.
                self.addressing.unicast_fallbacks += 1
                self.addressing.copies_sent += n_receivers
        else:
            # Plain unicast destinations.
            self.addressing.copies_sent += n_receivers
        self._inner.send(outbound)

"""FEC-protected multicast transport.

Wraps an :class:`~repro.transport.inmemory.InMemoryNetwork`: every
message is sent as ``k`` data + ``r`` parity datagrams, each subject to
independent loss; a receiver that collects any ``k`` of them
reconstructs the message with no acks and no retransmission (Keystone's
approach to reliable rekey delivery).

Compare with :class:`~repro.transport.reliable.ReliableDelivery`:
retransmission costs round trips per lost copy but adapts to actual
loss; FEC costs a fixed r/k bandwidth overhead and recovers instantly —
the trade the FEC ablation benchmark quantifies.
"""

from __future__ import annotations

import struct
from typing import Callable, Dict, List, Tuple

from ..core.messages import OutboundMessage
from .base import Transport
from .fec import FecError, decode_packets, encode_packets
from .inmemory import InMemoryNetwork

_ENVELOPE = struct.Struct(">QB")  # message seq, k


class FecMulticast(Transport):
    """Loss-tolerant multicast via Reed-Solomon parity packets."""

    def __init__(self, network: InMemoryNetwork, k: int = 4, r: int = 2,
                 registry=None):
        super().__init__(registry)
        if k < 1 or r < 0:
            raise ValueError("need k >= 1 and r >= 0")
        self._network = network
        self._k = k
        self._r = r
        self._seq = 0
        # Successfully reconstructed / unrecoverable message copies.
        self.recovered_with_parity = 0
        self.unrecoverable = 0
        self._m_recovered = self.registry.counter(
            "fec_recovered_total",
            "Messages reconstructed from a parity packet.").labels()
        self._m_unrecoverable = self.registry.counter(
            "fec_unrecoverable_total",
            "Message copies lost beyond parity protection.").labels()
        self._published_fec = [0, 0]
        self.registry.add_collector(self._collect_fec)

    def _collect_fec(self, registry) -> None:
        for index, (attr, series) in enumerate((
                ("recovered_with_parity", self._m_recovered),
                ("unrecoverable", self._m_unrecoverable))):
            delta = getattr(self, attr) - self._published_fec[index]
            if delta:
                series.inc(delta)
                self._published_fec[index] += delta

    def attach(self, user_id: str, handler: Callable[[bytes], None]) -> None:
        """Register a receiver with per-message reassembly state."""
        pending: Dict[int, List[bytes]] = {}
        done = set()

        def packet_handler(datagram: bytes) -> None:
            seq, k = _ENVELOPE.unpack_from(datagram, 0)
            if seq in done:
                return  # extra parity after reconstruction
            packets = pending.setdefault(seq, [])
            packets.append(datagram[_ENVELOPE.size:])
            if len(packets) >= k:
                # Enough to attempt reconstruction; on success deliver
                # exactly once and drop the bookkeeping.
                try:
                    payload = decode_packets(packets, k)
                except FecError:
                    return  # wait for more packets
                del pending[seq]
                done.add(seq)
                handler(payload)

        self._network.attach(user_id, packet_handler)

    def detach(self, user_id: str) -> None:
        """Remove a receiver."""
        self._network.detach(user_id)

    def send(self, outbound: OutboundMessage) -> None:
        """Encode into k+r packets and deliver each independently."""
        payload = outbound.encoded or outbound.message.encode()
        self._seq += 1
        packets = encode_packets(payload, self._k, self._r)
        self.stats.multicast_sends += 1
        self.stats.bytes_sent += sum(len(p) for p in packets)
        for user_id in outbound.receivers:
            delivered = 0
            for packet in packets:
                envelope = _ENVELOPE.pack(self._seq, self._k) + packet
                if self._network.deliver_to(user_id, envelope):
                    delivered += 1
            if delivered >= self._k:
                self.stats.deliveries += 1
                self.stats.bytes_delivered += len(payload)
                if delivered < len(packets):
                    self.recovered_with_parity += 1
            else:
                self.unrecoverable += 1

    @property
    def overhead(self) -> float:
        """Fixed bandwidth overhead of the parity packets."""
        return self._r / self._k

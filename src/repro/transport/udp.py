"""Loopback UDP transport: the paper's deployment shape over real sockets.

The prototype in the paper ran the key server on one machine and a
client-simulator on another, exchanging join/leave/rekey messages as UDP
datagrams.  Here both ends live on 127.0.0.1:

* :class:`UdpKeyServer` — binds a socket, serves join/leave requests in
  a background thread by delegating to a
  :class:`~repro.core.server.GroupKeyServer`, and "multicasts" rekey
  messages by fanning datagrams out to each receiver's registered
  address (subgroup multicast emulation; the paper's experiments also
  sent each rekey message once per destination subgroup).
* :class:`UdpGroupMember` — one socket per client; sends requests,
  receives acks and rekey messages, feeds a
  :class:`~repro.core.client.GroupClient`.

Datagrams are single UDP packets; rekey messages are well under the
loopback MTU for any realistic tree height.

Telemetry rides out of band: when the server's tracer is enabled, each
datagram carries a 20-byte trace trailer *after* the encoded message
(``Message.decode`` ignores trailing bytes, so the wire payload proper
is unchanged), letting a member correlate the rekey messages it
received with the server-side request span.  A ``MSG_STATS_REQUEST``
datagram returns the server's live ``repro-metrics/1`` snapshot —
:func:`scrape_stats` is the client side, and
``python -m repro.observability report --scrape HOST:PORT`` renders it.
"""

from __future__ import annotations

import json
import socket
import threading
from typing import Dict, List, Optional, Tuple

from ..core.client import GroupClient
from ..core.messages import (MSG_JOIN_ACK, MSG_JOIN_DENIED, MSG_JOIN_REQUEST,
                             MSG_LEAVE_ACK, MSG_LEAVE_DENIED,
                             MSG_LEAVE_REQUEST, MSG_REKEY, MSG_STATS_REQUEST,
                             MSG_STATS_RESPONSE, Message, OutboundMessage)
from ..core.server import GroupKeyServer
from ..observability.export import build_snapshot, validate_snapshot
from ..observability.spans import (SpanContext, attach_trace_trailer,
                                   split_trace_trailer)

_BUFFER = 65535


class UdpTransportError(RuntimeError):
    """Raised on socket-level protocol failures."""


class UdpKeyServer:
    """Serves a :class:`GroupKeyServer` over a loopback UDP socket."""

    def __init__(self, server: GroupKeyServer, host: str = "127.0.0.1",
                 port: int = 0):
        self.server = server
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        self._sock.bind((host, port))
        self._sock.settimeout(0.2)
        self.address: Tuple[str, int] = self._sock.getsockname()
        self._members: Dict[str, Tuple[str, int]] = {}
        self._running = False
        self._thread: Optional[threading.Thread] = None
        self._lock = threading.Lock()

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        """Start the serving thread."""
        self._running = True
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def stop(self) -> None:
        """Stop serving and close the socket."""
        self._running = False
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self._sock.close()

    def __enter__(self) -> "UdpKeyServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- serving ----------------------------------------------------------------

    def _serve(self) -> None:
        while self._running:
            try:
                data, source = self._sock.recvfrom(_BUFFER)
            except socket.timeout:
                continue
            except OSError:
                break
            try:
                self._handle(data, source)
            except Exception:
                # A malformed datagram must not kill the server loop.
                continue

    def _handle(self, data: bytes, source: Tuple[str, int]) -> None:
        message = Message.decode(data)
        if message.msg_type == MSG_STATS_REQUEST:
            self._send_stats(source)
            return
        user_id = message.body.decode("utf-8", errors="replace")
        tracer = self.server.instrumentation.tracer
        with self._lock:
            if message.msg_type == MSG_JOIN_REQUEST:
                self._members[user_id] = source
            with tracer.span("udp.request", msg_type=message.msg_type,
                             user=user_id) as span:
                outbound = self.server.handle_datagram(data)
                trace = span.context if span.trace_id else None
                for out in outbound:
                    self._fan_out(out, trace)
                span.set("messages", len(outbound))
            if message.msg_type == MSG_LEAVE_REQUEST:
                # Send the leave ack before dropping the address.
                self._members.pop(user_id, None)

    def _fan_out(self, out: OutboundMessage,
                 trace: Optional[SpanContext] = None) -> None:
        payload = out.encoded or out.message.encode()
        if trace is not None:
            # Out-of-band: appended after the encoded message, which
            # decodes identically with or without the trailer.
            payload = attach_trace_trailer(payload, trace)
        for user_id in out.receivers:
            address = self._members.get(user_id)
            if address is not None:
                self._sock.sendto(payload, address)

    def stats_document(self) -> dict:
        """The live ``repro-metrics/1`` snapshot of the served group."""
        instrumentation = self.server.instrumentation
        tracer = instrumentation.tracer
        spans = tracer.export() if tracer.enabled else None
        return build_snapshot(instrumentation.registry,
                              label=instrumentation.name, spans=spans)

    def _send_stats(self, source: Tuple[str, int]) -> None:
        with self._lock:
            body = json.dumps(self.stats_document(),
                              sort_keys=True).encode("utf-8")
        response = Message(msg_type=MSG_STATS_RESPONSE, body=body)
        self._sock.sendto(response.encode(), source)

    # A leave ack must still reach the departing user, so receivers of
    # control messages are resolved before the membership update above.


class UdpGroupMember:
    """A client endpoint: one UDP socket plus a GroupClient state machine."""

    def __init__(self, user_id: str, suite, server_address: Tuple[str, int],
                 server_public_key=None, timeout: float = 5.0):
        self.user_id = user_id
        self.client = GroupClient(user_id, suite, server_public_key)
        self._server_address = server_address
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        self._sock.bind(("127.0.0.1", 0))
        self._sock.settimeout(timeout)
        # Trace context of the most recent datagram that carried one
        # (None until the server sends with tracing enabled).
        self.last_trace: Optional[SpanContext] = None

    def _receive(self) -> Tuple[bytes, Message]:
        """Read one datagram, splitting off any telemetry trailer."""
        data, _source = self._sock.recvfrom(_BUFFER)
        payload, trace = split_trace_trailer(data)
        if trace is not None:
            self.last_trace = trace
        return payload, Message.decode(payload)

    def close(self) -> None:
        """Close the client socket."""
        self._sock.close()

    def __enter__(self) -> "UdpGroupMember":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- requests ---------------------------------------------------------------

    def _request(self, msg_type: int) -> Message:
        request = Message(msg_type=msg_type,
                          body=self.user_id.encode("utf-8"))
        self._sock.sendto(request.encode(), self._server_address)
        return self._await_ack({MSG_JOIN_ACK, MSG_JOIN_DENIED,
                                MSG_LEAVE_ACK, MSG_LEAVE_DENIED})

    def _await_ack(self, ack_types) -> Message:
        while True:
            try:
                payload, message = self._receive()
            except socket.timeout:
                raise UdpTransportError(
                    f"{self.user_id}: no ack from server") from None
            if message.msg_type == MSG_REKEY:
                self.client.process_message(payload)
                continue
            if message.msg_type in ack_types:
                return self.client.process_control(message)

    def join(self, individual_key: bytes) -> Message:
        """Join the group (the individual key is pre-registered with the
        server, standing in for the authentication exchange)."""
        self.client.set_individual_key(individual_key)
        ack = self._request(MSG_JOIN_REQUEST)
        if ack.msg_type == MSG_JOIN_DENIED:
            raise UdpTransportError(f"{self.user_id}: join denied")
        return ack

    def leave(self) -> Message:
        """Send a leave request and await the ack."""
        ack = self._request(MSG_LEAVE_REQUEST)
        if ack.msg_type == MSG_LEAVE_DENIED:
            raise UdpTransportError(f"{self.user_id}: leave denied")
        return ack

    def pump(self, max_messages: int = 64, timeout: float = 0.2) -> int:
        """Drain pending rekey/data messages; returns how many arrived."""
        self._sock.settimeout(timeout)
        count = 0
        try:
            for _ in range(max_messages):
                payload, message = self._receive()
                if message.msg_type == MSG_REKEY:
                    self.client.process_message(payload)
                    count += 1
        except socket.timeout:
            pass
        return count


def scrape_stats(address: Tuple[str, int], timeout: float = 5.0,
                 retries: int = 2) -> dict:
    """Pull a live ``repro-metrics/1`` snapshot from a UdpKeyServer.

    Stats requests and responses are single datagrams; either can be
    dropped.  ``timeout`` bounds each attempt and the request is
    re-sent up to ``retries`` further times before
    :class:`UdpTransportError` — a lossy network delays the scrape
    instead of hanging (or permanently failing) the caller.  Scrapes
    are idempotent reads, so duplicated requests are harmless.
    """
    if retries < 0:
        raise ValueError("retries must be >= 0")
    sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
    try:
        sock.settimeout(timeout)
        request = Message(msg_type=MSG_STATS_REQUEST).encode()
        data = None
        for _attempt in range(retries + 1):
            sock.sendto(request, address)
            try:
                data, _source = sock.recvfrom(_BUFFER)
                break
            except socket.timeout:
                continue
        if data is None:
            raise UdpTransportError(
                f"no stats response from {address} "
                f"after {retries + 1} attempts") from None
    finally:
        sock.close()
    message = Message.decode(data)
    if message.msg_type != MSG_STATS_RESPONSE:
        raise UdpTransportError(
            f"unexpected response type {message.msg_type}")
    document = json.loads(message.body.decode("utf-8"))
    validate_snapshot(document)
    return document

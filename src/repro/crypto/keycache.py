"""LRU cache of expanded key schedules (constructed cipher objects).

Key-schedule expansion dominates small-message cost for the pure-Python
ciphers: a DES construction (PC-1/PC-2 permutations for 16 round keys)
costs ~10 encrypted blocks, an AES-128 construction ~3 blocks — and a
rekey payload item is only two blocks long.  The server re-encrypts
under the *same* keys constantly (every key on a leaving member's path
is used once per item, the group key on every item of a star rekey), so
caching the constructed cipher converts the dominant per-item cost into
a dict hit.

Cipher objects here are pure functions of ``(cipher_name, key)``: they
hold only the derived schedules and never mutate after ``__init__``, so
sharing one instance across call sites is safe.  Invalidation therefore
has exactly two rules:

* capacity — least-recently-used entries are evicted at ``capacity``;
* explicit ``clear()`` — used by tests and by anyone rotating away from
  a compromised key who wants the schedule gone from memory now rather
  than after eviction.

Correctness never depends on the cache: a miss constructs the same
object ``CipherSuite.new_cipher`` always constructed.

Hit/miss/eviction accounting lives on the observability registry: the
cache owns a :class:`~repro.observability.metrics.MetricRegistry` whose
``keycache_*`` series are refreshed by a snapshot-time collector.  The
hot path keeps plain integer attributes (``hits``/``misses``/
``evictions`` — the historic API, unchanged) because a locked registry
increment costs as much as the cache hit it would be counting; the
collector folds the deltas into the registry counters whenever a
snapshot or exposition is taken, so exported numbers are always
current without taxing ``get``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Optional, Tuple

from ..observability.metrics import MetricRegistry


class KeyScheduleCache:
    """Bounded LRU mapping ``(cipher_name, key bytes)`` -> cipher object.

    >>> from .des import DES
    >>> cache = KeyScheduleCache(capacity=2)
    >>> a = cache.get("des", b"\\x01" * 8, DES)
    >>> a is cache.get("des", b"\\x01" * 8, DES)
    True
    >>> cache.hits, cache.misses
    (1, 1)
    """

    def __init__(self, capacity: int = 1024,
                 registry: Optional[MetricRegistry] = None):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        # The async serving layer encrypts independent runs on worker
        # threads; the shared cache must survive concurrent lookups.
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Tuple[str, bytes], object]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.registry = (registry if registry is not None
                         else MetricRegistry("keycache"))
        lookups = self.registry.counter(
            "keycache_lookups_total",
            "Key-schedule cache lookups by outcome.", labels=("result",))
        self._hit_series = lookups.labels(result="hit")
        self._miss_series = lookups.labels(result="miss")
        self._eviction_series = self.registry.counter(
            "keycache_evictions_total",
            "Key schedules evicted by the LRU capacity bound.").labels()
        self._entries_gauge = self.registry.gauge(
            "keycache_entries", "Cached key schedules.").labels()
        self._capacity_gauge = self.registry.gauge(
            "keycache_capacity", "Key-schedule cache capacity.").labels()
        self._published = {"hits": 0, "misses": 0, "evictions": 0}
        self.registry.add_collector(self._collect)

    def _collect(self, registry: MetricRegistry) -> None:
        """Fold counter deltas into the registry (runs at snapshot time)."""
        for attr, series in (("hits", self._hit_series),
                             ("misses", self._miss_series),
                             ("evictions", self._eviction_series)):
            delta = getattr(self, attr) - self._published[attr]
            if delta:
                series.inc(delta)
                self._published[attr] += delta
        self._entries_gauge.set(len(self._entries))
        self._capacity_gauge.set(self.capacity)

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, cipher_name: str, key: bytes, factory: Callable):
        """Return the cached cipher for ``(cipher_name, key)`` or build one.

        ``factory`` is called with ``key`` on a miss.  A factory that
        raises (wrong key length, say) inserts nothing.
        """
        entry_key = (cipher_name, bytes(key))
        with self._lock:
            cipher = self._entries.get(entry_key)
            if cipher is not None:
                self.hits += 1
                self._entries.move_to_end(entry_key)
                return cipher
        # Construct outside the lock: expansion is the expensive part,
        # and two threads racing a miss just build the same pure object
        # twice (last insert wins — both are equivalent).
        cipher = factory(key)
        with self._lock:
            self.misses += 1
            self._entries[entry_key] = cipher
            if len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
        return cipher

    def clear(self) -> None:
        """Drop every cached schedule (counters are kept)."""
        with self._lock:
            self._entries.clear()

    def stats(self) -> dict:
        """Counters snapshot, for observability and the benchmark report."""
        return {
            "size": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


#: Process-wide cache shared by every :class:`~repro.crypto.suite.CipherSuite`
#: and by the rekey pipeline's encrypt stage.  Sized for the working set of
#: a deep tree rekey (path keys + individual keys touched in one batch).
SHARED_CACHE = KeyScheduleCache(capacity=1024)

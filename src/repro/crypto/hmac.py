"""HMAC (RFC 2104) over any hash factory with the hashlib interface.

Used both for message integrity checks on rekey messages and as the PRF
inside :mod:`repro.crypto.drbg`.  Validated against ``hmac``+``hashlib``
in the test suite.
"""

from __future__ import annotations

from typing import Callable


class HMAC:
    """Keyed-hash message authentication code."""

    def __init__(self, key: bytes, msg: bytes = b"",
                 digestmod: Callable = None):
        if digestmod is None:
            raise TypeError("digestmod (hash factory) is required")
        self._factory = digestmod
        probe = digestmod()
        self.block_size = probe.block_size
        self.digest_size = probe.digest_size
        self.name = f"hmac-{probe.name}"
        if len(key) > self.block_size:
            key = digestmod(key).digest()
        key = key.ljust(self.block_size, b"\x00")
        self._outer_key = bytes(b ^ 0x5C for b in key)
        self._inner = digestmod(bytes(b ^ 0x36 for b in key))
        if msg:
            self._inner.update(msg)

    def update(self, msg: bytes) -> None:
        """Absorb more message bytes."""
        self._inner.update(msg)

    def copy(self) -> "HMAC":
        """Clone the running state."""
        clone = HMAC.__new__(HMAC)
        clone._factory = self._factory
        clone.block_size = self.block_size
        clone.digest_size = self.digest_size
        clone.name = self.name
        clone._outer_key = self._outer_key
        clone._inner = self._inner.copy()
        return clone

    def digest(self) -> bytes:
        """The MAC over everything absorbed so far."""
        outer = self._factory(self._outer_key)
        outer.update(self._inner.copy().digest())
        return outer.digest()

    def hexdigest(self) -> str:
        """Hex form of :meth:`digest`."""
        return self.digest().hex()


def new(key: bytes, msg: bytes = b"", digestmod: Callable = None) -> HMAC:
    """Factory matching the stdlib ``hmac.new`` call style."""
    return HMAC(key, msg, digestmod)


def compare_digest(a: bytes, b: bytes) -> bool:
    """Constant-time comparison of two byte strings."""
    if len(a) != len(b):
        return False
    result = 0
    for x, y in zip(a, b):
        result |= x ^ y
    return result == 0

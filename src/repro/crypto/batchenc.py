"""Vectorized CBC encryption across independent rekey items.

A rekey operation encrypts many *small* items — two cipher blocks each —
under *different* keys.  CBC chains blocks within one item, so a single
item cannot be parallelized; but the items are mutually independent, so
the per-round table lookups can run across the whole batch at once.
This module does exactly that with numpy: the cipher state becomes an
array with one row per item, round keys become a matrix with one row
per item's schedule, and each T-table/SP-table read turns into one
fancy-indexing gather over the batch.

The arithmetic is a transliteration of the scalar round functions in
:mod:`repro.crypto.aes` and :mod:`repro.crypto.des` — same tables, same
word layout — so the output is byte-identical to looping
:func:`repro.crypto.modes.cbc_encrypt_nopad` over the jobs (the test
suite pins this on random batches).  Everything degrades gracefully:

* numpy missing                -> scalar loop
* unsupported cipher (xor)     -> scalar loop for those jobs
* group smaller than threshold -> scalar loop (fixed numpy dispatch
  overhead ~0.4 ms/batch outweighs the win below a few dozen blocks)

so callers may hand the whole batch over unconditionally.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from . import modes
from .aes import _RCON, _SBOX, _T0, _T1, _T2, _T3, AES
from .des import (_E16_HI, _E16_LO, _FP_TABLES, _IP_TABLES, _SP12, DES)
from .des3 import TripleDES

try:  # pragma: no cover - exercised implicitly by every batch test
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is present in CI
    _np = None

HAVE_NUMPY = _np is not None

#: Below this many jobs the caller should not bother batching at all.
MIN_BATCH_JOBS = 16
#: Within a batch, same-shape groups smaller than this run scalar.
_MIN_GROUP = 8

_BATCHABLE_SUITES = frozenset(("des", "des3", "des3-2key", "aes128", "aes256"))

# Lazily-built numpy copies of the scalar lookup tables (built on first
# batch, not at import, so plain scalar use never pays for them).
_NP_TABLES: dict = {}


def available(suite) -> bool:
    """True when batch encryption can help for this suite."""
    return HAVE_NUMPY and getattr(suite, "cipher_name", None) in _BATCHABLE_SUITES


def _tables():
    if not _NP_TABLES:
        _NP_TABLES.update(
            aes_t=[_np.array(t, dtype=_np.uint32)
                   for t in (_T0, _T1, _T2, _T3)],
            aes_sbox=_np.array(_SBOX, dtype=_np.uint32),
            des_ip=[_np.array(t, dtype=_np.uint64) for t in _IP_TABLES],
            des_fp=[_np.array(t, dtype=_np.uint64) for t in _FP_TABLES],
            des_e_hi=_np.array(_E16_HI, dtype=_np.uint64),
            des_e_lo=_np.array(_E16_LO, dtype=_np.uint64),
            des_sp=[_np.array(t, dtype=_np.uint64) for t in _SP12],
        )
    return _NP_TABLES


def _aes_schedule(cipher: AES):
    rk = getattr(cipher, "_np_rk", None)
    if rk is None:
        rk = _np.array(cipher._rk, dtype=_np.uint32)
        cipher._np_rk = rk
    return rk


def _des_schedule(cipher: DES, decrypt: bool = False):
    attr = "_np_rkd" if decrypt else "_np_rke"
    rk = getattr(cipher, attr, None)
    if rk is None:
        source = cipher._round_keys_dec if decrypt else cipher._round_keys
        rk = _np.array(source, dtype=_np.uint64)
        setattr(cipher, attr, rk)
    return rk


def _aes_rounds_batch(s0, s1, s2, s3, rk, rounds: int):
    """One AES encryption over a batch of column-word states.

    ``s0..s3`` are (N,) uint32 arrays already XOR-ed with the plaintext;
    ``rk`` is the (N, 4*(rounds+1)) round-key matrix.
    """
    tab = _tables()
    t0, t1, t2, t3 = tab["aes_t"]
    sbox = tab["aes_sbox"]
    s0 = s0 ^ rk[:, 0]
    s1 = s1 ^ rk[:, 1]
    s2 = s2 ^ rk[:, 2]
    s3 = s3 ^ rk[:, 3]
    i = 4
    for _ in range(rounds - 1):
        u0 = (t0[s0 >> 24] ^ t1[(s1 >> 16) & 0xFF]
              ^ t2[(s2 >> 8) & 0xFF] ^ t3[s3 & 0xFF] ^ rk[:, i])
        u1 = (t0[s1 >> 24] ^ t1[(s2 >> 16) & 0xFF]
              ^ t2[(s3 >> 8) & 0xFF] ^ t3[s0 & 0xFF] ^ rk[:, i + 1])
        u2 = (t0[s2 >> 24] ^ t1[(s3 >> 16) & 0xFF]
              ^ t2[(s0 >> 8) & 0xFF] ^ t3[s1 & 0xFF] ^ rk[:, i + 2])
        u3 = (t0[s3 >> 24] ^ t1[(s0 >> 16) & 0xFF]
              ^ t2[(s1 >> 8) & 0xFF] ^ t3[s2 & 0xFF] ^ rk[:, i + 3])
        s0, s1, s2, s3 = u0, u1, u2, u3
        i += 4
    f0 = ((sbox[s0 >> 24] << 24) | (sbox[(s1 >> 16) & 0xFF] << 16)
          | (sbox[(s2 >> 8) & 0xFF] << 8) | sbox[s3 & 0xFF]) ^ rk[:, i]
    f1 = ((sbox[s1 >> 24] << 24) | (sbox[(s2 >> 16) & 0xFF] << 16)
          | (sbox[(s3 >> 8) & 0xFF] << 8) | sbox[s0 & 0xFF]) ^ rk[:, i + 1]
    f2 = ((sbox[s2 >> 24] << 24) | (sbox[(s3 >> 16) & 0xFF] << 16)
          | (sbox[(s0 >> 8) & 0xFF] << 8) | sbox[s1 & 0xFF]) ^ rk[:, i + 2]
    f3 = ((sbox[s3 >> 24] << 24) | (sbox[(s0 >> 16) & 0xFF] << 16)
          | (sbox[(s1 >> 8) & 0xFF] << 8) | sbox[s2 & 0xFF]) ^ rk[:, i + 3]
    return f0, f1, f2, f3


#: AES rounds by key length in bytes (FIPS 197).
_AES_KEY_ROUNDS = {16: 10, 24: 12, 32: 14}


def _aes_subword_batch(words, sbox):
    """SubWord over a (N,) uint32 batch."""
    return ((sbox[words >> 24] << _np.uint32(24))
            | (sbox[(words >> 16) & 0xFF] << _np.uint32(16))
            | (sbox[(words >> 8) & 0xFF] << _np.uint32(8))
            | sbox[words & 0xFF])


def _aes_schedules_batch(keys: Sequence[bytes]):
    """FIPS 197 key expansion vectorized across same-length keys.

    Returns the (N, 4*(rounds+1)) round-key matrix with exactly the
    packed-column-word layout of :meth:`repro.crypto.aes.AES._expand_key`
    — the expansion recurrence runs once per schedule *word* but each
    step covers the whole batch in one gather, so expanding N schedules
    costs ~the scalar cost of one.
    """
    n = len(keys)
    nk = len(keys[0]) // 4
    rounds = _AES_KEY_ROUNDS[len(keys[0])]
    total = 4 * (rounds + 1)
    sbox = _tables()["aes_sbox"]
    words = _np.empty((n, total), dtype=_np.uint32)
    words[:, :nk] = (_np.frombuffer(b"".join(keys), dtype=">u4")
                     .reshape(n, nk).astype(_np.uint32))
    for i in range(nk, total):
        temp = words[:, i - 1]
        if i % nk == 0:
            # RotWord then SubWord then Rcon on the top byte.
            temp = (temp << _np.uint32(8)) | (temp >> _np.uint32(24))
            temp = _aes_subword_batch(temp, sbox)
            temp = temp ^ _np.uint32(_RCON[i // nk - 1] << 24)
        elif nk > 6 and i % nk == 4:
            temp = _aes_subword_batch(temp, sbox)
        words[:, i] = words[:, i - nk] ^ temp
    return words


def _aes_cbc_run(rk, rounds: int, plaintexts: Sequence[bytes],
                 ivs: Sequence[bytes], n_blocks: int) -> List[bytes]:
    """CBC over a batch given the stacked round-key matrix."""
    n = rk.shape[0]
    data = (_np.frombuffer(b"".join(plaintexts), dtype=">u4")
            .reshape(n, n_blocks, 4).astype(_np.uint32))
    prev = (_np.frombuffer(b"".join(ivs), dtype=">u4")
            .reshape(n, 4).astype(_np.uint32))
    out = _np.empty((n, n_blocks, 4), dtype=_np.uint32)
    p0, p1, p2, p3 = prev[:, 0], prev[:, 1], prev[:, 2], prev[:, 3]
    for j in range(n_blocks):
        p0, p1, p2, p3 = _aes_rounds_batch(
            data[:, j, 0] ^ p0, data[:, j, 1] ^ p1,
            data[:, j, 2] ^ p2, data[:, j, 3] ^ p3, rk, rounds)
        out[:, j, 0], out[:, j, 1], out[:, j, 2], out[:, j, 3] = p0, p1, p2, p3
    raw = out.astype(">u4").tobytes()
    item = 16 * n_blocks
    return [raw[i * item:(i + 1) * item] for i in range(n)]


def _aes_cbc_group(jobs, n_blocks: int) -> List[bytes]:
    """CBC-encrypt a group of same-length AES jobs in one numpy pass."""
    ciphers = [job[0] for job in jobs]
    rounds = ciphers[0]._rounds
    rk = _np.stack([_aes_schedule(c) for c in ciphers])
    return _aes_cbc_run(rk, rounds, [job[1] for job in jobs],
                        [job[2] for job in jobs], n_blocks)


def _des_pass_batch(v, rk):
    """One full DES (IP + 16 rounds + FP) over a batch of uint64 blocks."""
    tab = _tables()
    ip, fp = tab["des_ip"], tab["des_fp"]
    e_hi, e_lo = tab["des_e_hi"], tab["des_e_lo"]
    sp0, sp1, sp2, sp3 = tab["des_sp"]
    v = (ip[0][(v >> 56) & 0xFF] | ip[1][(v >> 48) & 0xFF]
         | ip[2][(v >> 40) & 0xFF] | ip[3][(v >> 32) & 0xFF]
         | ip[4][(v >> 24) & 0xFF] | ip[5][(v >> 16) & 0xFF]
         | ip[6][(v >> 8) & 0xFF] | ip[7][v & 0xFF])
    left = (v >> 32) & 0xFFFFFFFF
    right = v & 0xFFFFFFFF
    for r in range(16):
        x = (e_hi[right >> 16] | e_lo[right & 0xFFFF]) ^ rk[:, r]
        left, right = right, left ^ (
            sp0[(x >> 36) & 0xFFF] | sp1[(x >> 24) & 0xFFF]
            | sp2[(x >> 12) & 0xFFF] | sp3[x & 0xFFF])
    combined = (right << _np.uint64(32)) | left
    return (fp[0][(combined >> 56) & 0xFF] | fp[1][(combined >> 48) & 0xFF]
            | fp[2][(combined >> 40) & 0xFF] | fp[3][(combined >> 32) & 0xFF]
            | fp[4][(combined >> 24) & 0xFF] | fp[5][(combined >> 16) & 0xFF]
            | fp[6][(combined >> 8) & 0xFF] | fp[7][combined & 0xFF])


def _des_cbc_group(jobs, n_blocks: int, schedules) -> List[bytes]:
    """CBC-encrypt same-length DES/3DES jobs; ``schedules`` is a list of
    (N, 16) round-key matrices applied as successive full-DES passes
    (one for DES, three for EDE)."""
    n = len(jobs)
    data = (_np.frombuffer(b"".join(job[1] for job in jobs), dtype=">u8")
            .reshape(n, n_blocks).astype(_np.uint64))
    prev = (_np.frombuffer(b"".join(job[2] for job in jobs), dtype=">u8")
            .astype(_np.uint64))
    out = _np.empty((n, n_blocks), dtype=_np.uint64)
    for j in range(n_blocks):
        v = data[:, j] ^ prev
        for rk in schedules:
            v = _des_pass_batch(v, rk)
        out[:, j] = v
        prev = v
    raw = out.astype(">u8").tobytes()
    item = 8 * n_blocks
    return [raw[i * item:(i + 1) * item] for i in range(n)]


def _group_key(cipher, n_blocks: int) -> Optional[Tuple]:
    if isinstance(cipher, AES):
        return ("aes", cipher._rounds, n_blocks)
    if isinstance(cipher, TripleDES):
        return ("des3", 0, n_blocks)
    if isinstance(cipher, DES):
        return ("des", 0, n_blocks)
    return None


def cbc_encrypt_nopad_many(
        jobs: Sequence[Tuple[object, bytes, bytes]]) -> List[bytes]:
    """CBC-encrypt independent ``(cipher, padded_plaintext, iv)`` jobs.

    Returns ciphertexts in job order, byte-identical to calling
    :func:`repro.crypto.modes.cbc_encrypt_nopad` per job.  Jobs are
    grouped by (cipher kind, round count, block count); big enough
    groups run vectorized, the rest run scalar.
    """
    results: List[Optional[bytes]] = [None] * len(jobs)
    groups: dict = {}
    for index, (cipher, padded, iv) in enumerate(jobs):
        if len(padded) % cipher.block_size:
            raise ValueError("plaintext length is not a block multiple")
        key = (_group_key(cipher, len(padded) // cipher.block_size)
               if HAVE_NUMPY else None)
        if key is None or key[2] == 0:
            results[index] = modes.cbc_encrypt_nopad(cipher, padded, iv)
        else:
            groups.setdefault(key, []).append(index)
    for (kind, _, n_blocks), indices in groups.items():
        if len(indices) < _MIN_GROUP:
            for index in indices:
                cipher, padded, iv = jobs[index]
                results[index] = modes.cbc_encrypt_nopad(cipher, padded, iv)
            continue
        group_jobs = [jobs[index] for index in indices]
        if kind == "aes":
            encrypted = _aes_cbc_group(group_jobs, n_blocks)
        elif kind == "des":
            schedules = [_np.stack([_des_schedule(job[0])
                                    for job in group_jobs])]
            encrypted = _des_cbc_group(group_jobs, n_blocks, schedules)
        else:  # EDE: encrypt K1, decrypt K2, encrypt K3 as three passes
            schedules = [
                _np.stack([_des_schedule(job[0]._first) for job in group_jobs]),
                _np.stack([_des_schedule(job[0]._second, decrypt=True)
                           for job in group_jobs]),
                _np.stack([_des_schedule(job[0]._third) for job in group_jobs]),
            ]
            encrypted = _des_cbc_group(group_jobs, n_blocks, schedules)
        for index, ciphertext in zip(indices, encrypted):
            results[index] = ciphertext
    return results  # type: ignore[return-value]


def cbc_encrypt_keys_many(
        suite, jobs: Sequence[Tuple[bytes, bytes, bytes]]) -> List[bytes]:
    """CBC-encrypt ``(key_bytes, padded_plaintext, iv)`` jobs under one suite.

    The raw-key-bytes entry point for whole rekey plans: with an AES
    suite and a big enough batch, *everything* — key schedule expansion
    included — runs vectorized straight out of the key bytes (gathered,
    e.g., from the flat backend's key arena), building no per-item
    cipher objects at all.  Other suites and small groups fall back to
    per-item ciphers via :func:`cbc_encrypt_nopad_many`, so the output
    is always byte-identical to the scalar path.
    """
    name = getattr(suite, "cipher_name", None)
    if not (HAVE_NUMPY and name in ("aes128", "aes256")
            and len(jobs) >= _MIN_GROUP):
        return cbc_encrypt_nopad_many(
            [(suite.new_cipher(key), padded, iv)
             for key, padded, iv in jobs])
    results: List[Optional[bytes]] = [None] * len(jobs)
    groups: dict = {}
    for index, (key, padded, iv) in enumerate(jobs):
        if len(padded) % 16:
            raise ValueError("plaintext length is not a block multiple")
        groups.setdefault((len(key), len(padded) // 16), []).append(index)
    for (key_len, n_blocks), indices in groups.items():
        if (len(indices) < _MIN_GROUP or n_blocks == 0
                or key_len not in _AES_KEY_ROUNDS):
            for index in indices:
                key, padded, iv = jobs[index]
                results[index] = modes.cbc_encrypt_nopad(
                    suite.new_cipher(key), padded, iv)
            continue
        group = [jobs[i] for i in indices]
        rk = _aes_schedules_batch([job[0] for job in group])
        encrypted = _aes_cbc_run(rk, _AES_KEY_ROUNDS[key_len],
                                 [job[1] for job in group],
                                 [job[2] for job in group], n_blocks)
        for index, ciphertext in zip(indices, encrypted):
            results[index] = ciphertext
    return results  # type: ignore[return-value]

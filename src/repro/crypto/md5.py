"""Pure-Python MD5 (RFC 1321).

The paper computes MD5 digests of rekey messages.  The per-step constants
are derived from ``int(abs(sin(i+1)) * 2**32)`` exactly as RFC 1321
specifies, so no 64-entry table needs transcribing.  Validated against
``hashlib.md5`` in the test suite (including a hypothesis property test
over arbitrary inputs).
"""

from __future__ import annotations

import math
import struct

DIGEST_SIZE = 16
BLOCK_SIZE = 64

_K = tuple(int(abs(math.sin(i + 1)) * 2**32) & 0xFFFFFFFF for i in range(64))
_S = (
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
    5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20,
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
)

_MASK = 0xFFFFFFFF


def _rotl32(value: int, amount: int) -> int:
    return ((value << amount) | (value >> (32 - amount))) & _MASK


class MD5:
    """Incremental MD5 with the ``hashlib``-style interface."""

    digest_size = DIGEST_SIZE
    block_size = BLOCK_SIZE
    name = "md5"

    def __init__(self, data: bytes = b""):
        self._state = (0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476)
        self._buffer = b""
        self._length = 0
        if data:
            self.update(data)

    def copy(self) -> "MD5":
        """Clone the running state."""
        clone = MD5()
        clone._state = self._state
        clone._buffer = self._buffer
        clone._length = self._length
        return clone

    def update(self, data: bytes) -> None:
        """Absorb more message bytes."""
        self._length += len(data)
        self._buffer += data
        while len(self._buffer) >= BLOCK_SIZE:
            self._state = self._compress(self._state, self._buffer[:BLOCK_SIZE])
            self._buffer = self._buffer[BLOCK_SIZE:]

    @staticmethod
    def _compress(state, block: bytes):
        a0, b0, c0, d0 = state
        m = struct.unpack("<16I", block)
        a, b, c, d = a0, b0, c0, d0
        for i in range(64):
            if i < 16:
                f = (b & c) | (~b & d)
                g = i
            elif i < 32:
                f = (d & b) | (~d & c)
                g = (5 * i + 1) % 16
            elif i < 48:
                f = b ^ c ^ d
                g = (3 * i + 5) % 16
            else:
                f = c ^ (b | (~d & _MASK))
                g = (7 * i) % 16
            f = (f + a + _K[i] + m[g]) & _MASK
            a, d, c = d, c, b
            b = (b + _rotl32(f, _S[i])) & _MASK
        return ((a0 + a) & _MASK, (b0 + b) & _MASK,
                (c0 + c) & _MASK, (d0 + d) & _MASK)

    def digest(self) -> bytes:
        # Pad a copy so update() can continue afterwards.
        """Digest of everything absorbed so far (state preserved)."""
        length_bits = (self._length * 8) & 0xFFFFFFFFFFFFFFFF
        padding = b"\x80" + b"\x00" * ((55 - self._length) % 64)
        tail = self._buffer + padding + struct.pack("<Q", length_bits)
        state = self._state
        for offset in range(0, len(tail), BLOCK_SIZE):
            state = self._compress(state, tail[offset:offset + BLOCK_SIZE])
        return struct.pack("<4I", *state)

    def hexdigest(self) -> str:
        """Hex form of :meth:`digest`."""
        return self.digest().hex()


def md5(data: bytes = b"") -> MD5:
    """Factory matching ``hashlib.md5`` call style."""
    return MD5(data)

"""Pure-Python SHA-1 (FIPS 180-4).

Provided as the digest option for the "modern" cipher suite and as the
hash underlying HMAC-DRBG.  Validated against ``hashlib.sha1``.
"""

from __future__ import annotations

import struct

DIGEST_SIZE = 20
BLOCK_SIZE = 64

_MASK = 0xFFFFFFFF


def _rotl32(value: int, amount: int) -> int:
    return ((value << amount) | (value >> (32 - amount))) & _MASK


class SHA1:
    """Incremental SHA-1 with the ``hashlib``-style interface."""

    digest_size = DIGEST_SIZE
    block_size = BLOCK_SIZE
    name = "sha1"

    def __init__(self, data: bytes = b""):
        self._state = (0x67452301, 0xEFCDAB89, 0x98BADCFE,
                       0x10325476, 0xC3D2E1F0)
        self._buffer = b""
        self._length = 0
        if data:
            self.update(data)

    def copy(self) -> "SHA1":
        """Clone the running state."""
        clone = SHA1()
        clone._state = self._state
        clone._buffer = self._buffer
        clone._length = self._length
        return clone

    def update(self, data: bytes) -> None:
        """Absorb more message bytes."""
        self._length += len(data)
        self._buffer += data
        while len(self._buffer) >= BLOCK_SIZE:
            self._state = self._compress(self._state, self._buffer[:BLOCK_SIZE])
            self._buffer = self._buffer[BLOCK_SIZE:]

    @staticmethod
    def _compress(state, block: bytes):
        w = list(struct.unpack(">16I", block))
        for i in range(16, 80):
            w.append(_rotl32(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1))
        a, b, c, d, e = state
        for i in range(80):
            if i < 20:
                f = (b & c) | (~b & d)
                k = 0x5A827999
            elif i < 40:
                f = b ^ c ^ d
                k = 0x6ED9EBA1
            elif i < 60:
                f = (b & c) | (b & d) | (c & d)
                k = 0x8F1BBCDC
            else:
                f = b ^ c ^ d
                k = 0xCA62C1D6
            temp = (_rotl32(a, 5) + f + e + k + w[i]) & _MASK
            e, d, c, b, a = d, c, _rotl32(b, 30), a, temp
        return tuple((x + y) & _MASK for x, y in zip(state, (a, b, c, d, e)))

    def digest(self) -> bytes:
        """Digest of everything absorbed so far (state preserved)."""
        length_bits = (self._length * 8) & 0xFFFFFFFFFFFFFFFF
        padding = b"\x80" + b"\x00" * ((55 - self._length) % 64)
        tail = self._buffer + padding + struct.pack(">Q", length_bits)
        state = self._state
        for offset in range(0, len(tail), BLOCK_SIZE):
            state = self._compress(state, tail[offset:offset + BLOCK_SIZE])
        return struct.pack(">5I", *state)

    def hexdigest(self) -> str:
        """Hex form of :meth:`digest`."""
        return self.digest().hex()


def sha1(data: bytes = b"") -> SHA1:
    """Factory matching ``hashlib.sha1`` call style."""
    return SHA1(data)

"""Block cipher modes of operation and padding.

The paper encrypts rekey payloads with DES-CBC.  This module provides
PKCS#7 padding, ECB (for tests/known-answer work) and CBC with an
explicit IV, generic over any block cipher object exposing
``block_size`` / ``encrypt_block`` / ``decrypt_block``.
"""

from __future__ import annotations


class PaddingError(ValueError):
    """Raised when ciphertext unpads to an invalid PKCS#7 padding."""


def pad(data: bytes, block_size: int) -> bytes:
    """Apply PKCS#7 padding up to a multiple of ``block_size``."""
    if not 1 <= block_size <= 255:
        raise ValueError("block size must be in [1, 255]")
    pad_len = block_size - (len(data) % block_size)
    return data + bytes([pad_len]) * pad_len

def unpad(data: bytes, block_size: int) -> bytes:
    """Strip and validate PKCS#7 padding."""
    if not data or len(data) % block_size:
        raise PaddingError("padded data length is not a block multiple")
    pad_len = data[-1]
    if not 1 <= pad_len <= block_size:
        raise PaddingError("invalid padding length byte")
    if data[-pad_len:] != bytes([pad_len]) * pad_len:
        raise PaddingError("padding bytes are inconsistent")
    return data[:-pad_len]


def _xor_bytes(a: bytes, b: bytes) -> bytes:
    return bytes(x ^ y for x, y in zip(a, b))


def ecb_encrypt(cipher, plaintext: bytes) -> bytes:
    """ECB encryption of PKCS#7 padded ``plaintext``."""
    block = cipher.block_size
    padded = pad(plaintext, block)
    return b"".join(cipher.encrypt_block(padded[i:i + block])
                    for i in range(0, len(padded), block))


def ecb_decrypt(cipher, ciphertext: bytes) -> bytes:
    """ECB decryption; raises :class:`PaddingError` on bad padding."""
    block = cipher.block_size
    if len(ciphertext) % block:
        raise ValueError("ciphertext length is not a block multiple")
    padded = b"".join(cipher.decrypt_block(ciphertext[i:i + block])
                      for i in range(0, len(ciphertext), block))
    return unpad(padded, block)


def cbc_encrypt(cipher, plaintext: bytes, iv: bytes) -> bytes:
    """CBC encryption of PKCS#7 padded ``plaintext`` under ``iv``.

    The IV is *not* prepended to the ciphertext; callers that need to
    transmit it (the rekey message format does) carry it explicitly.
    """
    block = cipher.block_size
    if len(iv) != block:
        raise ValueError(f"IV must be {block} bytes")
    padded = pad(plaintext, block)
    out = bytearray()
    previous = iv
    for i in range(0, len(padded), block):
        encrypted = cipher.encrypt_block(_xor_bytes(padded[i:i + block], previous))
        out.extend(encrypted)
        previous = encrypted
    return bytes(out)


def cbc_encrypt_nopad(cipher, plaintext: bytes, iv: bytes) -> bytes:
    """CBC encryption of already block-aligned ``plaintext`` (no padding).

    Used by the rekey message format, which carries an explicit plaintext
    length and zero-pads, keeping single-key items to two cipher blocks.
    """
    block = cipher.block_size
    if len(iv) != block:
        raise ValueError(f"IV must be {block} bytes")
    if len(plaintext) % block:
        raise ValueError("plaintext length is not a block multiple")
    out = bytearray()
    previous = iv
    for i in range(0, len(plaintext), block):
        encrypted = cipher.encrypt_block(_xor_bytes(plaintext[i:i + block], previous))
        out.extend(encrypted)
        previous = encrypted
    return bytes(out)


def cbc_decrypt_nopad(cipher, ciphertext: bytes, iv: bytes) -> bytes:
    """CBC decryption without padding removal (see cbc_encrypt_nopad)."""
    block = cipher.block_size
    if len(iv) != block:
        raise ValueError(f"IV must be {block} bytes")
    if len(ciphertext) % block:
        raise ValueError("ciphertext length is not a block multiple")
    out = bytearray()
    previous = iv
    for i in range(0, len(ciphertext), block):
        chunk = ciphertext[i:i + block]
        out.extend(_xor_bytes(cipher.decrypt_block(chunk), previous))
        previous = chunk
    return bytes(out)


def ctr_transform(cipher, data: bytes, nonce: bytes) -> bytes:
    """CTR mode: encrypt or decrypt (self-inverse), any length.

    The counter block is ``nonce`` (block_size - 4 bytes) followed by a
    32-bit big-endian block counter.  Used by the streaming-data
    examples; key distribution itself stays on CBC like the paper.
    """
    block = cipher.block_size
    if len(nonce) != block - 4:
        raise ValueError(f"nonce must be {block - 4} bytes")
    out = bytearray()
    for counter in range(-(-len(data) // block) if data else 0):
        keystream = cipher.encrypt_block(
            nonce + counter.to_bytes(4, "big"))
        chunk = data[counter * block:(counter + 1) * block]
        out.extend(_xor_bytes(chunk, keystream[:len(chunk)]))
    return bytes(out)


def cbc_decrypt(cipher, ciphertext: bytes, iv: bytes) -> bytes:
    """CBC decryption; raises :class:`PaddingError` on bad padding."""
    block = cipher.block_size
    if len(iv) != block:
        raise ValueError(f"IV must be {block} bytes")
    if len(ciphertext) % block:
        raise ValueError("ciphertext length is not a block multiple")
    out = bytearray()
    previous = iv
    for i in range(0, len(ciphertext), block):
        chunk = ciphertext[i:i + block]
        out.extend(_xor_bytes(cipher.decrypt_block(chunk), previous))
        previous = chunk
    return unpad(bytes(out), block)

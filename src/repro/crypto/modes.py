"""Block cipher modes of operation and padding.

The paper encrypts rekey payloads with DES-CBC.  This module provides
PKCS#7 padding, ECB (for tests/known-answer work) and CBC with an
explicit IV, generic over any block cipher object exposing
``block_size`` / ``encrypt_block`` / ``decrypt_block``.

Fast path: when the cipher also exposes ``encrypt_block_int`` /
``decrypt_block_int`` (AES, DES, TripleDES do), the CBC/CTR loops chain
whole messages as integers — one ``int.from_bytes`` per input block, an
integer XOR for the chaining step, one ``to_bytes`` per output block —
instead of building intermediate byte strings and XOR-ing byte by byte.
The output is bit-identical to the generic path (the chaining math is
the same); :mod:`tests.crypto.test_fastpath` pins the two paths equal
against the byte-wise reference implementations.
"""

from __future__ import annotations


class PaddingError(ValueError):
    """Raised when ciphertext unpads to an invalid PKCS#7 padding."""


def pad(data: bytes, block_size: int) -> bytes:
    """Apply PKCS#7 padding up to a multiple of ``block_size``."""
    if not 1 <= block_size <= 255:
        raise ValueError("block size must be in [1, 255]")
    pad_len = block_size - (len(data) % block_size)
    return data + bytes([pad_len]) * pad_len

def unpad(data: bytes, block_size: int) -> bytes:
    """Strip and validate PKCS#7 padding."""
    if not data or len(data) % block_size:
        raise PaddingError("padded data length is not a block multiple")
    pad_len = data[-1]
    if not 1 <= pad_len <= block_size:
        raise PaddingError("invalid padding length byte")
    if data[-pad_len:] != bytes([pad_len]) * pad_len:
        raise PaddingError("padding bytes are inconsistent")
    return data[:-pad_len]


def _xor_bytes(a: bytes, b: bytes) -> bytes:
    return bytes(x ^ y for x, y in zip(a, b))


def ecb_encrypt(cipher, plaintext: bytes) -> bytes:
    """ECB encryption of PKCS#7 padded ``plaintext``."""
    block = cipher.block_size
    padded = pad(plaintext, block)
    return b"".join(cipher.encrypt_block(padded[i:i + block])
                    for i in range(0, len(padded), block))


def ecb_decrypt(cipher, ciphertext: bytes) -> bytes:
    """ECB decryption; raises :class:`PaddingError` on bad padding."""
    block = cipher.block_size
    if len(ciphertext) % block:
        raise ValueError("ciphertext length is not a block multiple")
    padded = b"".join(cipher.decrypt_block(ciphertext[i:i + block])
                      for i in range(0, len(ciphertext), block))
    return unpad(padded, block)


def _cbc_encrypt_aligned(cipher, padded: bytes, iv: bytes) -> bytes:
    """CBC-encrypt block-aligned data (shared by both CBC entry points)."""
    block = cipher.block_size
    encrypt_int = getattr(cipher, "encrypt_block_int", None)
    if encrypt_int is not None:
        from_bytes = int.from_bytes
        view = memoryview(padded)
        previous = from_bytes(iv, "big")
        out = []
        for i in range(0, len(padded), block):
            previous = encrypt_int(from_bytes(view[i:i + block], "big")
                                   ^ previous)
            out.append(previous.to_bytes(block, "big"))
        return b"".join(out)
    out = bytearray()
    previous = iv
    for i in range(0, len(padded), block):
        encrypted = cipher.encrypt_block(_xor_bytes(padded[i:i + block],
                                                    previous))
        out.extend(encrypted)
        previous = encrypted
    return bytes(out)


def _cbc_decrypt_aligned(cipher, ciphertext: bytes, iv: bytes) -> bytes:
    """CBC-decrypt block-aligned data, padding left in place."""
    block = cipher.block_size
    decrypt_int = getattr(cipher, "decrypt_block_int", None)
    if decrypt_int is not None:
        from_bytes = int.from_bytes
        view = memoryview(ciphertext)
        previous = from_bytes(iv, "big")
        out = []
        for i in range(0, len(ciphertext), block):
            chunk = from_bytes(view[i:i + block], "big")
            out.append((decrypt_int(chunk) ^ previous).to_bytes(block, "big"))
            previous = chunk
        return b"".join(out)
    out = bytearray()
    previous = iv
    for i in range(0, len(ciphertext), block):
        chunk = ciphertext[i:i + block]
        out.extend(_xor_bytes(cipher.decrypt_block(chunk), previous))
        previous = chunk
    return bytes(out)


def cbc_encrypt(cipher, plaintext: bytes, iv: bytes) -> bytes:
    """CBC encryption of PKCS#7 padded ``plaintext`` under ``iv``.

    The IV is *not* prepended to the ciphertext; callers that need to
    transmit it (the rekey message format does) carry it explicitly.
    """
    block = cipher.block_size
    if len(iv) != block:
        raise ValueError(f"IV must be {block} bytes")
    return _cbc_encrypt_aligned(cipher, pad(plaintext, block), iv)


def cbc_encrypt_nopad(cipher, plaintext: bytes, iv: bytes) -> bytes:
    """CBC encryption of already block-aligned ``plaintext`` (no padding).

    Used by the rekey message format, which carries an explicit plaintext
    length and zero-pads, keeping single-key items to two cipher blocks.
    """
    block = cipher.block_size
    if len(iv) != block:
        raise ValueError(f"IV must be {block} bytes")
    if len(plaintext) % block:
        raise ValueError("plaintext length is not a block multiple")
    return _cbc_encrypt_aligned(cipher, plaintext, iv)


def cbc_decrypt_nopad(cipher, ciphertext: bytes, iv: bytes) -> bytes:
    """CBC decryption without padding removal (see cbc_encrypt_nopad)."""
    block = cipher.block_size
    if len(iv) != block:
        raise ValueError(f"IV must be {block} bytes")
    if len(ciphertext) % block:
        raise ValueError("ciphertext length is not a block multiple")
    return _cbc_decrypt_aligned(cipher, ciphertext, iv)


def ctr_transform(cipher, data: bytes, nonce: bytes) -> bytes:
    """CTR mode: encrypt or decrypt (self-inverse), any length.

    The counter block is ``nonce`` (block_size - 4 bytes) followed by a
    32-bit big-endian block counter.  Used by the streaming-data
    examples; key distribution itself stays on CBC like the paper.
    """
    block = cipher.block_size
    if len(nonce) != block - 4:
        raise ValueError(f"nonce must be {block - 4} bytes")
    n_blocks = -(-len(data) // block) if data else 0
    encrypt_int = getattr(cipher, "encrypt_block_int", None)
    if encrypt_int is not None:
        from_bytes = int.from_bytes
        view = memoryview(data)
        nonce_high = from_bytes(nonce, "big") << 32
        out = []
        for counter in range(n_blocks):
            chunk = bytes(view[counter * block:(counter + 1) * block])
            keystream = encrypt_int(nonce_high | counter)
            if len(chunk) == block:
                out.append((from_bytes(chunk, "big") ^ keystream)
                           .to_bytes(block, "big"))
            else:
                partial = keystream >> (8 * (block - len(chunk)))
                out.append((from_bytes(chunk, "big") ^ partial)
                           .to_bytes(len(chunk), "big"))
        return b"".join(out)
    out = bytearray()
    for counter in range(n_blocks):
        keystream = cipher.encrypt_block(
            nonce + counter.to_bytes(4, "big"))
        chunk = data[counter * block:(counter + 1) * block]
        out.extend(_xor_bytes(chunk, keystream[:len(chunk)]))
    return bytes(out)


def cbc_decrypt(cipher, ciphertext: bytes, iv: bytes) -> bytes:
    """CBC decryption; raises :class:`PaddingError` on bad padding."""
    block = cipher.block_size
    if len(iv) != block:
        raise ValueError(f"IV must be {block} bytes")
    if len(ciphertext) % block:
        raise ValueError("ciphertext length is not a block multiple")
    return unpad(_cbc_decrypt_aligned(cipher, ciphertext, iv), block)

"""Cryptographic substrate for the key-graph reproduction.

Everything here is implemented from scratch (no third-party crypto
dependency is available offline): DES and AES block ciphers, CBC/ECB
modes with PKCS#7 padding, MD5 and SHA-1 digests, HMAC, HMAC-DRBG,
RSA key generation and PKCS#1 v1.5 signatures, and the
:class:`~repro.crypto.suite.CipherSuite` abstraction the group key
server is configured with.
"""

from .aes import AES
from .des import (DES, SEMI_WEAK_KEYS, WEAK_KEYS, is_semi_weak_key,
                  is_weak_key)
from .des3 import TripleDES
from .drbg import HmacDrbg, SystemRandomSource, make_source
from .md5 import MD5, md5
from .modes import (PaddingError, cbc_decrypt, cbc_decrypt_nopad,
                    cbc_encrypt, cbc_encrypt_nopad, ctr_transform,
                    ecb_decrypt, ecb_encrypt, pad, unpad)
from .rsa import (RsaPrivateKey, RsaPublicKey, SignatureError,
                  generate_keypair, sign_digest, verify_digest)
from .sha1 import SHA1, sha1
from .suite import (FAST_TEST_SUITE, MODERN_SUITE, PAPER_SUITE,
                    PAPER_SUITE_ENC_ONLY, PAPER_SUITE_NO_SIG, CipherSuite,
                    XorCipher, suite_from_spec)

__all__ = [
    "AES", "DES", "TripleDES", "WEAK_KEYS", "SEMI_WEAK_KEYS",
    "is_weak_key", "is_semi_weak_key", "HmacDrbg", "SystemRandomSource", "make_source",
    "MD5", "md5", "SHA1", "sha1", "PaddingError",
    "cbc_decrypt", "cbc_encrypt", "cbc_decrypt_nopad", "cbc_encrypt_nopad",
    "ctr_transform", "ecb_decrypt", "ecb_encrypt",
    "pad", "unpad",
    "RsaPrivateKey", "RsaPublicKey", "SignatureError",
    "generate_keypair", "sign_digest", "verify_digest",
    "CipherSuite", "XorCipher", "suite_from_spec",
    "PAPER_SUITE", "PAPER_SUITE_NO_SIG", "PAPER_SUITE_ENC_ONLY",
    "MODERN_SUITE", "FAST_TEST_SUITE",
]

"""Triple DES (EDE) in two- and three-key variants.

By 1998 single DES was already considered weak; 3DES was the standard
hardening and is the natural "stronger paper-era suite" for sensitivity
analyses (the strategy orderings and the optimal degree are independent
of the cipher — the 3DES suite lets the benchmarks demonstrate that).

Keying: 16 bytes = two-key EDE (K1, K2, K1), 24 bytes = three-key EDE.
"""

from __future__ import annotations

from .des import DES

BLOCK_SIZE = 8


class TripleDES:
    """DES-EDE3 / DES-EDE2 block cipher.

    >>> cipher = TripleDES(bytes(range(24)))
    >>> block = b"8 bytes!"
    >>> cipher.decrypt_block(cipher.encrypt_block(block)) == block
    True
    """

    block_size = BLOCK_SIZE
    name = "des3"

    def __init__(self, key: bytes):
        if len(key) == 16:
            k1, k2 = key[:8], key[8:16]
            k3 = k1
        elif len(key) == 24:
            k1, k2, k3 = key[:8], key[8:16], key[16:24]
        else:
            raise ValueError("3DES key must be 16 or 24 bytes")
        self.key_size = len(key)
        self._first = DES(k1)
        self._second = DES(k2)
        self._third = DES(k3)

    def encrypt_block_int(self, value: int) -> int:
        """EDE on a 64-bit integer (no intermediate byte conversions)."""
        return self._third.encrypt_block_int(
            self._second.decrypt_block_int(self._first.encrypt_block_int(value)))

    def decrypt_block_int(self, value: int) -> int:
        """Inverse EDE on a 64-bit integer."""
        return self._first.decrypt_block_int(
            self._second.encrypt_block_int(self._third.decrypt_block_int(value)))

    def encrypt_block(self, block: bytes) -> bytes:
        """EDE: encrypt with K1, decrypt with K2, encrypt with K3."""
        if len(block) != BLOCK_SIZE:
            raise ValueError("3DES operates on 8-byte blocks")
        return self.encrypt_block_int(
            int.from_bytes(block, "big")).to_bytes(8, "big")

    def decrypt_block(self, block: bytes) -> bytes:
        """Inverse EDE: decrypt K3, encrypt K2, decrypt K1."""
        if len(block) != BLOCK_SIZE:
            raise ValueError("3DES operates on 8-byte blocks")
        return self.decrypt_block_int(
            int.from_bytes(block, "big")).to_bytes(8, "big")

"""Frozen pre-optimization crypto reference implementations.

The crypto fast path (T-table AES, pair-table DES, int-based CBC,
cached-CRT RSA) replaced the byte-at-a-time implementations this module
preserves.  They exist for two reasons:

* **Equivalence testing** — `tests/crypto/test_fastpath.py` drives the
  fast path and these references with the same random inputs and
  asserts bit-identical output, so the optimized round functions can
  never silently diverge from the straightforward transcription of the
  standards.
* **Benchmark baselines** — `benchmarks/bench_fastpath.py` measures the
  fast path *against* these functions with one harness, producing the
  `BENCH_*.json` speedup trajectory.

The standard tables (S-boxes, permutations, GF(2^8) multiplication
tables) are shared with the live modules — they are constants of the
algorithms, not part of the optimization — but every *code path* here
is the pre-fast-path formulation and must stay frozen.  Do not "clean
up" or speed up this module; its slowness is the point.
"""

from __future__ import annotations

from .aes import _INV_MUL, _INV_SBOX, _MUL2, _MUL3, _RCON, _SBOX
from .des import (_E_TABLES, _FP_TABLES, _IP_TABLES, _PC1, _PC2, _SHIFTS,
                  _SP, _permute, _rotl28)
from .modes import pad, unpad


# -- AES: byte-wise fused rounds (the pre-T-table formulation) --------------


class ReferenceAES:
    """AES with per-byte round functions, as shipped before the fast path."""

    block_size = 16
    name = "aes-reference"

    def __init__(self, key: bytes):
        if len(key) not in (16, 24, 32):
            raise ValueError("AES key must be 16, 24 or 32 bytes")
        self.key_size = len(key)
        self._rounds = {16: 10, 24: 12, 32: 14}[len(key)]
        self._round_keys = self._expand_key(key)

    def _expand_key(self, key: bytes):
        nk = len(key) // 4
        words = [list(key[4 * i:4 * i + 4]) for i in range(nk)]
        total_words = 4 * (self._rounds + 1)
        for i in range(nk, total_words):
            temp = list(words[i - 1])
            if i % nk == 0:
                temp = temp[1:] + temp[:1]
                temp = [_SBOX[b] for b in temp]
                temp[0] ^= _RCON[i // nk - 1]
            elif nk > 6 and i % nk == 4:
                temp = [_SBOX[b] for b in temp]
            words.append([words[i - nk][j] ^ temp[j] for j in range(4)])
        round_keys = []
        for round_index in range(self._rounds + 1):
            flat = []
            for word in words[4 * round_index:4 * round_index + 4]:
                flat.extend(word)
            round_keys.append(tuple(flat))
        return tuple(round_keys)

    @staticmethod
    def _add_round_key(state, round_key):
        return [state[i] ^ round_key[i] for i in range(16)]

    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt one 16-byte block (byte-wise rounds)."""
        if len(block) != 16:
            raise ValueError("AES operates on 16-byte blocks")
        state = self._add_round_key(list(block), self._round_keys[0])
        sbox, mul2, mul3 = _SBOX, _MUL2, _MUL3
        for round_index in range(1, self._rounds):
            rk = self._round_keys[round_index]
            new = [0] * 16
            for col in range(4):
                s0 = state[4 * col]
                s1 = state[(4 * col + 5) % 16]
                s2 = state[(4 * col + 10) % 16]
                s3 = state[(4 * col + 15) % 16]
                new[4 * col] = mul2[s0] ^ mul3[s1] ^ sbox[s2] ^ sbox[s3] ^ rk[4 * col]
                new[4 * col + 1] = sbox[s0] ^ mul2[s1] ^ mul3[s2] ^ sbox[s3] ^ rk[4 * col + 1]
                new[4 * col + 2] = sbox[s0] ^ sbox[s1] ^ mul2[s2] ^ mul3[s3] ^ rk[4 * col + 2]
                new[4 * col + 3] = mul3[s0] ^ sbox[s1] ^ sbox[s2] ^ mul2[s3] ^ rk[4 * col + 3]
            state = new
        rk = self._round_keys[self._rounds]
        final = [0] * 16
        for col in range(4):
            final[4 * col] = sbox[state[4 * col]] ^ rk[4 * col]
            final[4 * col + 1] = sbox[state[(4 * col + 5) % 16]] ^ rk[4 * col + 1]
            final[4 * col + 2] = sbox[state[(4 * col + 10) % 16]] ^ rk[4 * col + 2]
            final[4 * col + 3] = sbox[state[(4 * col + 15) % 16]] ^ rk[4 * col + 3]
        return bytes(final)

    def decrypt_block(self, block: bytes) -> bytes:
        """Decrypt one 16-byte block (byte-wise rounds)."""
        if len(block) != 16:
            raise ValueError("AES operates on 16-byte blocks")
        inv_sbox = _INV_SBOX
        mul9, mul11 = _INV_MUL[9], _INV_MUL[11]
        mul13, mul14 = _INV_MUL[13], _INV_MUL[14]
        state = self._add_round_key(list(block), self._round_keys[self._rounds])
        state = self._inv_shift_sub(state, inv_sbox)
        for round_index in range(self._rounds - 1, 0, -1):
            state = self._add_round_key(state, self._round_keys[round_index])
            new = [0] * 16
            for col in range(4):
                s0, s1, s2, s3 = state[4 * col:4 * col + 4]
                new[4 * col] = mul14[s0] ^ mul11[s1] ^ mul13[s2] ^ mul9[s3]
                new[4 * col + 1] = mul9[s0] ^ mul14[s1] ^ mul11[s2] ^ mul13[s3]
                new[4 * col + 2] = mul13[s0] ^ mul9[s1] ^ mul14[s2] ^ mul11[s3]
                new[4 * col + 3] = mul11[s0] ^ mul13[s1] ^ mul9[s2] ^ mul14[s3]
            state = self._inv_shift_sub(new, inv_sbox)
        state = self._add_round_key(state, self._round_keys[0])
        return bytes(state)

    @staticmethod
    def _inv_shift_sub(state, inv_sbox):
        new = [0] * 16
        for col in range(4):
            new[4 * col] = inv_sbox[state[4 * col]]
            new[4 * col + 1] = inv_sbox[state[(4 * col + 13) % 16]]
            new[4 * col + 2] = inv_sbox[state[(4 * col + 10) % 16]]
            new[4 * col + 3] = inv_sbox[state[(4 * col + 7) % 16]]
        return new


# -- DES: per-byte permutations + a per-round Feistel call ------------------


def _fast_permute(value: int, tables, n_bytes: int, in_width: int) -> int:
    out = 0
    for byte_index in range(n_bytes):
        shift = in_width - 8 * (byte_index + 1)
        out |= tables[byte_index][(value >> shift) & 0xFF]
    return out


class ReferenceDES:
    """DES with the pre-fast-path round structure (callable Feistel)."""

    block_size = 8
    key_size = 8
    name = "des-reference"

    def __init__(self, key: bytes):
        if len(key) != 8:
            raise ValueError(f"DES key must be 8 bytes, got {len(key)}")
        self._round_keys = self._key_schedule(key)

    @staticmethod
    def _key_schedule(key: bytes):
        key_int = int.from_bytes(key, "big")
        permuted = _permute(key_int, 64, _PC1)
        c = (permuted >> 28) & 0xFFFFFFF
        d = permuted & 0xFFFFFFF
        round_keys = []
        for shift in _SHIFTS:
            c = _rotl28(c, shift)
            d = _rotl28(d, shift)
            round_keys.append(_permute((c << 28) | d, 56, _PC2))
        return tuple(round_keys)

    @staticmethod
    def _feistel(half: int, round_key: int) -> int:
        e0, e1, e2, e3 = _E_TABLES
        expanded = (e0[(half >> 24) & 0xFF] | e1[(half >> 16) & 0xFF]
                    | e2[(half >> 8) & 0xFF] | e3[half & 0xFF]) ^ round_key
        sp = _SP
        return (sp[0][(expanded >> 42) & 0x3F] | sp[1][(expanded >> 36) & 0x3F]
                | sp[2][(expanded >> 30) & 0x3F] | sp[3][(expanded >> 24) & 0x3F]
                | sp[4][(expanded >> 18) & 0x3F] | sp[5][(expanded >> 12) & 0x3F]
                | sp[6][(expanded >> 6) & 0x3F] | sp[7][expanded & 0x3F])

    def _crypt_block(self, block: bytes, round_keys) -> bytes:
        value = _fast_permute(int.from_bytes(block, "big"), _IP_TABLES, 8, 64)
        left = (value >> 32) & 0xFFFFFFFF
        right = value & 0xFFFFFFFF
        feistel = self._feistel
        for round_key in round_keys:
            left, right = right, left ^ feistel(right, round_key)
        combined = (right << 32) | left
        return _fast_permute(combined, _FP_TABLES, 8, 64).to_bytes(8, "big")

    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt one 8-byte block."""
        if len(block) != 8:
            raise ValueError("DES operates on 8-byte blocks")
        return self._crypt_block(block, self._round_keys)

    def decrypt_block(self, block: bytes) -> bytes:
        """Decrypt one 8-byte block (reverses the schedule per call)."""
        if len(block) != 8:
            raise ValueError("DES operates on 8-byte blocks")
        return self._crypt_block(block, tuple(reversed(self._round_keys)))


# -- CBC: per-block byte-wise XOR (the pre-int-path formulation) ------------


def _xor_bytes(a: bytes, b: bytes) -> bytes:
    return bytes(x ^ y for x, y in zip(a, b))


def reference_cbc_encrypt(cipher, plaintext: bytes, iv: bytes) -> bytes:
    """CBC encryption of PKCS#7 padded plaintext, byte-wise chaining."""
    block = cipher.block_size
    if len(iv) != block:
        raise ValueError(f"IV must be {block} bytes")
    padded = pad(plaintext, block)
    out = bytearray()
    previous = iv
    for i in range(0, len(padded), block):
        encrypted = cipher.encrypt_block(_xor_bytes(padded[i:i + block], previous))
        out.extend(encrypted)
        previous = encrypted
    return bytes(out)


def reference_cbc_decrypt(cipher, ciphertext: bytes, iv: bytes) -> bytes:
    """CBC decryption with byte-wise chaining; validates PKCS#7 padding."""
    block = cipher.block_size
    if len(iv) != block:
        raise ValueError(f"IV must be {block} bytes")
    if len(ciphertext) % block:
        raise ValueError("ciphertext length is not a block multiple")
    out = bytearray()
    previous = iv
    for i in range(0, len(ciphertext), block):
        chunk = ciphertext[i:i + block]
        out.extend(_xor_bytes(cipher.decrypt_block(chunk), previous))
        previous = chunk
    return unpad(bytes(out), block)


# -- RSA: full-exponent (non-CRT) signing -----------------------------------


def reference_raw_sign(private_key, value: int) -> int:
    """Textbook private-key exponentiation: one full-size modular pow.

    The live :meth:`~repro.crypto.rsa.RsaPrivateKey.raw_sign` splits the
    computation over p and q (CRT) with cached exponents; this is the
    unaccelerated formulation it is benchmarked against.
    """
    return pow(value, private_key.d, private_key.n)


def reference_sign_digest(private_key, digest: bytes,
                          algorithm: str = "md5") -> bytes:
    """EMSA-PKCS1-v1_5 signing via the non-CRT exponentiation."""
    from .rsa import _emsa_pkcs1_v15
    em = _emsa_pkcs1_v15(digest, algorithm, private_key.byte_size)
    signature = reference_raw_sign(private_key, int.from_bytes(em, "big"))
    return signature.to_bytes(private_key.byte_size, "big")

"""Deterministic random bit generator (HMAC-DRBG, NIST SP 800-90A).

The group key server "randomly generates" new keys on every join/leave.
For reproducible experiments the server draws key material from an
HMAC-DRBG seeded from the experiment seed; two runs with the same seed
and workload produce byte-identical rekey messages, which makes the
table/figure benchmarks deterministic.

``SystemRandomSource`` wraps ``os.urandom`` for non-experiment use.
"""

from __future__ import annotations

import hashlib
import hmac as _stdlib_hmac
import os
from typing import Callable, Optional

from .sha1 import sha1
from . import hmac as _hmac


class HmacDrbg:
    """HMAC-DRBG instantiated with SHA-1 (sufficient for simulation keys).

    Follows the SP 800-90A update/generate structure (without the
    prediction-resistance machinery, which the experiments do not need).
    """

    def __init__(self, seed: bytes, personalization: bytes = b"",
                 scratch_hash: bool = False):
        if not seed:
            raise ValueError("HMAC-DRBG requires a non-empty seed")
        # The DRBG is reproducibility plumbing, not part of the paper's
        # measured crypto, so it defaults to the C-speed hashlib backend;
        # scratch_hash=True exercises this package's own SHA-1/HMAC.
        self._scratch = scratch_hash
        digest_size = sha1().digest_size if scratch_hash else 32
        self._key = b"\x00" * digest_size
        self._value = b"\x01" * digest_size
        self._update(seed + personalization)
        self._reseed_counter = 1

    def _hmac(self, key: bytes, data: bytes) -> bytes:
        if self._scratch:
            return _hmac.new(key, data, sha1).digest()
        return _stdlib_hmac.new(key, data, hashlib.sha256).digest()

    def _update(self, provided: bytes = b"") -> None:
        self._key = self._hmac(self._key, self._value + b"\x00" + provided)
        self._value = self._hmac(self._key, self._value)
        if provided:
            self._key = self._hmac(self._key, self._value + b"\x01" + provided)
            self._value = self._hmac(self._key, self._value)

    def reseed(self, seed: bytes) -> None:
        """Mix fresh entropy into the generator state."""
        self._update(seed)
        self._reseed_counter = 1

    def generate(self, n_bytes: int) -> bytes:
        """Return ``n_bytes`` of pseudo-random output."""
        if n_bytes < 0:
            raise ValueError("cannot generate a negative number of bytes")
        output = bytearray()
        while len(output) < n_bytes:
            self._value = self._hmac(self._key, self._value)
            output.extend(self._value)
        self._update()
        self._reseed_counter += 1
        return bytes(output[:n_bytes])

    def randint_below(self, bound: int) -> int:
        """Uniform integer in ``[0, bound)`` via rejection sampling."""
        if bound <= 0:
            raise ValueError("bound must be positive")
        n_bits = bound.bit_length()
        n_bytes = (n_bits + 7) // 8
        excess_bits = 8 * n_bytes - n_bits
        while True:
            candidate = int.from_bytes(self.generate(n_bytes), "big") >> excess_bits
            if candidate < bound:
                return candidate


class SystemRandomSource:
    """``os.urandom``-backed source with the same interface as HmacDrbg."""

    def generate(self, n_bytes: int) -> bytes:
        """``n_bytes`` from os.urandom."""
        return os.urandom(n_bytes)

    def randint_below(self, bound: int) -> int:
        """Uniform integer in [0, bound) via rejection sampling."""
        if bound <= 0:
            raise ValueError("bound must be positive")
        n_bits = bound.bit_length()
        n_bytes = (n_bits + 7) // 8
        excess_bits = 8 * n_bytes - n_bits
        while True:
            candidate = int.from_bytes(self.generate(n_bytes), "big") >> excess_bits
            if candidate < bound:
                return candidate


def make_source(seed: Optional[bytes] = None,
                personalization: bytes = b""):
    """Return a deterministic DRBG when ``seed`` is given, else urandom."""
    if seed is None:
        return SystemRandomSource()
    return HmacDrbg(seed, personalization)

"""RSA key generation and PKCS#1 v1.5 signatures.

The paper signs rekey messages with 512-bit RSA (CryptoLib).  This module
implements key generation (Miller-Rabin), raw RSA with CRT acceleration,
and EMSA-PKCS1-v1_5 signing/verification with the standard DigestInfo
prefixes for MD5, SHA-1 and SHA-256.

512-bit moduli are cryptographically obsolete; they are retained as the
default because the reproduction matches the paper's message sizes
(64-byte signatures) and relative signature cost.  Pass ``bits=1024`` or
higher for anything beyond the benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Optional, Tuple

from .drbg import make_source

# ASN.1 DigestInfo prefixes (RFC 8017, section 9.2 notes).
DIGEST_INFO_PREFIX = {
    "md5": bytes.fromhex("3020300c06082a864886f70d020505000410"),
    "sha1": bytes.fromhex("3021300906052b0e03021a05000414"),
    "sha256": bytes.fromhex("3031300d060960864801650304020105000420"),
}

_SMALL_PRIMES = (
    3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139,
    149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199, 211, 223,
    227, 229, 233, 239, 241, 251,
)


class SignatureError(ValueError):
    """Raised when a signature fails to verify."""


def _is_probable_prime(candidate: int, source, rounds: int = 40) -> bool:
    """Miller-Rabin primality test with ``rounds`` random bases."""
    if candidate < 2:
        return False
    for small in _SMALL_PRIMES:
        if candidate % small == 0:
            return candidate == small
    d = candidate - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        base = 2 + source.randint_below(candidate - 3)
        x = pow(base, d, candidate)
        if x in (1, candidate - 1):
            continue
        for _ in range(r - 1):
            x = (x * x) % candidate
            if x == candidate - 1:
                break
        else:
            return False
    return True


def _generate_prime(bits: int, source) -> int:
    """Generate a random prime with exactly ``bits`` bits."""
    if bits < 8:
        raise ValueError("prime size too small")
    while True:
        candidate = int.from_bytes(source.generate((bits + 7) // 8), "big")
        candidate |= (1 << (bits - 1)) | (1 << (bits - 2)) | 1
        candidate &= (1 << bits) - 1
        if _is_probable_prime(candidate, source):
            return candidate


@dataclass(frozen=True)
class RsaPublicKey:
    """RSA public key (n, e)."""

    n: int
    e: int

    @property
    def byte_size(self) -> int:
        """Modulus size in bytes (= signature size)."""
        return (self.n.bit_length() + 7) // 8

    def raw_verify(self, value: int) -> int:
        """Raw public-key exponentiation."""
        return pow(value, self.e, self.n)


@dataclass(frozen=True)
class RsaPrivateKey:
    """RSA private key with CRT components."""

    n: int
    e: int
    d: int
    p: int
    q: int

    @property
    def byte_size(self) -> int:
        """Modulus size in bytes (= signature size)."""
        return (self.n.bit_length() + 7) // 8

    @property
    def public_key(self) -> RsaPublicKey:
        """The corresponding public key."""
        return RsaPublicKey(self.n, self.e)

    @cached_property
    def _crt(self) -> Tuple[int, int, int]:
        """Cached CRT exponents ``(dp, dq, q_inv)``.

        Derived once per key instead of once per signature.
        ``cached_property`` stores into ``__dict__`` directly, which is
        compatible with the frozen dataclass (no ``__setattr__`` call).
        """
        return (self.d % (self.p - 1), self.d % (self.q - 1),
                pow(self.q, -1, self.p))

    def raw_sign(self, value: int) -> int:
        """Private exponentiation using the Chinese Remainder Theorem.

        Two half-size modular exponentiations (mod p, mod q) recombined
        via Garner's formula — ~4x fewer word operations than the
        textbook ``pow(value, d, n)`` preserved as
        :func:`repro.crypto.reference.reference_raw_sign`.
        """
        dp, dq, q_inv = self._crt
        m1 = pow(value, dp, self.p)
        m2 = pow(value, dq, self.q)
        h = (q_inv * (m1 - m2)) % self.p
        return m2 + h * self.q


def generate_keypair(bits: int = 512, e: int = 65537,
                     seed: Optional[bytes] = None) -> RsaPrivateKey:
    """Generate an RSA keypair; deterministic when ``seed`` is given."""
    if bits < 256:
        raise ValueError("modulus must be at least 256 bits")
    source = make_source(seed, personalization=b"rsa-keygen")
    while True:
        p = _generate_prime(bits // 2, source)
        q = _generate_prime(bits - bits // 2, source)
        if p == q:
            continue
        n = p * q
        if n.bit_length() != bits:
            continue
        phi = (p - 1) * (q - 1)
        try:
            d = pow(e, -1, phi)
        except ValueError:
            continue
        return RsaPrivateKey(n=n, e=e, d=d, p=p, q=q)


def _emsa_pkcs1_v15(digest: bytes, algorithm: str, em_len: int) -> bytes:
    """EMSA-PKCS1-v1_5 encoding of a message digest."""
    try:
        prefix = DIGEST_INFO_PREFIX[algorithm]
    except KeyError:
        raise ValueError(f"unsupported digest algorithm {algorithm!r}") from None
    t = prefix + digest
    if em_len < len(t) + 11:
        raise ValueError("intended encoded message length too short")
    ps = b"\xff" * (em_len - len(t) - 3)
    return b"\x00\x01" + ps + b"\x00" + t


def sign_digest(private_key: RsaPrivateKey, digest: bytes,
                algorithm: str = "md5") -> bytes:
    """Sign a precomputed message digest, returning a fixed-size signature."""
    em = _emsa_pkcs1_v15(digest, algorithm, private_key.byte_size)
    signature = private_key.raw_sign(int.from_bytes(em, "big"))
    return signature.to_bytes(private_key.byte_size, "big")


def verify_digest(public_key: RsaPublicKey, digest: bytes,
                  signature: bytes, algorithm: str = "md5") -> None:
    """Verify a signature over ``digest``; raises SignatureError on failure."""
    if len(signature) != public_key.byte_size:
        raise SignatureError("signature has wrong length")
    recovered = public_key.raw_verify(int.from_bytes(signature, "big"))
    expected = _emsa_pkcs1_v15(digest, algorithm, public_key.byte_size)
    if recovered != int.from_bytes(expected, "big"):
        raise SignatureError("signature does not verify")

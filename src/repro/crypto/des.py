"""Pure-Python DES block cipher (FIPS 46-3).

The paper's prototype encrypts rekey messages with DES-CBC from CryptoLib.
No C crypto library is available in this environment, so the cipher is
implemented here from the standard tables.

Fast path: every bit permutation is flattened into lookup tables at
import.  The round function uses 16-bit expansion pair tables and 12-bit
S-box pair tables (two classic 6-bit S/P lookups fused per read), and the
16 rounds are inlined into one loop over the schedule — no per-round
function call.  The decryption schedule is precomputed once per key, and
``encrypt_block_int``/``decrypt_block_int`` expose an integer API so CBC
can chain whole messages without per-block byte churn.  The pre-fast-path
round structure is preserved in :mod:`repro.crypto.reference` and pinned
equal on random blocks by the test suite.

Only the raw 64-bit block operations live here; chaining modes and padding
are in :mod:`repro.crypto.modes`.
"""

from __future__ import annotations

BLOCK_SIZE = 8
KEY_SIZE = 8

# Initial permutation (FIPS 46-3, 1-indexed source bit positions).
_IP = (
    58, 50, 42, 34, 26, 18, 10, 2,
    60, 52, 44, 36, 28, 20, 12, 4,
    62, 54, 46, 38, 30, 22, 14, 6,
    64, 56, 48, 40, 32, 24, 16, 8,
    57, 49, 41, 33, 25, 17, 9, 1,
    59, 51, 43, 35, 27, 19, 11, 3,
    61, 53, 45, 37, 29, 21, 13, 5,
    63, 55, 47, 39, 31, 23, 15, 7,
)

# Final permutation (inverse of IP).
_FP = (
    40, 8, 48, 16, 56, 24, 64, 32,
    39, 7, 47, 15, 55, 23, 63, 31,
    38, 6, 46, 14, 54, 22, 62, 30,
    37, 5, 45, 13, 53, 21, 61, 29,
    36, 4, 44, 12, 52, 20, 60, 28,
    35, 3, 43, 11, 51, 19, 59, 27,
    34, 2, 42, 10, 50, 18, 58, 26,
    33, 1, 41, 9, 49, 17, 57, 25,
)

# Expansion of the 32-bit half block to 48 bits.
_E = (
    32, 1, 2, 3, 4, 5,
    4, 5, 6, 7, 8, 9,
    8, 9, 10, 11, 12, 13,
    12, 13, 14, 15, 16, 17,
    16, 17, 18, 19, 20, 21,
    20, 21, 22, 23, 24, 25,
    24, 25, 26, 27, 28, 29,
    28, 29, 30, 31, 32, 1,
)

# Permutation applied to the S-box output.
_P = (
    16, 7, 20, 21,
    29, 12, 28, 17,
    1, 15, 23, 26,
    5, 18, 31, 10,
    2, 8, 24, 14,
    32, 27, 3, 9,
    19, 13, 30, 6,
    22, 11, 4, 25,
)

# The eight S-boxes, each 4 rows x 16 columns.
_SBOXES = (
    (
        14, 4, 13, 1, 2, 15, 11, 8, 3, 10, 6, 12, 5, 9, 0, 7,
        0, 15, 7, 4, 14, 2, 13, 1, 10, 6, 12, 11, 9, 5, 3, 8,
        4, 1, 14, 8, 13, 6, 2, 11, 15, 12, 9, 7, 3, 10, 5, 0,
        15, 12, 8, 2, 4, 9, 1, 7, 5, 11, 3, 14, 10, 0, 6, 13,
    ),
    (
        15, 1, 8, 14, 6, 11, 3, 4, 9, 7, 2, 13, 12, 0, 5, 10,
        3, 13, 4, 7, 15, 2, 8, 14, 12, 0, 1, 10, 6, 9, 11, 5,
        0, 14, 7, 11, 10, 4, 13, 1, 5, 8, 12, 6, 9, 3, 2, 15,
        13, 8, 10, 1, 3, 15, 4, 2, 11, 6, 7, 12, 0, 5, 14, 9,
    ),
    (
        10, 0, 9, 14, 6, 3, 15, 5, 1, 13, 12, 7, 11, 4, 2, 8,
        13, 7, 0, 9, 3, 4, 6, 10, 2, 8, 5, 14, 12, 11, 15, 1,
        13, 6, 4, 9, 8, 15, 3, 0, 11, 1, 2, 12, 5, 10, 14, 7,
        1, 10, 13, 0, 6, 9, 8, 7, 4, 15, 14, 3, 11, 5, 2, 12,
    ),
    (
        7, 13, 14, 3, 0, 6, 9, 10, 1, 2, 8, 5, 11, 12, 4, 15,
        13, 8, 11, 5, 6, 15, 0, 3, 4, 7, 2, 12, 1, 10, 14, 9,
        10, 6, 9, 0, 12, 11, 7, 13, 15, 1, 3, 14, 5, 2, 8, 4,
        3, 15, 0, 6, 10, 1, 13, 8, 9, 4, 5, 11, 12, 7, 2, 14,
    ),
    (
        2, 12, 4, 1, 7, 10, 11, 6, 8, 5, 3, 15, 13, 0, 14, 9,
        14, 11, 2, 12, 4, 7, 13, 1, 5, 0, 15, 10, 3, 9, 8, 6,
        4, 2, 1, 11, 10, 13, 7, 8, 15, 9, 12, 5, 6, 3, 0, 14,
        11, 8, 12, 7, 1, 14, 2, 13, 6, 15, 0, 9, 10, 4, 5, 3,
    ),
    (
        12, 1, 10, 15, 9, 2, 6, 8, 0, 13, 3, 4, 14, 7, 5, 11,
        10, 15, 4, 2, 7, 12, 9, 5, 6, 1, 13, 14, 0, 11, 3, 8,
        9, 14, 15, 5, 2, 8, 12, 3, 7, 0, 4, 10, 1, 13, 11, 6,
        4, 3, 2, 12, 9, 5, 15, 10, 11, 14, 1, 7, 6, 0, 8, 13,
    ),
    (
        4, 11, 2, 14, 15, 0, 8, 13, 3, 12, 9, 7, 5, 10, 6, 1,
        13, 0, 11, 7, 4, 9, 1, 10, 14, 3, 5, 12, 2, 15, 8, 6,
        1, 4, 11, 13, 12, 3, 7, 14, 10, 15, 6, 8, 0, 5, 9, 2,
        6, 11, 13, 8, 1, 4, 10, 7, 9, 5, 0, 15, 14, 2, 3, 12,
    ),
    (
        13, 2, 8, 4, 6, 15, 11, 1, 10, 9, 3, 14, 5, 0, 12, 7,
        1, 15, 13, 8, 10, 3, 7, 4, 12, 5, 6, 11, 0, 14, 9, 2,
        7, 11, 4, 1, 9, 12, 14, 2, 0, 6, 10, 13, 15, 3, 5, 8,
        2, 1, 14, 7, 4, 10, 8, 13, 15, 12, 9, 0, 3, 5, 6, 11,
    ),
)

# Permuted choice 1: 64-bit key -> 56 bits (drops parity bits).
_PC1 = (
    57, 49, 41, 33, 25, 17, 9,
    1, 58, 50, 42, 34, 26, 18,
    10, 2, 59, 51, 43, 35, 27,
    19, 11, 3, 60, 52, 44, 36,
    63, 55, 47, 39, 31, 23, 15,
    7, 62, 54, 46, 38, 30, 22,
    14, 6, 61, 53, 45, 37, 29,
    21, 13, 5, 28, 20, 12, 4,
)

# Permuted choice 2: 56 bits -> 48-bit round key.
_PC2 = (
    14, 17, 11, 24, 1, 5,
    3, 28, 15, 6, 21, 10,
    23, 19, 12, 4, 26, 8,
    16, 7, 27, 20, 13, 2,
    41, 52, 31, 37, 47, 55,
    30, 40, 51, 45, 33, 48,
    44, 49, 39, 56, 34, 53,
    46, 42, 50, 36, 29, 32,
)

# Left-rotation amounts per round.
_SHIFTS = (1, 1, 2, 2, 2, 2, 2, 2, 1, 2, 2, 2, 2, 2, 2, 1)


def _permute(value: int, in_width: int, table) -> int:
    """Permute ``value`` of ``in_width`` bits using a 1-indexed DES table."""
    out = 0
    for pos in table:
        out = (out << 1) | ((value >> (in_width - pos)) & 1)
    return out


def _byte_tables(in_width: int, table):
    """Build per-input-byte lookup tables for a bit-selection permutation.

    A permutation distributes each input bit independently, so the permuted
    value is the OR of per-byte contributions.  This turns a 64-bit
    permutation into 8 table lookups.
    """
    n_bytes = in_width // 8
    tables = []
    for byte_index in range(n_bytes):
        shift = in_width - 8 * (byte_index + 1)
        entries = [_permute(byte_value << shift, in_width, table)
                   for byte_value in range(256)]
        tables.append(tuple(entries))
    return tuple(tables)


def _rotl28(value: int, amount: int) -> int:
    return ((value << amount) | (value >> (28 - amount))) & 0xFFFFFFF


# Precompute, for each S-box, a 64-entry table mapping the 6-bit S-box
# input directly to the 32-bit output with permutation P already applied.
# This fuses the S-box lookup and P-permutation into a single table read,
# cutting the round function to 8 lookups and xors.
def _build_sp_boxes():
    boxes = []
    for box_index, sbox in enumerate(_SBOXES):
        table = []
        for chunk in range(64):
            row = ((chunk & 0x20) >> 4) | (chunk & 1)
            col = (chunk >> 1) & 0xF
            nibble = sbox[row * 16 + col]
            # Position the 4-bit output in the 32-bit pre-P word...
            pre_p = nibble << (4 * (7 - box_index))
            # ...then apply P to that word.
            table.append(_permute(pre_p, 32, _P))
        boxes.append(tuple(table))
    return tuple(boxes)


_SP = _build_sp_boxes()
_IP_TABLES = _byte_tables(64, _IP)
_FP_TABLES = _byte_tables(64, _FP)
_E_TABLES = _byte_tables(32, _E)

# Pair tables: fuse two byte/6-bit lookups into one wider read.  The
# 16-bit expansion tables map each half of the 32-bit Feistel input to
# its 48-bit expansion contribution; the 12-bit SP tables combine two
# adjacent S-boxes (with P applied) per read, halving the per-round
# lookup count.
_E16_HI = tuple(_E_TABLES[0][i >> 8] | _E_TABLES[1][i & 0xFF]
                for i in range(65536))
_E16_LO = tuple(_E_TABLES[2][i >> 8] | _E_TABLES[3][i & 0xFF]
                for i in range(65536))
_SP12 = tuple(tuple(_SP[2 * pair][i >> 6] | _SP[2 * pair + 1][i & 0x3F]
                    for i in range(4096))
              for pair in range(4))


def _fast_permute(value: int, tables, n_bytes: int, in_width: int) -> int:
    out = 0
    for byte_index in range(n_bytes):
        shift = in_width - 8 * (byte_index + 1)
        out |= tables[byte_index][(value >> shift) & 0xFF]
    return out


# The four weak keys (self-inverse schedules) and six semi-weak key
# pairs (K1 encrypts what K2 decrypts), FIPS 74 / Menezes et al. §7.4.3.
# Stored with odd parity as conventionally listed; comparison ignores
# parity bits since DES does.
WEAK_KEYS = tuple(bytes.fromhex(value) for value in (
    "0101010101010101", "FEFEFEFEFEFEFEFE",
    "E0E0E0E0F1F1F1F1", "1F1F1F1F0E0E0E0E",
))
SEMI_WEAK_KEYS = tuple(bytes.fromhex(value) for value in (
    "011F011F010E010E", "1F011F010E010E01",
    "01E001E001F101F1", "E001E001F101F101",
    "01FE01FE01FE01FE", "FE01FE01FE01FE01",
    "1FE01FE00EF10EF1", "E01FE01FF10EF10E",
    "1FFE1FFE0EFE0EFE", "FE1FFE1FFE0EFE0E",
    "E0FEE0FEF1FEF1FE", "FEE0FEE0FEF1FEF1",
))


def _strip_parity(key: bytes) -> bytes:
    """Zero each byte's parity bit (bit 0), which DES ignores."""
    return bytes(b & 0xFE for b in key)


# Parity-stripped membership sets (O(1) screening) plus a bounded memo of
# screening verdicts keyed on the raw key bytes, so the key server's
# safe-key rejection loop never rescans a key it has already screened
# (repeated constructions of the same key are common under the
# key-schedule cache).
_WEAK_STRIPPED = frozenset(_strip_parity(weak) for weak in WEAK_KEYS)
_SEMI_WEAK_STRIPPED = frozenset(_strip_parity(semi) for semi in SEMI_WEAK_KEYS)
_SCREEN_CACHE = {}
_SCREEN_CACHE_MAX = 4096


def _screen_key(key: bytes):
    """Cached ``(is_weak, is_semi_weak)`` verdict for an 8-byte key."""
    if len(key) != KEY_SIZE:
        raise ValueError(f"DES key must be {KEY_SIZE} bytes")
    verdict = _SCREEN_CACHE.get(key)
    if verdict is None:
        stripped = _strip_parity(key)
        verdict = (stripped in _WEAK_STRIPPED, stripped in _SEMI_WEAK_STRIPPED)
        if len(_SCREEN_CACHE) >= _SCREEN_CACHE_MAX:
            _SCREEN_CACHE.clear()
        _SCREEN_CACHE[key] = verdict
    return verdict


def is_weak_key(key: bytes) -> bool:
    """True for the four weak keys (encryption == decryption).

    A group key server must never issue one as key material — with a
    weak key, every eavesdropper's double-encryption is the identity.
    """
    return _screen_key(key)[0]


def is_semi_weak_key(key: bytes) -> bool:
    """True for the twelve semi-weak keys (paired inverse schedules)."""
    return _screen_key(key)[1]


class DES:
    """DES block cipher with a precomputed key schedule.

    >>> cipher = DES(bytes.fromhex("133457799BBCDFF1"))
    >>> cipher.encrypt_block(bytes.fromhex("0123456789ABCDEF")).hex()
    '85e813540f0ab405'
    """

    block_size = BLOCK_SIZE
    key_size = KEY_SIZE
    name = "des"

    def __init__(self, key: bytes):
        if len(key) != KEY_SIZE:
            raise ValueError(f"DES key must be {KEY_SIZE} bytes, got {len(key)}")
        self._round_keys = self._key_schedule(key)
        # Decryption walks the schedule backwards; reverse it once per
        # key instead of per block.
        self._round_keys_dec = tuple(reversed(self._round_keys))

    @staticmethod
    def _key_schedule(key: bytes):
        key_int = int.from_bytes(key, "big")
        permuted = _permute(key_int, 64, _PC1)
        c = (permuted >> 28) & 0xFFFFFFF
        d = permuted & 0xFFFFFFF
        round_keys = []
        for shift in _SHIFTS:
            c = _rotl28(c, shift)
            d = _rotl28(d, shift)
            round_keys.append(_permute((c << 28) | d, 56, _PC2))
        return tuple(round_keys)

    def _crypt_int(self, value: int, round_keys) -> int:
        ip0, ip1, ip2, ip3, ip4, ip5, ip6, ip7 = _IP_TABLES
        value = (ip0[(value >> 56) & 0xFF] | ip1[(value >> 48) & 0xFF]
                 | ip2[(value >> 40) & 0xFF] | ip3[(value >> 32) & 0xFF]
                 | ip4[(value >> 24) & 0xFF] | ip5[(value >> 16) & 0xFF]
                 | ip6[(value >> 8) & 0xFF] | ip7[value & 0xFF])
        left = (value >> 32) & 0xFFFFFFFF
        right = value & 0xFFFFFFFF
        e_hi, e_lo = _E16_HI, _E16_LO
        sp0, sp1, sp2, sp3 = _SP12
        for round_key in round_keys:
            x = (e_hi[right >> 16] | e_lo[right & 0xFFFF]) ^ round_key
            left, right = right, left ^ (
                sp0[(x >> 36) & 0xFFF] | sp1[(x >> 24) & 0xFFF]
                | sp2[(x >> 12) & 0xFFF] | sp3[x & 0xFFF])
        # Final swap: the last round's halves are exchanged before FP.
        combined = (right << 32) | left
        fp0, fp1, fp2, fp3, fp4, fp5, fp6, fp7 = _FP_TABLES
        return (fp0[(combined >> 56) & 0xFF] | fp1[(combined >> 48) & 0xFF]
                | fp2[(combined >> 40) & 0xFF] | fp3[(combined >> 32) & 0xFF]
                | fp4[(combined >> 24) & 0xFF] | fp5[(combined >> 16) & 0xFF]
                | fp6[(combined >> 8) & 0xFF] | fp7[combined & 0xFF])

    def encrypt_block_int(self, value: int) -> int:
        """Encrypt one block given (and returning) a 64-bit integer."""
        return self._crypt_int(value, self._round_keys)

    def decrypt_block_int(self, value: int) -> int:
        """Decrypt one block given (and returning) a 64-bit integer."""
        return self._crypt_int(value, self._round_keys_dec)

    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt one 8-byte block."""
        if len(block) != BLOCK_SIZE:
            raise ValueError("DES operates on 8-byte blocks")
        return self._crypt_int(int.from_bytes(block, "big"),
                               self._round_keys).to_bytes(8, "big")

    def decrypt_block(self, block: bytes) -> bytes:
        """Decrypt one 8-byte block."""
        if len(block) != BLOCK_SIZE:
            raise ValueError("DES operates on 8-byte blocks")
        return self._crypt_int(int.from_bytes(block, "big"),
                               self._round_keys_dec).to_bytes(8, "big")

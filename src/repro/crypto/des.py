"""Pure-Python DES block cipher (FIPS 46-3).

The paper's prototype encrypts rekey messages with DES-CBC from CryptoLib.
No C crypto library is available in this environment, so the cipher is
implemented here from the standard tables.  The implementation favours
clarity over raw speed but precomputes the key schedule and collapses the
expansion/S-box/permutation round function into table lookups so that the
benchmark harness can drive thousands of rekey operations.

Only the raw 64-bit block operations live here; chaining modes and padding
are in :mod:`repro.crypto.modes`.
"""

from __future__ import annotations

BLOCK_SIZE = 8
KEY_SIZE = 8

# Initial permutation (FIPS 46-3, 1-indexed source bit positions).
_IP = (
    58, 50, 42, 34, 26, 18, 10, 2,
    60, 52, 44, 36, 28, 20, 12, 4,
    62, 54, 46, 38, 30, 22, 14, 6,
    64, 56, 48, 40, 32, 24, 16, 8,
    57, 49, 41, 33, 25, 17, 9, 1,
    59, 51, 43, 35, 27, 19, 11, 3,
    61, 53, 45, 37, 29, 21, 13, 5,
    63, 55, 47, 39, 31, 23, 15, 7,
)

# Final permutation (inverse of IP).
_FP = (
    40, 8, 48, 16, 56, 24, 64, 32,
    39, 7, 47, 15, 55, 23, 63, 31,
    38, 6, 46, 14, 54, 22, 62, 30,
    37, 5, 45, 13, 53, 21, 61, 29,
    36, 4, 44, 12, 52, 20, 60, 28,
    35, 3, 43, 11, 51, 19, 59, 27,
    34, 2, 42, 10, 50, 18, 58, 26,
    33, 1, 41, 9, 49, 17, 57, 25,
)

# Expansion of the 32-bit half block to 48 bits.
_E = (
    32, 1, 2, 3, 4, 5,
    4, 5, 6, 7, 8, 9,
    8, 9, 10, 11, 12, 13,
    12, 13, 14, 15, 16, 17,
    16, 17, 18, 19, 20, 21,
    20, 21, 22, 23, 24, 25,
    24, 25, 26, 27, 28, 29,
    28, 29, 30, 31, 32, 1,
)

# Permutation applied to the S-box output.
_P = (
    16, 7, 20, 21,
    29, 12, 28, 17,
    1, 15, 23, 26,
    5, 18, 31, 10,
    2, 8, 24, 14,
    32, 27, 3, 9,
    19, 13, 30, 6,
    22, 11, 4, 25,
)

# The eight S-boxes, each 4 rows x 16 columns.
_SBOXES = (
    (
        14, 4, 13, 1, 2, 15, 11, 8, 3, 10, 6, 12, 5, 9, 0, 7,
        0, 15, 7, 4, 14, 2, 13, 1, 10, 6, 12, 11, 9, 5, 3, 8,
        4, 1, 14, 8, 13, 6, 2, 11, 15, 12, 9, 7, 3, 10, 5, 0,
        15, 12, 8, 2, 4, 9, 1, 7, 5, 11, 3, 14, 10, 0, 6, 13,
    ),
    (
        15, 1, 8, 14, 6, 11, 3, 4, 9, 7, 2, 13, 12, 0, 5, 10,
        3, 13, 4, 7, 15, 2, 8, 14, 12, 0, 1, 10, 6, 9, 11, 5,
        0, 14, 7, 11, 10, 4, 13, 1, 5, 8, 12, 6, 9, 3, 2, 15,
        13, 8, 10, 1, 3, 15, 4, 2, 11, 6, 7, 12, 0, 5, 14, 9,
    ),
    (
        10, 0, 9, 14, 6, 3, 15, 5, 1, 13, 12, 7, 11, 4, 2, 8,
        13, 7, 0, 9, 3, 4, 6, 10, 2, 8, 5, 14, 12, 11, 15, 1,
        13, 6, 4, 9, 8, 15, 3, 0, 11, 1, 2, 12, 5, 10, 14, 7,
        1, 10, 13, 0, 6, 9, 8, 7, 4, 15, 14, 3, 11, 5, 2, 12,
    ),
    (
        7, 13, 14, 3, 0, 6, 9, 10, 1, 2, 8, 5, 11, 12, 4, 15,
        13, 8, 11, 5, 6, 15, 0, 3, 4, 7, 2, 12, 1, 10, 14, 9,
        10, 6, 9, 0, 12, 11, 7, 13, 15, 1, 3, 14, 5, 2, 8, 4,
        3, 15, 0, 6, 10, 1, 13, 8, 9, 4, 5, 11, 12, 7, 2, 14,
    ),
    (
        2, 12, 4, 1, 7, 10, 11, 6, 8, 5, 3, 15, 13, 0, 14, 9,
        14, 11, 2, 12, 4, 7, 13, 1, 5, 0, 15, 10, 3, 9, 8, 6,
        4, 2, 1, 11, 10, 13, 7, 8, 15, 9, 12, 5, 6, 3, 0, 14,
        11, 8, 12, 7, 1, 14, 2, 13, 6, 15, 0, 9, 10, 4, 5, 3,
    ),
    (
        12, 1, 10, 15, 9, 2, 6, 8, 0, 13, 3, 4, 14, 7, 5, 11,
        10, 15, 4, 2, 7, 12, 9, 5, 6, 1, 13, 14, 0, 11, 3, 8,
        9, 14, 15, 5, 2, 8, 12, 3, 7, 0, 4, 10, 1, 13, 11, 6,
        4, 3, 2, 12, 9, 5, 15, 10, 11, 14, 1, 7, 6, 0, 8, 13,
    ),
    (
        4, 11, 2, 14, 15, 0, 8, 13, 3, 12, 9, 7, 5, 10, 6, 1,
        13, 0, 11, 7, 4, 9, 1, 10, 14, 3, 5, 12, 2, 15, 8, 6,
        1, 4, 11, 13, 12, 3, 7, 14, 10, 15, 6, 8, 0, 5, 9, 2,
        6, 11, 13, 8, 1, 4, 10, 7, 9, 5, 0, 15, 14, 2, 3, 12,
    ),
    (
        13, 2, 8, 4, 6, 15, 11, 1, 10, 9, 3, 14, 5, 0, 12, 7,
        1, 15, 13, 8, 10, 3, 7, 4, 12, 5, 6, 11, 0, 14, 9, 2,
        7, 11, 4, 1, 9, 12, 14, 2, 0, 6, 10, 13, 15, 3, 5, 8,
        2, 1, 14, 7, 4, 10, 8, 13, 15, 12, 9, 0, 3, 5, 6, 11,
    ),
)

# Permuted choice 1: 64-bit key -> 56 bits (drops parity bits).
_PC1 = (
    57, 49, 41, 33, 25, 17, 9,
    1, 58, 50, 42, 34, 26, 18,
    10, 2, 59, 51, 43, 35, 27,
    19, 11, 3, 60, 52, 44, 36,
    63, 55, 47, 39, 31, 23, 15,
    7, 62, 54, 46, 38, 30, 22,
    14, 6, 61, 53, 45, 37, 29,
    21, 13, 5, 28, 20, 12, 4,
)

# Permuted choice 2: 56 bits -> 48-bit round key.
_PC2 = (
    14, 17, 11, 24, 1, 5,
    3, 28, 15, 6, 21, 10,
    23, 19, 12, 4, 26, 8,
    16, 7, 27, 20, 13, 2,
    41, 52, 31, 37, 47, 55,
    30, 40, 51, 45, 33, 48,
    44, 49, 39, 56, 34, 53,
    46, 42, 50, 36, 29, 32,
)

# Left-rotation amounts per round.
_SHIFTS = (1, 1, 2, 2, 2, 2, 2, 2, 1, 2, 2, 2, 2, 2, 2, 1)


def _permute(value: int, in_width: int, table) -> int:
    """Permute ``value`` of ``in_width`` bits using a 1-indexed DES table."""
    out = 0
    for pos in table:
        out = (out << 1) | ((value >> (in_width - pos)) & 1)
    return out


def _byte_tables(in_width: int, table):
    """Build per-input-byte lookup tables for a bit-selection permutation.

    A permutation distributes each input bit independently, so the permuted
    value is the OR of per-byte contributions.  This turns a 64-bit
    permutation into 8 table lookups.
    """
    n_bytes = in_width // 8
    tables = []
    for byte_index in range(n_bytes):
        shift = in_width - 8 * (byte_index + 1)
        entries = [_permute(byte_value << shift, in_width, table)
                   for byte_value in range(256)]
        tables.append(tuple(entries))
    return tuple(tables)


def _rotl28(value: int, amount: int) -> int:
    return ((value << amount) | (value >> (28 - amount))) & 0xFFFFFFF


# Precompute, for each S-box, a 64-entry table mapping the 6-bit S-box
# input directly to the 32-bit output with permutation P already applied.
# This fuses the S-box lookup and P-permutation into a single table read,
# cutting the round function to 8 lookups and xors.
def _build_sp_boxes():
    boxes = []
    for box_index, sbox in enumerate(_SBOXES):
        table = []
        for chunk in range(64):
            row = ((chunk & 0x20) >> 4) | (chunk & 1)
            col = (chunk >> 1) & 0xF
            nibble = sbox[row * 16 + col]
            # Position the 4-bit output in the 32-bit pre-P word...
            pre_p = nibble << (4 * (7 - box_index))
            # ...then apply P to that word.
            table.append(_permute(pre_p, 32, _P))
        boxes.append(tuple(table))
    return tuple(boxes)


_SP = _build_sp_boxes()
_IP_TABLES = _byte_tables(64, _IP)
_FP_TABLES = _byte_tables(64, _FP)
_E_TABLES = _byte_tables(32, _E)


def _fast_permute(value: int, tables, n_bytes: int, in_width: int) -> int:
    out = 0
    for byte_index in range(n_bytes):
        shift = in_width - 8 * (byte_index + 1)
        out |= tables[byte_index][(value >> shift) & 0xFF]
    return out


# The four weak keys (self-inverse schedules) and six semi-weak key
# pairs (K1 encrypts what K2 decrypts), FIPS 74 / Menezes et al. §7.4.3.
# Stored with odd parity as conventionally listed; comparison ignores
# parity bits since DES does.
WEAK_KEYS = tuple(bytes.fromhex(value) for value in (
    "0101010101010101", "FEFEFEFEFEFEFEFE",
    "E0E0E0E0F1F1F1F1", "1F1F1F1F0E0E0E0E",
))
SEMI_WEAK_KEYS = tuple(bytes.fromhex(value) for value in (
    "011F011F010E010E", "1F011F010E010E01",
    "01E001E001F101F1", "E001E001F101F101",
    "01FE01FE01FE01FE", "FE01FE01FE01FE01",
    "1FE01FE00EF10EF1", "E01FE01FF10EF10E",
    "1FFE1FFE0EFE0EFE", "FE1FFE1FFE0EFE0E",
    "E0FEE0FEF1FEF1FE", "FEE0FEE0FEF1FEF1",
))


def _strip_parity(key: bytes) -> bytes:
    """Zero each byte's parity bit (bit 0), which DES ignores."""
    return bytes(b & 0xFE for b in key)


def is_weak_key(key: bytes) -> bool:
    """True for the four weak keys (encryption == decryption).

    A group key server must never issue one as key material — with a
    weak key, every eavesdropper's double-encryption is the identity.
    """
    if len(key) != KEY_SIZE:
        raise ValueError(f"DES key must be {KEY_SIZE} bytes")
    stripped = _strip_parity(key)
    return any(stripped == _strip_parity(weak) for weak in WEAK_KEYS)


def is_semi_weak_key(key: bytes) -> bool:
    """True for the twelve semi-weak keys (paired inverse schedules)."""
    if len(key) != KEY_SIZE:
        raise ValueError(f"DES key must be {KEY_SIZE} bytes")
    stripped = _strip_parity(key)
    return any(stripped == _strip_parity(semi) for semi in SEMI_WEAK_KEYS)


class DES:
    """DES block cipher with a precomputed key schedule.

    >>> cipher = DES(bytes.fromhex("133457799BBCDFF1"))
    >>> cipher.encrypt_block(bytes.fromhex("0123456789ABCDEF")).hex()
    '85e813540f0ab405'
    """

    block_size = BLOCK_SIZE
    key_size = KEY_SIZE
    name = "des"

    def __init__(self, key: bytes):
        if len(key) != KEY_SIZE:
            raise ValueError(f"DES key must be {KEY_SIZE} bytes, got {len(key)}")
        self._round_keys = self._key_schedule(key)

    @staticmethod
    def _key_schedule(key: bytes):
        key_int = int.from_bytes(key, "big")
        permuted = _permute(key_int, 64, _PC1)
        c = (permuted >> 28) & 0xFFFFFFF
        d = permuted & 0xFFFFFFF
        round_keys = []
        for shift in _SHIFTS:
            c = _rotl28(c, shift)
            d = _rotl28(d, shift)
            round_keys.append(_permute((c << 28) | d, 56, _PC2))
        return tuple(round_keys)

    @staticmethod
    def _feistel(half: int, round_key: int) -> int:
        e0, e1, e2, e3 = _E_TABLES
        expanded = (e0[(half >> 24) & 0xFF] | e1[(half >> 16) & 0xFF]
                    | e2[(half >> 8) & 0xFF] | e3[half & 0xFF]) ^ round_key
        sp = _SP
        return (sp[0][(expanded >> 42) & 0x3F] | sp[1][(expanded >> 36) & 0x3F]
                | sp[2][(expanded >> 30) & 0x3F] | sp[3][(expanded >> 24) & 0x3F]
                | sp[4][(expanded >> 18) & 0x3F] | sp[5][(expanded >> 12) & 0x3F]
                | sp[6][(expanded >> 6) & 0x3F] | sp[7][expanded & 0x3F])

    def _crypt_block(self, block: bytes, round_keys) -> bytes:
        value = _fast_permute(int.from_bytes(block, "big"), _IP_TABLES, 8, 64)
        left = (value >> 32) & 0xFFFFFFFF
        right = value & 0xFFFFFFFF
        feistel = self._feistel
        for round_key in round_keys:
            left, right = right, left ^ feistel(right, round_key)
        # Final swap: the last round's halves are exchanged before FP.
        combined = (right << 32) | left
        return _fast_permute(combined, _FP_TABLES, 8, 64).to_bytes(8, "big")

    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt one 8-byte block."""
        if len(block) != BLOCK_SIZE:
            raise ValueError("DES operates on 8-byte blocks")
        return self._crypt_block(block, self._round_keys)

    def decrypt_block(self, block: bytes) -> bytes:
        """Decrypt one 8-byte block."""
        if len(block) != BLOCK_SIZE:
            raise ValueError("DES operates on 8-byte blocks")
        return self._crypt_block(block, tuple(reversed(self._round_keys)))

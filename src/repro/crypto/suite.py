"""Cipher suites: the (cipher, digest, signature) triples the server uses.

The paper's server "is initialized from a specification file which
determines ... the encryption algorithm, the message digest algorithm,
the digital signature algorithm".  A :class:`CipherSuite` captures that
triple.  The paper's configuration is DES-CBC + MD5 + RSA-512; a modern
AES + SHA-256 + RSA-1024 suite and digest/signature-free variants (used
by the left-hand sides of Figures 10 and 11) are also provided.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, Optional

from .aes import AES
from .des import DES, is_semi_weak_key, is_weak_key
from .des3 import TripleDES
from . import modes
from .keycache import SHARED_CACHE
from .md5 import md5
from .sha1 import sha1
from . import rsa


class XorCipher:
    """Key-stream XOR "cipher" for fast structural tests.

    NOT SECURE.  It exists so that protocol-shape tests can run orders of
    magnitude faster than with DES; every security-property test uses a
    real cipher.
    """

    block_size = 8
    key_size = 8
    name = "xor"

    def __init__(self, key: bytes):
        if len(key) != self.key_size:
            raise ValueError(f"Xor key must be {self.key_size} bytes")
        self._key = key

    def _crypt(self, block: bytes) -> bytes:
        return bytes(b ^ k for b, k in zip(block, self._key))

    def encrypt_block(self, block: bytes) -> bytes:
        """XOR with the key (self-inverse; NOT secure)."""
        return self._crypt(block)

    def decrypt_block(self, block: bytes) -> bytes:
        """XOR with the key (self-inverse; NOT secure)."""
        return self._crypt(block)


_CIPHERS = {
    "des": (DES, 8),
    "des3": (TripleDES, 24),
    "des3-2key": (TripleDES, 16),
    "aes128": (AES, 16),
    "aes256": (AES, 32),
    "xor": (XorCipher, 8),
}

# Digest name -> (factory, size).  Pure-Python implementations are the
# default (self-contained reproduction); the hashlib-backed variants allow
# like-for-like speed comparisons.
_DIGESTS = {
    "md5": (md5, 16),
    "sha1": (sha1, 20),
    "md5-hashlib": (hashlib.md5, 16),
    "sha1-hashlib": (hashlib.sha1, 20),
    "sha256": (hashlib.sha256, 32),
}

# Map suite digest names onto RSA DigestInfo algorithm names.
RSA_DIGEST_NAME = {
    "md5": "md5",
    "md5-hashlib": "md5",
    "sha1": "sha1",
    "sha1-hashlib": "sha1",
    "sha256": "sha256",
}


@dataclass(frozen=True)
class CipherSuite:
    """A (symmetric cipher, message digest, signature) configuration.

    ``digest_name`` / ``signature_bits`` of ``None`` mean the corresponding
    protection is disabled (the paper measures both configurations).
    """

    cipher_name: str
    digest_name: Optional[str] = None
    signature_bits: Optional[int] = None

    def __post_init__(self):
        if self.cipher_name not in _CIPHERS:
            raise ValueError(f"unknown cipher {self.cipher_name!r}")
        if self.digest_name is not None and self.digest_name not in _DIGESTS:
            raise ValueError(f"unknown digest {self.digest_name!r}")
        if self.signature_bits is not None:
            if self.digest_name is None:
                raise ValueError("signing requires a message digest")
            if self.signature_bits < 256:
                raise ValueError("signature modulus must be >= 256 bits")

    # -- symmetric encryption -------------------------------------------

    @property
    def key_size(self) -> int:
        """Size in bytes of the symmetric keys managed by the key graph."""
        return _CIPHERS[self.cipher_name][1]

    @property
    def block_size(self) -> int:
        """Cipher block size in bytes."""
        return _CIPHERS[self.cipher_name][0].block_size

    def safe_key(self, source) -> bytes:
        """Draw key material from ``source``, rejecting DES (semi-)weak keys.

        With a weak key, DES encryption equals decryption — unacceptable
        as group key material.  The rejection probability is ~2**-52, so
        this is insurance, not a hot path.
        """
        while True:
            key = source.generate(self.key_size)
            if self.cipher_name in ("des", "des3", "des3-2key"):
                subkeys = [key[i:i + 8] for i in range(0, len(key), 8)]
                if any(is_weak_key(sub) or is_semi_weak_key(sub)
                       for sub in subkeys):
                    continue
            return key

    def new_cipher(self, key: bytes):
        """Cipher object for ``key`` (cached — schedules are expanded once).

        Instances come from :data:`repro.crypto.keycache.SHARED_CACHE`, so
        repeated encryptions under the same key (the common case during a
        rekey) skip key-schedule expansion.  Cipher objects are immutable
        after construction, so sharing is safe; distinct key bytes always
        map to distinct cache entries.  ``XorCipher`` (test-only, trivial
        constructor) bypasses the cache.
        """
        cipher_cls, key_size = _CIPHERS[self.cipher_name]
        if len(key) != key_size:
            raise ValueError(
                f"{self.cipher_name} key must be {key_size} bytes, got {len(key)}")
        if cipher_cls is XorCipher:
            return cipher_cls(key)
        return SHARED_CACHE.get(self.cipher_name, key, cipher_cls)

    def encrypt(self, key: bytes, plaintext: bytes, iv: bytes) -> bytes:
        """CBC-encrypt ``plaintext`` under ``key`` with explicit ``iv``."""
        return modes.cbc_encrypt(self.new_cipher(key), plaintext, iv)

    def decrypt(self, key: bytes, ciphertext: bytes, iv: bytes) -> bytes:
        """CBC-decrypt; raises ``modes.PaddingError`` on garbage."""
        return modes.cbc_decrypt(self.new_cipher(key), ciphertext, iv)

    # -- digests ----------------------------------------------------------

    @property
    def digest_size(self) -> int:
        """Digest size in bytes (0 when digests are off)."""
        if self.digest_name is None:
            return 0
        return _DIGESTS[self.digest_name][1]

    @property
    def digest_factory(self) -> Optional[Callable]:
        """hashlib-style constructor for the suite digest (or None)."""
        if self.digest_name is None:
            return None
        return _DIGESTS[self.digest_name][0]

    def digest(self, data: bytes) -> bytes:
        """Message digest of ``data`` (empty bytes when digests are off)."""
        if self.digest_name is None:
            return b""
        return _DIGESTS[self.digest_name][0](data).digest()

    # -- signatures -------------------------------------------------------

    @property
    def signature_size(self) -> int:
        """Signature size in bytes (0 when signing is off)."""
        if self.signature_bits is None:
            return 0
        return (self.signature_bits + 7) // 8

    @property
    def signs(self) -> bool:
        """True iff the suite carries a signature algorithm."""
        return self.signature_bits is not None

    def generate_signing_keypair(self, seed: Optional[bytes] = None):
        """Fresh RSA keypair of the suite's modulus size."""
        if self.signature_bits is None:
            raise ValueError("suite has no signature algorithm")
        return rsa.generate_keypair(self.signature_bits, seed=seed)

    def sign(self, private_key, data: bytes) -> bytes:
        """Digest-then-sign ``data`` with RSA PKCS#1 v1.5."""
        if self.signature_bits is None:
            raise ValueError("suite has no signature algorithm")
        return rsa.sign_digest(private_key, self.digest(data),
                               RSA_DIGEST_NAME[self.digest_name])

    def verify(self, public_key, data: bytes, signature: bytes) -> None:
        """Verify a signature; raises :class:`rsa.SignatureError`."""
        if self.signature_bits is None:
            raise ValueError("suite has no signature algorithm")
        rsa.verify_digest(public_key, self.digest(data), signature,
                          RSA_DIGEST_NAME[self.digest_name])


# The configurations the paper's experiments exercise.
PAPER_SUITE = CipherSuite("des", "md5", 512)          # right-hand figures
PAPER_SUITE_NO_SIG = CipherSuite("des", "md5", None)  # digest, no signature
PAPER_SUITE_ENC_ONLY = CipherSuite("des", None, None)  # left-hand figures
MODERN_SUITE = CipherSuite("aes128", "sha256", 1024)
FAST_TEST_SUITE = CipherSuite("xor", None, None)


def suite_from_spec(cipher: str = "des", digest: Optional[str] = "md5",
                    signature: Optional[str] = "rsa-512") -> CipherSuite:
    """Build a suite from specification-file style strings.

    ``signature`` accepts ``"rsa-<bits>"`` or ``None``/``"none"``.
    """
    if digest in (None, "none"):
        digest = None
    if signature in (None, "none"):
        bits = None
    elif signature.startswith("rsa-"):
        bits = int(signature[len("rsa-"):])
    else:
        raise ValueError(f"unknown signature spec {signature!r}")
    return CipherSuite(cipher, digest, bits)

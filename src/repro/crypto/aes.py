"""Pure-Python AES (FIPS 197) supporting 128/192/256-bit keys.

The paper predates AES; it is provided here as the "modern" cipher-suite
option so experiments can be repeated with a contemporary cipher (and so
the optimal-degree and strategy-ordering conclusions can be shown to be
independent of the block cipher).

The S-box and round constants are *derived* (GF(2^8) inversion + affine
transform) rather than transcribed, eliminating table-typo risk; the
implementation is validated against the FIPS 197 appendix vectors in the
test suite.
"""

from __future__ import annotations

BLOCK_SIZE = 16


def _xtime(a: int) -> int:
    a <<= 1
    if a & 0x100:
        a ^= 0x11B
    return a & 0xFF


def _gf_mul(a: int, b: int) -> int:
    result = 0
    while b:
        if b & 1:
            result ^= a
        a = _xtime(a)
        b >>= 1
    return result


def _build_sbox():
    # Multiplicative inverses in GF(2^8) via exp/log tables on generator 3.
    exp = [0] * 256
    log = [0] * 256
    value = 1
    for i in range(255):
        exp[i] = value
        log[value] = i
        value = _gf_mul(value, 3)
    exp[255] = exp[0]

    def inverse(a):
        if a == 0:
            return 0
        return exp[255 - log[a]]

    sbox = [0] * 256
    for a in range(256):
        inv = inverse(a)
        # Affine transform: b = inv ^ rotl(inv,1..4) ^ 0x63
        b = inv
        for rotation in range(1, 5):
            b ^= ((inv << rotation) | (inv >> (8 - rotation))) & 0xFF
        sbox[a] = b ^ 0x63
    return tuple(sbox)


_SBOX = _build_sbox()
_INV_SBOX = tuple(_SBOX.index(i) for i in range(256))
_RCON = []
_value = 1
for _ in range(14):
    _RCON.append(_value)
    _value = _xtime(_value)
_RCON = tuple(_RCON)

# T-tables for the forward rounds: combined SubBytes + MixColumns.
_MUL2 = tuple(_gf_mul(s, 2) for s in _SBOX)
_MUL3 = tuple(_gf_mul(s, 3) for s in _SBOX)
_INV_MUL = {factor: tuple(_gf_mul(x, factor) for x in range(256))
            for factor in (9, 11, 13, 14)}


class AES:
    """AES block cipher; key may be 16, 24 or 32 bytes.

    >>> key = bytes(range(16))
    >>> AES(key).encrypt_block(bytes.fromhex(
    ...     "00112233445566778899aabbccddeeff")).hex()
    '69c4e0d86a7b0430d8cdb78070b4c55a'
    """

    block_size = BLOCK_SIZE
    name = "aes"

    def __init__(self, key: bytes):
        if len(key) not in (16, 24, 32):
            raise ValueError("AES key must be 16, 24 or 32 bytes")
        self.key_size = len(key)
        self._rounds = {16: 10, 24: 12, 32: 14}[len(key)]
        self._round_keys = self._expand_key(key)

    def _expand_key(self, key: bytes):
        nk = len(key) // 4
        words = [list(key[4 * i:4 * i + 4]) for i in range(nk)]
        total_words = 4 * (self._rounds + 1)
        for i in range(nk, total_words):
            temp = list(words[i - 1])
            if i % nk == 0:
                temp = temp[1:] + temp[:1]
                temp = [_SBOX[b] for b in temp]
                temp[0] ^= _RCON[i // nk - 1]
            elif nk > 6 and i % nk == 4:
                temp = [_SBOX[b] for b in temp]
            words.append([words[i - nk][j] ^ temp[j] for j in range(4)])
        # Group into per-round 16-byte keys (column-major state order).
        round_keys = []
        for round_index in range(self._rounds + 1):
            flat = []
            for word in words[4 * round_index:4 * round_index + 4]:
                flat.extend(word)
            round_keys.append(tuple(flat))
        return tuple(round_keys)

    @staticmethod
    def _add_round_key(state, round_key):
        return [state[i] ^ round_key[i] for i in range(16)]

    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt one 16-byte block."""
        if len(block) != BLOCK_SIZE:
            raise ValueError("AES operates on 16-byte blocks")
        state = self._add_round_key(list(block), self._round_keys[0])
        sbox, mul2, mul3 = _SBOX, _MUL2, _MUL3
        for round_index in range(1, self._rounds):
            rk = self._round_keys[round_index]
            new = [0] * 16
            # Fused SubBytes + ShiftRows + MixColumns per column.
            for col in range(4):
                s0 = state[4 * col]
                s1 = state[(4 * col + 5) % 16]
                s2 = state[(4 * col + 10) % 16]
                s3 = state[(4 * col + 15) % 16]
                new[4 * col] = mul2[s0] ^ mul3[s1] ^ sbox[s2] ^ sbox[s3] ^ rk[4 * col]
                new[4 * col + 1] = sbox[s0] ^ mul2[s1] ^ mul3[s2] ^ sbox[s3] ^ rk[4 * col + 1]
                new[4 * col + 2] = sbox[s0] ^ sbox[s1] ^ mul2[s2] ^ mul3[s3] ^ rk[4 * col + 2]
                new[4 * col + 3] = mul3[s0] ^ sbox[s1] ^ sbox[s2] ^ mul2[s3] ^ rk[4 * col + 3]
            state = new
        # Final round: SubBytes + ShiftRows + AddRoundKey (no MixColumns).
        rk = self._round_keys[self._rounds]
        final = [0] * 16
        for col in range(4):
            final[4 * col] = sbox[state[4 * col]] ^ rk[4 * col]
            final[4 * col + 1] = sbox[state[(4 * col + 5) % 16]] ^ rk[4 * col + 1]
            final[4 * col + 2] = sbox[state[(4 * col + 10) % 16]] ^ rk[4 * col + 2]
            final[4 * col + 3] = sbox[state[(4 * col + 15) % 16]] ^ rk[4 * col + 3]
        return bytes(final)

    def decrypt_block(self, block: bytes) -> bytes:
        """Decrypt one 16-byte block."""
        if len(block) != BLOCK_SIZE:
            raise ValueError("AES operates on 16-byte blocks")
        inv_sbox = _INV_SBOX
        mul9, mul11 = _INV_MUL[9], _INV_MUL[11]
        mul13, mul14 = _INV_MUL[13], _INV_MUL[14]
        state = self._add_round_key(list(block), self._round_keys[self._rounds])
        # Inverse final round: InvShiftRows + InvSubBytes.
        state = self._inv_shift_sub(state, inv_sbox)
        for round_index in range(self._rounds - 1, 0, -1):
            state = self._add_round_key(state, self._round_keys[round_index])
            new = [0] * 16
            for col in range(4):
                s0, s1, s2, s3 = state[4 * col:4 * col + 4]
                new[4 * col] = mul14[s0] ^ mul11[s1] ^ mul13[s2] ^ mul9[s3]
                new[4 * col + 1] = mul9[s0] ^ mul14[s1] ^ mul11[s2] ^ mul13[s3]
                new[4 * col + 2] = mul13[s0] ^ mul9[s1] ^ mul14[s2] ^ mul11[s3]
                new[4 * col + 3] = mul11[s0] ^ mul13[s1] ^ mul9[s2] ^ mul14[s3]
            state = self._inv_shift_sub(new, inv_sbox)
        state = self._add_round_key(state, self._round_keys[0])
        return bytes(state)

    @staticmethod
    def _inv_shift_sub(state, inv_sbox):
        new = [0] * 16
        for col in range(4):
            new[4 * col] = inv_sbox[state[4 * col]]
            new[4 * col + 1] = inv_sbox[state[(4 * col + 13) % 16]]
            new[4 * col + 2] = inv_sbox[state[(4 * col + 10) % 16]]
            new[4 * col + 3] = inv_sbox[state[(4 * col + 7) % 16]]
        return new

"""Pure-Python AES (FIPS 197) supporting 128/192/256-bit keys.

The paper predates AES; it is provided here as the "modern" cipher-suite
option so experiments can be repeated with a contemporary cipher (and so
the optimal-degree and strategy-ordering conclusions can be shown to be
independent of the block cipher).

The S-box and round constants are *derived* (GF(2^8) inversion + affine
transform) rather than transcribed, eliminating table-typo risk; the
implementation is validated against the FIPS 197 appendix vectors in the
test suite.

Fast path: the rounds are table-driven.  Four 256-entry "T-tables"
(built once at import) fuse SubBytes + ShiftRows + MixColumns into four
32-bit lookups per output column, and the state is carried as four
32-bit column words instead of sixteen bytes.  Decryption uses the
FIPS 197 §5.3.5 *equivalent inverse cipher*: inverse T-tables plus a
decryption key schedule pre-transformed through InvMixColumns, computed
once per key in ``__init__``.  The byte-wise pre-optimization rounds are
preserved in :mod:`repro.crypto.reference` and the two are pinned equal
on random blocks by the test suite.
"""

from __future__ import annotations

BLOCK_SIZE = 16


def _xtime(a: int) -> int:
    a <<= 1
    if a & 0x100:
        a ^= 0x11B
    return a & 0xFF


def _gf_mul(a: int, b: int) -> int:
    result = 0
    while b:
        if b & 1:
            result ^= a
        a = _xtime(a)
        b >>= 1
    return result


def _build_sbox():
    # Multiplicative inverses in GF(2^8) via exp/log tables on generator 3.
    exp = [0] * 256
    log = [0] * 256
    value = 1
    for i in range(255):
        exp[i] = value
        log[value] = i
        value = _gf_mul(value, 3)
    exp[255] = exp[0]

    def inverse(a):
        if a == 0:
            return 0
        return exp[255 - log[a]]

    sbox = [0] * 256
    for a in range(256):
        inv = inverse(a)
        # Affine transform: b = inv ^ rotl(inv,1..4) ^ 0x63
        b = inv
        for rotation in range(1, 5):
            b ^= ((inv << rotation) | (inv >> (8 - rotation))) & 0xFF
        sbox[a] = b ^ 0x63
    return tuple(sbox)


_SBOX = _build_sbox()
_INV_SBOX = tuple(_SBOX.index(i) for i in range(256))
_RCON = []
_value = 1
for _ in range(14):
    _RCON.append(_value)
    _value = _xtime(_value)
_RCON = tuple(_RCON)

# GF(2^8) multiple tables: forward (through the S-box) and inverse (raw).
_MUL2 = tuple(_gf_mul(s, 2) for s in _SBOX)
_MUL3 = tuple(_gf_mul(s, 3) for s in _SBOX)
_INV_MUL = {factor: tuple(_gf_mul(x, factor) for x in range(256))
            for factor in (9, 11, 13, 14)}

# Forward T-tables: T_j[x] is the contribution of state byte x (arriving
# via ShiftRows from row j) to the packed output column word, with
# SubBytes and MixColumns applied.  One round column is then four
# lookups and four xors:
#   N_c = T0[b0(W_c)] ^ T1[b1(W_{c+1})] ^ T2[b2(W_{c+2})] ^ T3[b3(W_{c+3})] ^ RK_c
_T0 = tuple((_MUL2[x] << 24) | (_SBOX[x] << 16) | (_SBOX[x] << 8) | _MUL3[x]
            for x in range(256))
_T1 = tuple((_MUL3[x] << 24) | (_MUL2[x] << 16) | (_SBOX[x] << 8) | _SBOX[x]
            for x in range(256))
_T2 = tuple((_SBOX[x] << 24) | (_MUL3[x] << 16) | (_MUL2[x] << 8) | _SBOX[x]
            for x in range(256))
_T3 = tuple((_SBOX[x] << 24) | (_SBOX[x] << 16) | (_MUL3[x] << 8) | _MUL2[x]
            for x in range(256))

# Inverse T-tables for the equivalent inverse cipher: InvSubBytes then
# InvMixColumns, indexed by the raw state byte (InvShiftRows is the
# column-rotation in the lookup pattern).
_m9, _m11 = _INV_MUL[9], _INV_MUL[11]
_m13, _m14 = _INV_MUL[13], _INV_MUL[14]
_TD0 = tuple((_m14[v] << 24) | (_m9[v] << 16) | (_m13[v] << 8) | _m11[v]
             for v in _INV_SBOX)
_TD1 = tuple((_m11[v] << 24) | (_m14[v] << 16) | (_m9[v] << 8) | _m13[v]
             for v in _INV_SBOX)
_TD2 = tuple((_m13[v] << 24) | (_m11[v] << 16) | (_m14[v] << 8) | _m9[v]
             for v in _INV_SBOX)
_TD3 = tuple((_m9[v] << 24) | (_m13[v] << 16) | (_m11[v] << 8) | _m14[v]
             for v in _INV_SBOX)


def _inv_mix_word(word: int) -> int:
    """InvMixColumns of one packed column word (for the decrypt schedule)."""
    b0 = (word >> 24) & 0xFF
    b1 = (word >> 16) & 0xFF
    b2 = (word >> 8) & 0xFF
    b3 = word & 0xFF
    return (((_m14[b0] ^ _m11[b1] ^ _m13[b2] ^ _m9[b3]) << 24)
            | ((_m9[b0] ^ _m14[b1] ^ _m11[b2] ^ _m13[b3]) << 16)
            | ((_m13[b0] ^ _m9[b1] ^ _m14[b2] ^ _m11[b3]) << 8)
            | (_m11[b0] ^ _m13[b1] ^ _m9[b2] ^ _m14[b3]))


class AES:
    """AES block cipher; key may be 16, 24 or 32 bytes.

    >>> key = bytes(range(16))
    >>> AES(key).encrypt_block(bytes.fromhex(
    ...     "00112233445566778899aabbccddeeff")).hex()
    '69c4e0d86a7b0430d8cdb78070b4c55a'
    """

    block_size = BLOCK_SIZE
    name = "aes"

    def __init__(self, key: bytes):
        if len(key) not in (16, 24, 32):
            raise ValueError("AES key must be 16, 24 or 32 bytes")
        self.key_size = len(key)
        self._rounds = {16: 10, 24: 12, 32: 14}[len(key)]
        self._rk = self._expand_key(key)
        self._drk = self._decrypt_schedule(self._rk)

    def _expand_key(self, key: bytes):
        """FIPS 197 key expansion, producing packed 32-bit column words."""
        nk = len(key) // 4
        sbox = _SBOX
        words = [int.from_bytes(key[4 * i:4 * i + 4], "big")
                 for i in range(nk)]
        for i in range(nk, 4 * (self._rounds + 1)):
            temp = words[i - 1]
            if i % nk == 0:
                # RotWord then SubWord then Rcon on the top byte.
                temp = ((temp << 8) | (temp >> 24)) & 0xFFFFFFFF
                temp = ((sbox[temp >> 24] << 24)
                        | (sbox[(temp >> 16) & 0xFF] << 16)
                        | (sbox[(temp >> 8) & 0xFF] << 8)
                        | sbox[temp & 0xFF])
                temp ^= _RCON[i // nk - 1] << 24
            elif nk > 6 and i % nk == 4:
                temp = ((sbox[temp >> 24] << 24)
                        | (sbox[(temp >> 16) & 0xFF] << 16)
                        | (sbox[(temp >> 8) & 0xFF] << 8)
                        | sbox[temp & 0xFF])
            words.append(words[i - nk] ^ temp)
        return tuple(words)

    def _decrypt_schedule(self, rk):
        """Round keys for the equivalent inverse cipher, in usage order.

        Layout: rk[last round], then InvMixColumns of rounds Nr-1 .. 1,
        then rk[0] — so decryption walks the tuple forward exactly like
        encryption walks ``self._rk``.
        """
        rounds = self._rounds
        out = list(rk[4 * rounds:4 * rounds + 4])
        for round_index in range(rounds - 1, 0, -1):
            out.extend(_inv_mix_word(w)
                       for w in rk[4 * round_index:4 * round_index + 4])
        out.extend(rk[0:4])
        return tuple(out)

    def encrypt_block_int(self, value: int) -> int:
        """Encrypt one block given (and returning) a 128-bit integer."""
        rk = self._rk
        t0, t1, t2, t3 = _T0, _T1, _T2, _T3
        s0 = ((value >> 96) & 0xFFFFFFFF) ^ rk[0]
        s1 = ((value >> 64) & 0xFFFFFFFF) ^ rk[1]
        s2 = ((value >> 32) & 0xFFFFFFFF) ^ rk[2]
        s3 = (value & 0xFFFFFFFF) ^ rk[3]
        i = 4
        for _ in range(self._rounds - 1):
            u0 = (t0[s0 >> 24] ^ t1[(s1 >> 16) & 0xFF]
                  ^ t2[(s2 >> 8) & 0xFF] ^ t3[s3 & 0xFF] ^ rk[i])
            u1 = (t0[s1 >> 24] ^ t1[(s2 >> 16) & 0xFF]
                  ^ t2[(s3 >> 8) & 0xFF] ^ t3[s0 & 0xFF] ^ rk[i + 1])
            u2 = (t0[s2 >> 24] ^ t1[(s3 >> 16) & 0xFF]
                  ^ t2[(s0 >> 8) & 0xFF] ^ t3[s1 & 0xFF] ^ rk[i + 2])
            u3 = (t0[s3 >> 24] ^ t1[(s0 >> 16) & 0xFF]
                  ^ t2[(s1 >> 8) & 0xFF] ^ t3[s2 & 0xFF] ^ rk[i + 3])
            s0, s1, s2, s3 = u0, u1, u2, u3
            i += 4
        sbox = _SBOX
        f0 = ((sbox[s0 >> 24] << 24) | (sbox[(s1 >> 16) & 0xFF] << 16)
              | (sbox[(s2 >> 8) & 0xFF] << 8) | sbox[s3 & 0xFF]) ^ rk[i]
        f1 = ((sbox[s1 >> 24] << 24) | (sbox[(s2 >> 16) & 0xFF] << 16)
              | (sbox[(s3 >> 8) & 0xFF] << 8) | sbox[s0 & 0xFF]) ^ rk[i + 1]
        f2 = ((sbox[s2 >> 24] << 24) | (sbox[(s3 >> 16) & 0xFF] << 16)
              | (sbox[(s0 >> 8) & 0xFF] << 8) | sbox[s1 & 0xFF]) ^ rk[i + 2]
        f3 = ((sbox[s3 >> 24] << 24) | (sbox[(s0 >> 16) & 0xFF] << 16)
              | (sbox[(s1 >> 8) & 0xFF] << 8) | sbox[s2 & 0xFF]) ^ rk[i + 3]
        return (f0 << 96) | (f1 << 64) | (f2 << 32) | f3

    def decrypt_block_int(self, value: int) -> int:
        """Decrypt one block given (and returning) a 128-bit integer."""
        drk = self._drk
        t0, t1, t2, t3 = _TD0, _TD1, _TD2, _TD3
        s0 = ((value >> 96) & 0xFFFFFFFF) ^ drk[0]
        s1 = ((value >> 64) & 0xFFFFFFFF) ^ drk[1]
        s2 = ((value >> 32) & 0xFFFFFFFF) ^ drk[2]
        s3 = (value & 0xFFFFFFFF) ^ drk[3]
        i = 4
        for _ in range(self._rounds - 1):
            u0 = (t0[s0 >> 24] ^ t1[(s3 >> 16) & 0xFF]
                  ^ t2[(s2 >> 8) & 0xFF] ^ t3[s1 & 0xFF] ^ drk[i])
            u1 = (t0[s1 >> 24] ^ t1[(s0 >> 16) & 0xFF]
                  ^ t2[(s3 >> 8) & 0xFF] ^ t3[s2 & 0xFF] ^ drk[i + 1])
            u2 = (t0[s2 >> 24] ^ t1[(s1 >> 16) & 0xFF]
                  ^ t2[(s0 >> 8) & 0xFF] ^ t3[s3 & 0xFF] ^ drk[i + 2])
            u3 = (t0[s3 >> 24] ^ t1[(s2 >> 16) & 0xFF]
                  ^ t2[(s1 >> 8) & 0xFF] ^ t3[s0 & 0xFF] ^ drk[i + 3])
            s0, s1, s2, s3 = u0, u1, u2, u3
            i += 4
        inv = _INV_SBOX
        f0 = ((inv[s0 >> 24] << 24) | (inv[(s3 >> 16) & 0xFF] << 16)
              | (inv[(s2 >> 8) & 0xFF] << 8) | inv[s1 & 0xFF]) ^ drk[i]
        f1 = ((inv[s1 >> 24] << 24) | (inv[(s0 >> 16) & 0xFF] << 16)
              | (inv[(s3 >> 8) & 0xFF] << 8) | inv[s2 & 0xFF]) ^ drk[i + 1]
        f2 = ((inv[s2 >> 24] << 24) | (inv[(s1 >> 16) & 0xFF] << 16)
              | (inv[(s0 >> 8) & 0xFF] << 8) | inv[s3 & 0xFF]) ^ drk[i + 2]
        f3 = ((inv[s3 >> 24] << 24) | (inv[(s2 >> 16) & 0xFF] << 16)
              | (inv[(s1 >> 8) & 0xFF] << 8) | inv[s0 & 0xFF]) ^ drk[i + 3]
        return (f0 << 96) | (f1 << 64) | (f2 << 32) | f3

    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt one 16-byte block."""
        if len(block) != BLOCK_SIZE:
            raise ValueError("AES operates on 16-byte blocks")
        return self.encrypt_block_int(
            int.from_bytes(block, "big")).to_bytes(16, "big")

    def decrypt_block(self, block: bytes) -> bytes:
        """Decrypt one 16-byte block."""
        if len(block) != BLOCK_SIZE:
            raise ValueError("AES operates on 16-byte blocks")
        return self.decrypt_block_int(
            int.from_bytes(block, "big")).to_bytes(16, "big")

"""repro — reproduction of "Secure Group Communications Using Key Graphs".

Wong, Gouda, Lam (ACM SIGCOMM 1998): scalable group key management with
key trees (LKH), three rekeying strategies, and Merkle batch signing.

Public API tour
---------------
>>> from repro import GroupKeyServer, ServerConfig, GroupClient
>>> from repro.crypto import PAPER_SUITE
>>> server = GroupKeyServer(ServerConfig(strategy="group", degree=4,
...                                      seed=b"demo"))
>>> alice_key = server.new_individual_key()
>>> outcome = server.join("alice", alice_key)

Packages
--------
``repro.crypto``      DES/AES/MD5/SHA-1/HMAC/RSA from scratch
``repro.keygraph``    the (U, K, R) model; star/tree/complete graphs
``repro.core``        rekeying strategies, server, client, Merkle signing
``repro.transport``   in-memory bus, reliable delivery, loopback UDP
``repro.simulation``  workloads, client simulator, experiment runner
``repro.iolus``       the Iolus baseline (paper §6)
``repro.multigroup``  multiple secure groups over one user population (§7)
``repro.batch``       interval batch rekeying extension
``repro.experiments`` regenerates every table and figure
"""

from .core import (AccessDenied, GroupClient, GroupKeyServer, RekeyOutcome,
                   RequestRecord, ServerConfig, ServerError)
from .keygraph import KeyGraph, KeyTree, SecureGroup, StarGroup

__version__ = "1.0.0"

__all__ = [
    "GroupKeyServer", "ServerConfig", "ServerError", "AccessDenied",
    "GroupClient", "RekeyOutcome", "RequestRecord",
    "KeyGraph", "KeyTree", "SecureGroup", "StarGroup",
    "__version__",
]
